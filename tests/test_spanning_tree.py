"""Tests for spanning trees, channel labelling and root selection."""

from __future__ import annotations

import pytest

from repro.errors import SpanningTreeError
from repro.spanning.labeling import label_channels
from repro.spanning.roots import (
    center_root,
    first_switch_root,
    max_degree_root,
    random_root,
    select_root,
)
from repro.spanning.tree import SpanningTree, bfs_spanning_tree, dfs_spanning_tree
from repro.topology.channels import ChannelKind, Orientation
from repro.topology.examples import figure1_network, line_network
from repro.topology.irregular import random_irregular_network
from repro.topology.regular import mesh_network


class TestSpanningTreeConstruction:
    def test_bfs_tree_structure_on_figure1(self, figure1):
        tree = bfs_spanning_tree(figure1.network, figure1.root)
        nodes = figure1.nodes
        assert tree.parent(nodes[2]) == nodes[1]
        assert tree.parent(nodes[3]) == nodes[1]
        assert tree.parent(nodes[4]) == nodes[1]
        assert tree.parent(nodes[5]) == nodes[2]
        assert tree.parent(nodes[6]) == nodes[4]
        assert tree.parent(nodes[8]) == nodes[6]
        assert tree.parent(nodes[11]) == nodes[7]
        assert tree.depth(nodes[1]) == 0
        assert tree.depth(nodes[8]) == 3

    def test_all_processors_are_leaves(self, lattice32):
        tree = bfs_spanning_tree(lattice32, lattice32.switches()[0])
        for processor in lattice32.processors():
            assert tree.children(processor) == ()

    def test_tree_spans_network(self, small_irregular):
        root = small_irregular.switches()[0]
        tree = bfs_spanning_tree(small_irregular, root)
        depths = [tree.depth(node) for node in small_irregular.nodes()]
        assert len(depths) == small_irregular.num_nodes

    def test_dfs_tree_is_valid_and_usually_deeper(self, small_irregular):
        root = small_irregular.switches()[0]
        bfs = bfs_spanning_tree(small_irregular, root)
        dfs = dfs_spanning_tree(small_irregular, root)
        assert dfs.height() >= bfs.height()
        # Both must be valid spanning trees of the same node set.
        assert sorted(dfs.tree_edges()) != [] and len(dfs.tree_edges()) == len(bfs.tree_edges())

    def test_root_must_be_switch(self, figure1):
        with pytest.raises(SpanningTreeError):
            bfs_spanning_tree(figure1.network, figure1.nodes[5])

    def test_invalid_parent_map_rejected(self, two_switch):
        a, b = two_switch.switches()
        pa, pb = two_switch.processors()
        # Missing node pb.
        with pytest.raises(SpanningTreeError):
            SpanningTree(two_switch, a, {b: a, pa: a})
        # Edge that does not exist.
        with pytest.raises(SpanningTreeError):
            SpanningTree(two_switch, a, {b: a, pa: a, pb: a})
        # Root with a parent.
        with pytest.raises(SpanningTreeError):
            SpanningTree(two_switch, a, {a: b, b: a, pa: a})

    def test_path_and_subtree_queries(self, figure1):
        tree = bfs_spanning_tree(figure1.network, figure1.root)
        nodes = figure1.nodes
        assert tree.path_to_root(nodes[8]) == [nodes[8], nodes[6], nodes[4], nodes[1]]
        assert set(tree.subtree_nodes(nodes[4])) == {
            nodes[4], nodes[6], nodes[7], nodes[8], nodes[9], nodes[10], nodes[11]
        }
        assert tree.is_ancestor(nodes[4], nodes[11])
        assert tree.is_ancestor(nodes[8], nodes[8])
        assert not tree.is_ancestor(nodes[6], nodes[11])

    def test_lca(self, figure1):
        tree = bfs_spanning_tree(figure1.network, figure1.root)
        nodes = figure1.nodes
        assert tree.lowest_common_ancestor([nodes[8], nodes[9]]) == nodes[6]
        assert tree.lowest_common_ancestor([nodes[8], nodes[11]]) == nodes[4]
        assert tree.lowest_common_ancestor([nodes[5], nodes[8]]) == nodes[1]
        assert tree.lowest_common_ancestor([nodes[9]]) == nodes[9]
        with pytest.raises(SpanningTreeError):
            tree.lowest_common_ancestor([])

    def test_nodes_by_depth(self, figure1):
        tree = bfs_spanning_tree(figure1.network, figure1.root)
        groups = tree.nodes_by_depth()
        assert groups[0] == [figure1.root]
        assert len(groups) == tree.height() + 1


class TestChannelLabeling:
    def test_figure1_labels_match_paper(self, figure1):
        net = figure1.network
        tree = bfs_spanning_tree(net, figure1.root)
        labeling = label_channels(net, tree)
        nodes = figure1.nodes

        # Tree channel 2->1 is up, 1->2 is down.
        assert labeling.label(net.channel_between(nodes[2], nodes[1])).is_up
        assert labeling.label(net.channel_between(nodes[1], nodes[2])).is_down_tree
        # Cross channels 2->3 and 3->4 are *down* cross channels (same level,
        # smaller id -> larger id), which is what makes the paper's route
        # 5 -> 2 -> 3 -> 4 legal.
        assert labeling.label(net.channel_between(nodes[2], nodes[3])).is_down_cross
        assert labeling.label(net.channel_between(nodes[3], nodes[4])).is_down_cross
        assert labeling.label(net.channel_between(nodes[3], nodes[2])).is_up
        # Injection / consumption channels.
        assert labeling.label(net.injection_channel(nodes[5])).is_up
        assert labeling.label(net.consumption_channel(nodes[8])).is_down_tree

    def test_every_channel_labelled_and_paired(self, lattice32):
        tree = bfs_spanning_tree(lattice32, select_root(lattice32))
        labeling = label_channels(lattice32, tree)
        for channel in lattice32.channels():
            label = labeling.label(channel)
            reverse = labeling.label(lattice32.channel(channel.reverse_cid))
            # A channel and its reverse have opposite orientations and the
            # same kind.
            assert label.orientation != reverse.orientation
            assert label.kind == reverse.kind

    def test_counts_sum_to_channel_count(self, lattice32):
        tree = bfs_spanning_tree(lattice32, select_root(lattice32))
        labeling = label_channels(lattice32, tree)
        assert sum(labeling.counts().values()) == lattice32.num_channels

    def test_up_down_split_is_half_half(self, mesh3x3):
        tree = bfs_spanning_tree(mesh3x3, mesh3x3.switches()[0])
        labeling = label_channels(mesh3x3, tree)
        ups = sum(1 for c in mesh3x3.channels() if labeling.is_up(c))
        downs = mesh3x3.num_channels - ups
        assert ups == downs

    def test_per_node_indexes_consistent(self, small_irregular):
        tree = bfs_spanning_tree(small_irregular, small_irregular.switches()[0])
        labeling = label_channels(small_irregular, tree)
        for node in small_irregular.nodes():
            indexed = (
                set(c.cid for c in labeling.up_channels_from(node))
                | set(c.cid for c in labeling.down_tree_channels_from(node))
                | set(c.cid for c in labeling.down_cross_channels_from(node))
            )
            actual = set(c.cid for c in small_irregular.channels_from(node))
            assert indexed == actual

    def test_labeling_rejects_foreign_tree(self, figure1, two_switch):
        tree = bfs_spanning_tree(two_switch, two_switch.switches()[0])
        with pytest.raises(SpanningTreeError):
            label_channels(figure1.network, tree)


class TestRootSelection:
    def test_center_root_of_line(self):
        net = line_network(5)
        assert center_root(net) == net.node_by_label("s2")

    def test_max_degree_root(self):
        net = mesh_network(3, 3)
        assert max_degree_root(net) == net.node_by_label("s1_1")

    def test_first_switch_root(self, figure1):
        assert first_switch_root(figure1.network) == figure1.nodes[1]

    def test_random_root_is_switch_and_seeded(self, lattice32):
        a = random_root(lattice32, seed=5)
        b = random_root(lattice32, seed=5)
        assert a == b
        assert lattice32.is_switch(a)

    def test_select_root_dispatch(self, lattice32):
        assert select_root(lattice32, "center") == center_root(lattice32)
        assert select_root(lattice32, "max-degree") == max_degree_root(lattice32)
        assert select_root(lattice32, "first") == first_switch_root(lattice32)
        assert lattice32.is_switch(select_root(lattice32, "random", seed=1))
        with pytest.raises(Exception):
            select_root(lattice32, "bogus")
