"""Property-based tests (hypothesis) for the core invariants.

These tests generate random irregular topologies, random roots and random
destination sets and check the structural invariants the paper's proofs rely
on:

* the channel labelling is a partition (every channel has exactly one label,
  a channel and its reverse have opposite orientations);
* up channels and down channels are both acyclic sub-networks;
* the routing function always offers a legal channel and greedy routes
  terminate with monotone phases;
* multicast plans cover exactly the destination set with down-tree channels;
* the end-to-end simulator delivers every message (deadlock/livelock freedom
  under the full protocol) and latency accounting is consistent;
* region-parallel execution (:func:`repro.simulator.regions.run_region_parallel`)
  is bit-identical to the reference engine on random irregular networks and
  mixed workloads at every region count, and ``region_count=1`` collapses to
  exactly today's engine;
* the sweep-store merge (:func:`repro.sweeps.store.merge_stores`) is
  idempotent, order-insensitive for disjoint stores, last-row-wins on key
  collisions, rejects rows computed under a different code salt, and
  recovers a source store's truncated tail (a shard host killed
  mid-append).
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.multicast import build_multicast_plan
from repro.core.spam import SpamRouting
from repro.errors import SweepError
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import WormholeSimulator
from repro.spanning.ancestry import Ancestry, node_mask
from repro.spanning.labeling import label_channels
from repro.spanning.tree import bfs_spanning_tree
from repro.sweeps import ResultStore, SweepPointResult, SweepPointSpec, merge_stores
from repro.topology.irregular import random_irregular_network

# Hypothesis strategy building blocks -------------------------------------

network_params = st.tuples(
    st.integers(min_value=4, max_value=14),   # switches
    st.integers(min_value=0, max_value=10),   # extra links
    st.integers(min_value=0, max_value=2**16),  # topology seed
)

SLOW_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
FAST_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_network(params):
    switches, extra, seed = params
    return random_irregular_network(switches, extra_links=extra, seed=seed)


def build_spam(params, root_index=0):
    network = build_network(params)
    switches = network.switches()
    root = switches[root_index % len(switches)]
    return network, SpamRouting.build(network, root=root)


# Labelling invariants -----------------------------------------------------


@FAST_SETTINGS
@given(params=network_params, root_index=st.integers(min_value=0, max_value=100))
def test_labeling_is_a_partition(params, root_index):
    network = build_network(params)
    switches = network.switches()
    root = switches[root_index % len(switches)]
    labeling = label_channels(network, bfs_spanning_tree(network, root))
    for channel in network.channels():
        label = labeling.label(channel)
        reverse = labeling.label(network.channel(channel.reverse_cid))
        assert label.orientation != reverse.orientation
        assert label.kind == reverse.kind
    counts = labeling.counts()
    assert sum(counts.values()) == network.num_channels


@FAST_SETTINGS
@given(params=network_params, root_index=st.integers(min_value=0, max_value=100))
def test_up_and_down_subnetworks_are_acyclic(params, root_index):
    network = build_network(params)
    switches = network.switches()
    root = switches[root_index % len(switches)]
    labeling = label_channels(network, bfs_spanning_tree(network, root))
    up_graph = nx.DiGraph()
    down_graph = nx.DiGraph()
    for channel in network.channels():
        if labeling.is_up(channel):
            up_graph.add_edge(channel.src, channel.dst)
        else:
            down_graph.add_edge(channel.src, channel.dst)
    assert nx.is_directed_acyclic_graph(up_graph)
    assert nx.is_directed_acyclic_graph(down_graph)


@FAST_SETTINGS
@given(params=network_params)
def test_extended_ancestors_contain_tree_ancestors(params):
    network = build_network(params)
    labeling = label_channels(network, bfs_spanning_tree(network, network.switches()[0]))
    ancestry = Ancestry(labeling)
    root = ancestry.tree.root
    for node in network.nodes():
        anc = ancestry.ancestor_mask(node)
        ext = ancestry.extended_ancestor_mask(node)
        assert ext & anc == anc
        assert ancestry.is_ancestor(root, node)
        assert ancestry.is_extended_ancestor(root, node)
        assert ancestry.is_ancestor(node, node)


# Routing invariants --------------------------------------------------------


@FAST_SETTINGS
@given(
    params=network_params,
    pair_seed=st.integers(min_value=0, max_value=2**16),
)
def test_unicast_routes_terminate_with_monotone_phases(params, pair_seed):
    network, spam = build_spam(params, root_index=pair_seed)
    processors = network.processors()
    source = processors[pair_seed % len(processors)]
    destination = processors[(pair_seed // 7 + 1) % len(processors)]
    if source == destination:
        destination = processors[(processors.index(source) + 1) % len(processors)]
    path = spam.unicast_route(source, destination)
    assert path[0].src == source
    assert path[-1].dst == destination
    assert len(path) <= 2 * network.num_nodes
    rank = 0
    for channel in path:
        label = spam.labeling.label(channel)
        new_rank = 0 if label.is_up else (1 if label.is_down_cross else 2)
        assert new_rank >= rank
        rank = max(rank, new_rank)
    # No channel is used twice.
    cids = [channel.cid for channel in path]
    assert len(set(cids)) == len(cids)


@FAST_SETTINGS
@given(
    params=network_params,
    dest_seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=1, max_value=10),
)
def test_multicast_plan_covers_exactly_destinations(params, dest_seed, count):
    network, spam = build_spam(params)
    processors = network.processors()
    source = processors[dest_seed % len(processors)]
    others = [p for p in processors if p != source]
    count = min(count, len(others))
    step = max(1, len(others) // count)
    destinations = others[::step][:count]
    plan = build_multicast_plan(network, spam.ancestry, source, destinations)
    assert plan.destinations == tuple(sorted(destinations))
    # The LCA is a tree ancestor of every destination.
    for dest in destinations:
        assert spam.ancestry.is_ancestor(plan.lca, dest)
    if not plan.is_unicast:
        covered = {
            channel.dst for channel in plan.branch_channels if network.is_processor(channel.dst)
        }
        assert covered == set(destinations)
        # Branch channels are tree edges oriented away from the root and are
        # all within the LCA's subtree.
        lca_subtree = spam.ancestry.subtree_mask(plan.lca)
        for channel in plan.branch_channels:
            assert spam.ancestry.tree.parent(channel.dst) == channel.src
            assert lca_subtree >> channel.dst & 1


# Sweep-store merge invariants ----------------------------------------------
#
# Stores here are synthetic: rows are built directly (no simulation), so
# hypothesis can drive many store shapes cheaply.  Each example builds its
# stores in a private temp directory (hypothesis re-runs the test body many
# times per test, so the per-test tmp_path fixture cannot be used).

_MERGE_BASE_SPEC = SweepPointSpec(
    workload_kind="single-multicast",
    network_size=16,
    topology_seed=3,
    message_length_flits=16,
    workload_params=(("num_destinations", 4), ("samples", 1)),
    workload_seed=0,
    x=4.0,
)

#: A store's contents as {seed: latency}: which points it holds and with
#: what (synthetic) observation — enough to exercise every merge path.
store_contents = st.dictionaries(
    st.integers(min_value=0, max_value=30),
    st.floats(min_value=0.5, max_value=9.5, allow_nan=False, width=16),
    max_size=8,
)

MERGE_SETTINGS = settings(max_examples=30, deadline=None)


def _merge_result(seed: int, latency: float) -> SweepPointResult:
    return SweepPointResult(
        spec=replace(_MERGE_BASE_SPEC, workload_seed=seed),
        latencies_us=(latency,),
        metrics=(("tree_root", 0),),
    )


def _build_store(root: Path, contents: dict[int, float], **kwargs) -> ResultStore:
    store = ResultStore(root, **kwargs)
    store.root.mkdir(parents=True, exist_ok=True)  # even when left empty
    for seed, latency in sorted(contents.items()):
        store.put(_merge_result(seed, latency))
    store.flush_index()
    return store


def _store_bytes(root: Path) -> bytes:
    """``results.jsonl`` contents; an empty (row-less) store reads as b""."""
    path = root / "results.jsonl"
    return path.read_bytes() if path.exists() else b""


def _visible(store: ResultStore) -> dict[int, float]:
    """The store's winning rows as {seed: latency}."""
    return {
        result.spec.workload_seed: result.latencies_us[0]
        for result in store.iter_results()
    }


@MERGE_SETTINGS
@given(dst_contents=store_contents, src_contents=store_contents)
def test_merge_is_idempotent(dst_contents, src_contents):
    """Merging the same source twice changes nothing — not even the bytes
    of ``results.jsonl`` (identical rows are skipped, not re-appended)."""
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        src = _build_store(tmp / "src", src_contents)
        dst = _build_store(tmp / "dst", dst_contents)
        merge_stores(dst, src)
        once = _store_bytes(tmp / "dst")
        report = merge_stores(dst, src)
        assert _store_bytes(tmp / "dst") == once
        assert (report.appended, report.replaced) == (0, 0)


@MERGE_SETTINGS
@given(
    contents_a=store_contents,
    contents_b=store_contents,
    contents_c=store_contents,
)
def test_merge_order_insensitive_for_disjoint_stores(contents_a, contents_b, contents_c):
    """Disjoint sources merged in any order produce the same visible
    {key: row} mapping (file order differs; lookups don't)."""
    contents_b = {seed + 100: value for seed, value in contents_b.items()}
    contents_c = {seed + 200: value for seed, value in contents_c.items()}
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        stores = [
            _build_store(tmp / name, contents)
            for name, contents in (("a", contents_a), ("b", contents_b), ("c", contents_c))
        ]
        merge_stores(tmp / "fwd", *stores)
        merge_stores(tmp / "rev", *reversed(stores))
        expected = {**contents_a, **contents_b, **contents_c}
        assert _visible(ResultStore(tmp / "fwd")) == expected
        assert _visible(ResultStore(tmp / "rev")) == expected


@MERGE_SETTINGS
@given(
    shared=st.dictionaries(
        st.integers(min_value=0, max_value=10),
        st.tuples(
            st.floats(min_value=0.5, max_value=9.5, allow_nan=False, width=16),
            st.floats(min_value=10.5, max_value=19.5, allow_nan=False, width=16),
        ),
        min_size=1,
        max_size=6,
    ),
)
def test_merge_last_row_wins_on_collisions(shared):
    """When sources collide on a key with different content, the row from
    the *later* source wins lookups in the merged store."""
    first = {seed: values[0] for seed, values in shared.items()}
    second = {seed: values[1] for seed, values in shared.items()}
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        src_a = _build_store(tmp / "a", first)
        src_b = _build_store(tmp / "b", second)
        report = merge_stores(tmp / "dst", src_a, src_b)
        assert _visible(ResultStore(tmp / "dst")) == second
        assert report.replaced == len(shared)


@MERGE_SETTINGS
@given(src_contents=store_contents)
def test_merge_rejects_foreign_code_salt(src_contents):
    """Every row computed under a different code salt is rejected — never
    silently mixed into a store of current-code results."""
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        src = _build_store(tmp / "src", src_contents or {0: 1.0}, code_salt="foreign-v0")
        with pytest.raises(SweepError, match="foreign-v0"):
            merge_stores(tmp / "dst", src)


@MERGE_SETTINGS
@given(
    src_contents=store_contents,
    tail=st.sampled_from([b"{", b'{"key": "dead', b'{"key": "beef"}']),
)
def test_merge_recovers_truncated_source_tail(src_contents, tail):
    """A source store whose host died mid-append (truncated or
    newline-less trailing line) merges its valid prefix."""
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        src = _build_store(tmp / "src", src_contents)
        with open(src.results_path, "ab") as handle:
            handle.write(tail)
        report = merge_stores(tmp / "dst", ResultStore(tmp / "src"))
        assert _visible(ResultStore(tmp / "dst")) == src_contents
        assert report.appended == len(src_contents)


# End-to-end simulation invariants -------------------------------------------


@SLOW_SETTINGS
@given(
    params=network_params,
    workload_seed=st.integers(min_value=0, max_value=2**16),
    num_messages=st.integers(min_value=1, max_value=12),
    length=st.sampled_from([2, 4, 16]),
)
def test_simulator_delivers_every_message(params, workload_seed, num_messages, length):
    import numpy as np

    network, spam = build_spam(params)
    config = SimulationConfig(message_length_flits=length)
    simulator = WormholeSimulator(network, spam, config)
    rng = np.random.default_rng(workload_seed)
    processors = network.processors()
    submitted = []
    for index in range(num_messages):
        source = processors[int(rng.integers(0, len(processors)))]
        others = [p for p in processors if p != source]
        k = int(rng.integers(1, min(6, len(others)) + 1))
        chosen = rng.choice(len(others), size=k, replace=False)
        destinations = [others[int(i)] for i in chosen]
        at_ns = int(rng.integers(0, 5_000))
        submitted.append(simulator.submit_message(source, destinations, at_ns=at_ns))
    stats = simulator.run()

    assert stats.messages_completed == num_messages
    for message in submitted:
        assert message.is_complete
        assert set(message.delivered_ns) == set(message.destinations)
        # Latency accounting: completion after startup, startup after creation.
        assert message.startup_began_ns >= message.created_ns
        assert message.completed_ns > message.startup_began_ns
        assert message.latency_from_creation_ns >= message.latency_from_startup_ns
        # A worm visits at least one switch per destination-reaching path and
        # never more switches than the hop-limit allows.
        assert 1 <= message.hops <= config.max_hops


@SLOW_SETTINGS
@given(
    params=network_params,
    workload_seed=st.integers(min_value=0, max_value=2**16),
    num_messages=st.integers(min_value=1, max_value=8),
    length=st.sampled_from([8, 32]),
    slow_factor=st.sampled_from([1, 2, 3]),
)
def test_multi_period_with_k_max_one_is_todays_engine(
    params, workload_seed, num_messages, length, slow_factor
):
    """Multi-period coalescing restricted to ``coalesce_k_max=1`` must be
    bit-identical to the single-period engine (``coalesce_multi_period``
    off) on every observable — the multi-period machinery with a compound
    period of one window IS today's probe.  Runs with and without a slow
    channel so both the homogeneous collapse and the heterogeneous
    fallback paths are exercised."""
    import numpy as np

    network, spam = build_spam(params)
    processors = network.processors()
    rng = np.random.default_rng(workload_seed)
    specs = []
    for _ in range(num_messages):
        source = processors[int(rng.integers(0, len(processors)))]
        others = [p for p in processors if p != source]
        k = int(rng.integers(1, min(4, len(others)) + 1))
        chosen = rng.choice(len(others), size=k, replace=False)
        specs.append(
            (source, [others[int(i)] for i in chosen], int(rng.integers(0, 2_000)))
        )
    factors = ()
    if slow_factor > 1:
        slow_source = processors[int(rng.integers(0, len(processors)))]
        factors = ((network.injection_channel(slow_source).cid, slow_factor),)

    fingerprints = []
    for overrides in ({"coalesce_k_max": 1}, {"coalesce_multi_period": False}):
        config = SimulationConfig(
            message_length_flits=length,
            trace=True,
            collect_channel_stats=True,
            channel_latency_factors=factors,
            **overrides,
        )
        simulator = WormholeSimulator(network, spam, config)
        for source, destinations, at_ns in specs:
            simulator.submit_message(source, destinations, at_ns=at_ns)
        stats = simulator.run()
        assert simulator.coalesce_multi_period_batches == 0
        fingerprints.append(
            (
                {m: dict(msg.delivered_ns) for m, msg in simulator.messages.items()},
                simulator.trace.signature(),
                stats.flit_hops,
                stats.bubbles_created,
                stats.end_time_ns,
                [
                    (rec.cid, rec.data_flits, rec.bubble_flits, rec.busy_ns)
                    for rec in stats.channel_records
                ],
            )
        )
    assert fingerprints[0] == fingerprints[1]


# Region-parallel invariants --------------------------------------------------


def _random_mixed_specs(network, rng, num_messages):
    """Random mixed unicast/multicast submissions, skewed toward unicasts
    (region-parallel's interesting regime) but always exercising at least
    one multicast when the draw allows."""
    processors = network.processors()
    specs = []
    for _ in range(num_messages):
        source = processors[int(rng.integers(0, len(processors)))]
        others = [p for p in processors if p != source]
        if rng.random() < 0.25:
            k = int(rng.integers(2, min(5, len(others)) + 1))
        else:
            k = 1
        chosen = rng.choice(len(others), size=min(k, len(others)), replace=False)
        destinations = tuple(others[int(i)] for i in chosen)
        specs.append((source, destinations, int(rng.integers(0, 3_000))))
    return specs


@SLOW_SETTINGS
@given(
    params=network_params,
    workload_seed=st.integers(min_value=0, max_value=2**16),
    num_messages=st.integers(min_value=1, max_value=10),
    length=st.sampled_from([4, 16, 64]),
)
def test_region_parallel_bit_identical_at_every_region_count(
    params, workload_seed, num_messages, length
):
    """The region-vs-whole differential as a property: for random irregular
    networks and random mixed workloads, :func:`run_region_parallel` at
    ``region_count`` 1, 2 and 4 must fingerprint-identical to the reference
    engine — whatever the optimistic plan proposed and however many
    touched-set conflicts the validator had to repair."""
    import numpy as np

    from repro.simulator.regions import run_region_parallel, simulator_fingerprint

    network, spam = build_spam(params)
    rng = np.random.default_rng(workload_seed)
    specs = _random_mixed_specs(network, rng, num_messages)

    for region_count in (1, 2, 4):
        config = SimulationConfig(
            message_length_flits=length,
            trace=True,
            collect_channel_stats=True,
            region_parallel=True,
            region_count=region_count,
        )
        reference = WormholeSimulator(network, spam, config)
        for source, destinations, at_ns in specs:
            reference.submit_message(source, destinations, at_ns=at_ns)
        stats = reference.run()

        from repro.traffic.workload import MessageSpec

        result = run_region_parallel(
            network,
            spam,
            config,
            [MessageSpec(*spec) for spec in specs],
            max_workers=0,
        )
        assert result.fingerprint() == simulator_fingerprint(reference, stats)
        if region_count == 1:
            # One region admits exactly one shard: the run IS a reference
            # run, with nothing planned apart and nothing to repair.
            assert result.region_shards == 1
            assert result.region_conflict_reruns == 0
