"""Tests for the command-line interface and the parallel sweep runner."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments.parallel import (
    SweepPointSpec,
    evaluate_point,
    parallel_figure2_points,
    run_points,
)


class TestCli:
    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_topology_command(self, capsys, tmp_path):
        rc = main(["topology", "--switches", "12", "--seed", "3",
                   "--save", str(tmp_path / "net.json")])
        assert rc == 0
        output = capsys.readouterr().out
        assert "spanning tree root" in output
        assert (tmp_path / "net.json").exists()

    def test_figure2_command(self, capsys):
        rc = main(["--scale", "smoke", "figure2", "--network-sizes", "16"])
        assert rc == 0
        output = capsys.readouterr().out
        assert "destinations" in output
        assert "16-switch network" in output

    def test_figure3_command(self, capsys):
        rc = main([
            "--scale", "smoke", "figure3", "--network-size", "16",
            "--degrees", "4", "--rates", "0.01",
        ])
        assert rc == 0
        output = capsys.readouterr().out
        assert "4 destinations" in output

    def test_compare_command_bound_only(self, capsys):
        rc = main([
            "--scale", "smoke", "compare", "--network-size", "16",
            "--destinations", "8", "--bound-only",
        ])
        assert rc == 0
        output = capsys.readouterr().out
        assert "speedup" in output

    def test_verify_command(self, capsys):
        rc = main(["verify", "--switches", "16", "--rounds", "1"])
        assert rc == 0
        output = capsys.readouterr().out
        assert "VERIFICATION PASSED" in output

    def test_hotspot_command(self, capsys):
        rc = main(["hotspot", "--switches", "16", "--destinations", "2", "8",
                   "--samples", "20"])
        assert rc == 0
        output = capsys.readouterr().out
        assert "P(LCA is root)" in output


class TestParallelSweeps:
    def test_spec_builder(self):
        specs = parallel_figure2_points(16, [1, 4, 8], samples=2, message_length_flits=16)
        assert len(specs) == 3
        assert all(spec.workload_kind == "single-multicast" for spec in specs)
        assert [spec.x for spec in specs] == [1.0, 4.0, 8.0]

    def test_evaluate_point_single_multicast(self):
        spec = SweepPointSpec(
            workload_kind="single-multicast",
            network_size=16,
            topology_seed=3,
            message_length_flits=16,
            workload_params=(("num_destinations", 4), ("samples", 2)),
            workload_seed=5,
            x=4.0,
        )
        result = evaluate_point(spec)
        assert len(result.latencies_us) == 2
        assert result.mean_us > 10.0
        assert result.spec is spec

    def test_evaluate_point_mixed(self):
        spec = SweepPointSpec(
            workload_kind="mixed",
            network_size=16,
            topology_seed=3,
            message_length_flits=16,
            workload_params=(
                ("rate_per_us", 0.02),
                ("multicast_destinations", 4),
                ("num_messages", 10),
            ),
            workload_seed=5,
            x=0.02,
        )
        result = evaluate_point(spec)
        assert len(result.latencies_us) == 10

    def test_unknown_kind_rejected(self):
        spec = SweepPointSpec(
            workload_kind="bogus",
            network_size=16,
            topology_seed=3,
            message_length_flits=16,
            workload_params=(),
            workload_seed=5,
        )
        with pytest.raises(ValueError):
            evaluate_point(spec)

    def test_run_points_sequential_matches_parallel_api(self):
        specs = parallel_figure2_points(16, [1, 4], samples=1, message_length_flits=16)
        sequential = run_points(specs, parallel=False)
        assert [r.spec.x for r in sequential] == [1.0, 4.0]
        assert all(r.mean_us > 10.0 for r in sequential)

    @pytest.mark.slow
    def test_run_points_with_process_pool(self):
        specs = parallel_figure2_points(16, [1, 4], samples=1, message_length_flits=16)
        results = run_points(specs, parallel=True, max_workers=2)
        assert len(results) == 2
        assert all(r.latencies_us for r in results)
