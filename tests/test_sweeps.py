"""Tests for the sweep orchestration subsystem (:mod:`repro.sweeps`).

Covers the satellite guarantees the subsystem exists to provide:

* spec hashing is stable and sensitive to every field plus the code salt;
* the store round-trips results, survives a truncated trailing line (a run
  killed mid-append) and rebuilds a stale index;
* parallel and sequential runs are bit-identical under the same seeds;
* cache hit/miss accounting and code-salt invalidation;
* an interrupted sweep resumes by computing exactly the missing points;
* zero-delivery points surface as explicit errors, not NaN rows;
* multi-host sharding: `shard_specs` is a reorder-stable disjoint cover,
  shards merged with `merge_stores` reproduce the unsharded figure export
  byte for byte, manifests account for owed points, and a cleared store's
  index is never trusted stale after a merge re-populates it.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.errors import SweepError, ZeroDeliveryError
from repro.experiments.figure2 import Figure2Config, figure2_result_from_points, figure2_specs
from repro.experiments.figure3 import Figure3Config, figure3_result_from_points, figure3_specs
from repro.experiments.common import ExperimentScale, SCALES
from repro.sweeps import (
    ResultStore,
    SweepPointResult,
    SweepPointSpec,
    evaluate_spec,
    merge_stores,
    parse_shard,
    run_sweep,
    shard_specs,
    spec_key,
)

SMOKE = SCALES["smoke"]


def small_specs(counts=(1, 4), network_size=16, samples=1):
    config = Figure2Config(
        network_sizes=(network_size,),
        destination_counts={network_size: list(counts)},
        scale=ExperimentScale(
            name="tiny", message_length_flits=16, samples_per_point=samples,
            messages_per_rate_point=10,
        ),
    )
    return config, figure2_specs(config)


BASE_SPEC = SweepPointSpec(
    workload_kind="single-multicast",
    network_size=16,
    topology_seed=3,
    message_length_flits=16,
    workload_params=(("num_destinations", 4), ("samples", 2)),
    workload_seed=5,
    x=4.0,
)


class TestSpecKey:
    def test_stable_for_equal_specs(self):
        clone = SweepPointSpec(**{f: getattr(BASE_SPEC, f) for f in (
            "workload_kind", "network_size", "topology_seed", "message_length_flits",
            "workload_params", "workload_seed", "root_strategy", "selection",
            "selection_seed", "sim_overrides", "label", "x")})
        assert spec_key(BASE_SPEC) == spec_key(clone)

    def test_sensitive_to_every_field(self):
        base = spec_key(BASE_SPEC)
        from dataclasses import replace
        variants = [
            replace(BASE_SPEC, workload_seed=6),
            replace(BASE_SPEC, topology_seed=4),
            replace(BASE_SPEC, message_length_flits=32),
            replace(BASE_SPEC, workload_params=(("num_destinations", 5), ("samples", 2))),
            replace(BASE_SPEC, sim_overrides=(("input_buffer_depth", 2),)),
            replace(BASE_SPEC, selection="first-allowed"),
            replace(BASE_SPEC, root_strategy="first"),
            replace(BASE_SPEC, label="other"),
            replace(BASE_SPEC, x=5.0),
        ]
        keys = {base} | {spec_key(v) for v in variants}
        assert len(keys) == len(variants) + 1

    def test_sensitive_to_code_salt(self):
        assert spec_key(BASE_SPEC, "salt-a") != spec_key(BASE_SPEC, "salt-b")


class TestResultStore:
    def test_roundtrip_and_persistence(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        result = evaluate_spec(BASE_SPEC)
        assert store.get(BASE_SPEC) is None
        store.put(result)
        store.flush_index()
        # A brand-new store instance (fresh index load) sees the same row.
        reopened = ResultStore(tmp_path / "cache")
        loaded = reopened.get(BASE_SPEC)
        assert loaded is not None
        assert loaded.latencies_us == result.latencies_us
        assert loaded.metrics == result.metrics

    def test_stale_index_triggers_rescan(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(evaluate_spec(BASE_SPEC))
        store.flush_index()
        # Append another row without updating the index: size mismatch.
        from dataclasses import replace
        other = replace(BASE_SPEC, workload_seed=6)
        second = ResultStore(tmp_path / "cache")
        second.put(evaluate_spec(other))
        third = ResultStore(tmp_path / "cache")
        assert third.get(BASE_SPEC) is not None
        assert third.get(other) is not None

    def test_truncated_tail_is_dropped(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(evaluate_spec(BASE_SPEC))
        # Simulate a run killed mid-append: garbage half-line at the end.
        with open(store.results_path, "ab") as handle:
            handle.write(b'{"key": "deadbeef", "latencies')
        reopened = ResultStore(tmp_path / "cache")
        assert reopened.get(BASE_SPEC) is not None
        # The partial line was cut off, so appends produce a valid file.
        from dataclasses import replace
        other = replace(BASE_SPEC, workload_seed=6)
        reopened.put(evaluate_spec(other))
        final = ResultStore(tmp_path / "cache")
        assert final.get(other) is not None
        assert len(final) == 2

    def test_iter_results_rebuilds_specs(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        result = evaluate_spec(BASE_SPEC)
        store.put(result)
        (loaded,) = list(store.iter_results())
        assert loaded.spec == BASE_SPEC
        assert loaded.latencies_us == result.latencies_us


class TestRunSweep:
    def test_results_preserve_spec_order(self):
        _config, specs = small_specs((4, 1))
        outcome = run_sweep(specs)
        assert [r.spec.x for r in outcome.results] == [s.x for s in specs]
        assert outcome.computed == len(specs)
        assert outcome.cache_hits == 0

    def test_duplicate_specs_computed_once(self):
        _config, specs = small_specs((1,))
        outcome = run_sweep(specs * 3)
        assert outcome.total == 3
        assert outcome.computed == 1
        assert len({id(r) for r in outcome.results}) == 1

    @pytest.mark.slow
    def test_parallel_matches_sequential_bit_identically(self):
        _config, specs = small_specs((1, 4, 8))
        sequential = run_sweep(specs, workers=1)
        parallel = run_sweep(specs, workers=2)
        assert [r.latencies_us for r in sequential.results] == [
            r.latencies_us for r in parallel.results
        ]
        assert [r.metrics for r in sequential.results] == [
            r.metrics for r in parallel.results
        ]

    def test_cache_hit_miss_accounting(self, tmp_path):
        _config, specs = small_specs((1, 4))
        store = ResultStore(tmp_path / "cache")
        cold = run_sweep(specs, store=store)
        assert (cold.cache_hits, cold.computed) == (0, 2)
        warm = run_sweep(specs, store=ResultStore(tmp_path / "cache"))
        assert (warm.cache_hits, warm.computed) == (2, 0)
        assert [r.latencies_us for r in warm.results] == [
            r.latencies_us for r in cold.results
        ]

    def test_code_salt_invalidates(self, tmp_path):
        _config, specs = small_specs((1,))
        run_sweep(specs, store=ResultStore(tmp_path / "cache"))
        salted = run_sweep(specs, store=ResultStore(tmp_path / "cache", code_salt="v2"))
        assert (salted.cache_hits, salted.computed) == (0, 1)

    def test_no_resume_recomputes_but_refreshes_store(self, tmp_path):
        _config, specs = small_specs((1,))
        store = ResultStore(tmp_path / "cache")
        run_sweep(specs, store=store)
        again = run_sweep(specs, store=store, resume=False)
        assert (again.cache_hits, again.computed) == (0, 1)
        assert ResultStore(tmp_path / "cache").get(specs[0]) is not None

    def test_resume_completes_exactly_the_missing_points(self, tmp_path):
        _config, specs = small_specs((1, 4, 8, 15))
        full = run_sweep(specs, store=ResultStore(tmp_path / "full"))
        # Simulate an interrupted sweep: a store holding only half the rows.
        partial_store = ResultStore(tmp_path / "partial")
        for result in full.results[:2]:
            partial_store.put(result)
        partial_store.flush_index()
        resumed = run_sweep(specs, store=ResultStore(tmp_path / "partial"))
        assert (resumed.cache_hits, resumed.computed) == (2, 2)
        assert [r.latencies_us for r in resumed.results] == [
            r.latencies_us for r in full.results
        ]
        # The store now holds the complete sweep.
        assert all(spec in ResultStore(tmp_path / "partial") for spec in specs)

    def test_zero_delivery_is_an_explicit_error(self, monkeypatch):
        import repro.sweeps.spec as spec_module
        monkeypatch.setattr(spec_module, "_run_latencies",
                            lambda *args, **kwargs: [])
        _config, specs = small_specs((1,))
        with pytest.raises(ZeroDeliveryError):
            run_sweep(specs, workers=1)

    def test_mean_us_raises_on_empty(self):
        result = SweepPointResult(spec=BASE_SPEC, latencies_us=())
        with pytest.raises(ZeroDeliveryError):
            result.mean_us

    def test_stateful_selection_is_deterministic_per_point(self):
        """A spec using the stateful "random" selection must evaluate to the
        same result every time: routing built on a stateful selection is
        never shared between evaluations (regression: a shared lru-cached
        RandomSelection RNG made results depend on evaluation history,
        breaking the content-addressed cache contract)."""
        from dataclasses import replace

        spec = replace(BASE_SPEC, selection="random", selection_seed=17)
        first = evaluate_spec(spec)
        second = evaluate_spec(spec)
        assert first.latencies_us == second.latencies_us

    @pytest.mark.slow
    def test_worker_failure_still_checkpoints_completed_points(self, tmp_path):
        """A failing point must not discard other points' checkpoints: the
        pool path drains remaining futures and stores their results before
        re-raising the first error."""
        from dataclasses import replace

        good = BASE_SPEC
        bad = replace(BASE_SPEC, workload_kind="bogus-kind")
        store = ResultStore(tmp_path / "cache")
        with pytest.raises(ValueError):
            run_sweep([bad, good], store=store, workers=2)
        assert ResultStore(tmp_path / "cache").get(good) is not None

    @pytest.mark.slow
    def test_mid_chunk_failure_checkpoints_earlier_chunk_results(
        self, tmp_path, monkeypatch
    ):
        """A failure mid-chunk must not discard the chunk's earlier results
        (regression: the worker used to raise the whole chunk away, so a
        resume recomputed points that had already been evaluated).  The
        marked spec fails with ZeroDeliveryError *after* the good spec in
        the same chunk; the good result must still reach the store.  The
        fork start method propagates the monkeypatched module into the pool
        workers."""
        import repro.sweeps.spec as spec_module

        real_run_latencies = spec_module._run_latencies

        def poisoned(network, routing, workload, config, from_creation, telemetry=None):
            if workload.seed == 99:
                return []
            return real_run_latencies(
                network, routing, workload, config, from_creation, telemetry
            )

        monkeypatch.setattr(spec_module, "_run_latencies", poisoned)
        good = BASE_SPEC
        bad = replace(BASE_SPEC, workload_seed=99)
        store = ResultStore(tmp_path / "cache")
        with pytest.raises(ZeroDeliveryError):
            run_sweep([good, bad], store=store, workers=2, chunk_size=2)
        assert ResultStore(tmp_path / "cache").get(good) is not None

    def test_mid_chunk_failure_returns_partial_results_in_process(self, monkeypatch):
        """The worker entry point itself returns the pre-failure results plus
        the exception instead of raising the chunk away."""
        import repro.sweeps.spec as spec_module
        from repro.sweeps.scheduler import _evaluate_chunk

        real_run_latencies = spec_module._run_latencies

        def poisoned(network, routing, workload, config, from_creation, telemetry=None):
            if workload.seed == 99:
                return []
            return real_run_latencies(
                network, routing, workload, config, from_creation, telemetry
            )

        monkeypatch.setattr(spec_module, "_run_latencies", poisoned)
        good = BASE_SPEC
        bad = replace(BASE_SPEC, workload_seed=99)
        results, _payload, error = _evaluate_chunk([good, bad])
        assert [r.spec for r in results] == [good]
        assert isinstance(error, ZeroDeliveryError)


class TestResolveWorkers:
    def test_malformed_env_raises_sweep_error(self, monkeypatch):
        """$REPRO_SWEEP_WORKERS='four' must produce a SweepError naming the
        variable and the value, not a raw ValueError traceback."""
        from repro.sweeps import resolve_workers

        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "four")
        with pytest.raises(SweepError, match=r"REPRO_SWEEP_WORKERS.*'four'"):
            resolve_workers(None)

    def test_env_values_still_resolve(self, monkeypatch):
        from repro.sweeps import resolve_workers

        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert resolve_workers(None) == 3
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "0")
        assert resolve_workers(None) >= 1
        assert resolve_workers(2) == 2


class TestFigureIntegration:
    def test_figure2_warm_cache_is_bit_identical(self, tmp_path):
        config, specs = small_specs((1, 4, 15))
        store = ResultStore(tmp_path / "cache")
        cold = run_sweep(specs, store=store)
        warm = run_sweep(specs, store=ResultStore(tmp_path / "cache"))
        assert warm.cache_hits == len(specs)
        cold_fig = figure2_result_from_points(config, cold.results)
        warm_fig = figure2_result_from_points(config, warm.results)
        assert json.dumps(cold_fig.as_dict(), sort_keys=True) == json.dumps(
            warm_fig.as_dict(), sort_keys=True
        )

    def test_figure3_specs_route_through_orchestrator(self, tmp_path):
        config = Figure3Config(
            network_size=16,
            multicast_degrees=(4,),
            arrival_rates_per_us=(0.01,),
            scale=SMOKE,
        )
        outcome = run_sweep(figure3_specs(config), store=ResultStore(tmp_path / "c"))
        assert outcome.total == 1
        assert outcome.results[0].latencies_us
        again = run_sweep(figure3_specs(config), store=ResultStore(tmp_path / "c"))
        assert again.cache_hits == 1


class TestSharding:
    def test_disjoint_cover_for_several_shardings(self):
        """For several (index, count) combinations, the shards partition the
        spec list: pairwise disjoint and jointly exhaustive."""
        specs = [replace(BASE_SPEC, workload_seed=seed) for seed in range(17)]
        whole = sorted(spec_key(spec) for spec in specs)
        for count in (1, 2, 3, 4, 7):
            shards = [shard_specs(specs, index, count) for index in range(count)]
            keys = [set(spec_key(spec) for spec in shard) for shard in shards]
            for i in range(count):
                for j in range(i + 1, count):
                    assert not keys[i] & keys[j], (count, i, j)
            assert sorted(key for shard_keys in keys for key in shard_keys) == whole

    def test_membership_stable_under_reordering(self):
        """Two hosts building the spec list in different orders agree on
        every spec's shard (partitioning is content-addressed, not
        positional)."""
        specs = [replace(BASE_SPEC, workload_seed=seed) for seed in range(11)]
        forward = shard_specs(specs, 1, 3)
        backward = shard_specs(list(reversed(specs)), 1, 3)
        assert {spec_key(s) for s in forward} == {spec_key(s) for s in backward}
        # Input order is preserved within a shard.
        assert forward == list(reversed(backward))

    def test_single_shard_is_identity(self):
        specs = [replace(BASE_SPEC, workload_seed=seed) for seed in range(5)]
        assert shard_specs(specs, 0, 1) == specs

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_specs([BASE_SPEC], 2, 2)
        with pytest.raises(ValueError):
            shard_specs([BASE_SPEC], -1, 2)
        with pytest.raises(ValueError):
            shard_specs([BASE_SPEC], 0, 0)

    def test_parse_shard(self):
        assert parse_shard("1/4") == (0, 4)
        assert parse_shard("4/4") == (3, 4)
        for bad in ("0/4", "5/4", "1", "a/b", "1/0", "1/2/3"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_mixed_shard_runs_drop_the_manifest_tag(self, tmp_path):
        """Two different shards accumulating into one store union their
        expected keys, but the manifest's shard tag must drop to None —
        labelling the union with the latest shard would mis-attribute the
        other shard's owed points to it."""
        _config, specs = small_specs((1, 4, 8, 15))
        store = ResultStore(tmp_path / "cache")
        store.record_expected(shard_specs(specs, 0, 2), shard=(0, 2))
        assert store.manifest_status().shard == (0, 2)
        store.record_expected(shard_specs(specs, 0, 2), shard=(0, 2))
        assert store.manifest_status().shard == (0, 2)  # same tag survives
        store.record_expected(shard_specs(specs, 1, 2), shard=(1, 2))
        status = store.manifest_status()
        assert status.shard is None
        assert set(status.expected) == {store.key(spec) for spec in specs}

    def test_run_sweep_shard_records_manifest(self, tmp_path):
        _config, specs = small_specs((1, 4, 8, 15))
        store = ResultStore(tmp_path / "cache")
        outcome = run_sweep(specs, store=store, shard=(0, 2))
        shard = shard_specs(specs, 0, 2, code_salt=store.code_salt)
        assert outcome.total == len(shard)
        status = ResultStore(tmp_path / "cache").manifest_status()
        assert status is not None
        assert status.shard == (0, 2)
        assert status.complete
        assert set(status.expected) == {store.key(spec) for spec in shard}


class TestManifestStatusEdgeCases:
    """Regression pins for `manifest_status` corner cases the fleet layer
    leans on (the coordinator reads completion straight off the manifest)."""

    def test_no_manifest_returns_none(self, tmp_path):
        assert ResultStore(tmp_path / "cache").manifest_status() is None

    def test_corrupt_manifest_reads_as_absent(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.root.mkdir(parents=True, exist_ok=True)
        store.manifest_path.write_text("{not json")
        assert store.manifest_status() is None
        # A well-formed payload without an "expected" list is equally void.
        store.manifest_path.write_text(json.dumps({"schema": 1, "salt": "s"}))
        assert store.manifest_status() is None

    def test_empty_manifest_is_vacuously_complete(self, tmp_path):
        """An empty expected set (recorded before any specs existed) owes
        nothing: complete, zero counts, and a shard-less describe line."""
        store = ResultStore(tmp_path / "cache")
        store.record_expected([])
        status = store.manifest_status()
        assert status is not None
        assert status.expected == () and status.done == () and status.missing == ()
        assert status.complete
        assert status.describe() == "store: 0/0 expected points done"

    def test_expected_but_empty_store_owes_every_point(self, tmp_path):
        """A manifest recorded up front (the coordinator does this at
        startup) against a store with no rows yet: nothing done, everything
        missing, and the describe line says so."""
        _config, specs = small_specs((1, 4))
        store = ResultStore(tmp_path / "cache")
        store.record_expected(specs)
        status = store.manifest_status()
        assert status is not None and not status.complete
        assert status.done == ()
        assert set(status.missing) == {store.key(spec) for spec in specs}
        assert status.describe() == "store: 0/2 expected points done, 2 missing"

    def test_null_shard_tag_survives_and_mixed_designators_stay_null(self, tmp_path):
        """A store that accumulated mixed shard designators keeps the null
        tag on *every* later recording — once the expected set spans
        several shards no single designator may ever re-label it."""
        _config, specs = small_specs((1, 4, 8, 15))
        store = ResultStore(tmp_path / "cache")
        store.record_expected(shard_specs(specs, 0, 2), shard=(0, 2))
        store.record_expected(shard_specs(specs, 1, 2), shard=(1, 2))
        assert store.manifest_status().shard is None
        # Re-recording the original shard must not resurrect its tag.
        store.record_expected(shard_specs(specs, 0, 2), shard=(0, 2))
        status = store.manifest_status()
        assert status.shard is None
        assert status.describe().startswith("store:")
        assert set(status.expected) == {store.key(spec) for spec in specs}


class TestShardWholeDifferential:
    """The shard/engine contract: a figure assembled from N merged shard
    stores is byte-identical to the figure from one unsharded run."""

    CONFIG = Figure3Config(
        network_size=16,
        multicast_degrees=(2, 4),
        arrival_rates_per_us=(0.01, 0.02),
        scale=SCALES["smoke"],
    )

    @staticmethod
    def _export(config, results) -> bytes:
        figure = figure3_result_from_points(config, results)
        return json.dumps(figure.as_dict(), indent=2, sort_keys=True).encode()

    def test_three_merged_shards_match_one_shard_byte_identically(self, tmp_path):
        config = self.CONFIG
        specs = figure3_specs(config)

        whole = run_sweep(specs, store=ResultStore(tmp_path / "whole"))
        whole_export = self._export(config, whole.results)

        shard_stores = []
        covered = 0
        for index in range(3):
            store = ResultStore(tmp_path / f"shard{index}")
            outcome = run_sweep(specs, store=store, shard=(index, 3))
            covered += outcome.total
            shard_stores.append(store)
        assert covered == len(specs)

        report = merge_stores(tmp_path / "merged", *shard_stores)
        assert report.appended == len(specs)
        assert not report.missing

        merged = run_sweep(specs, store=ResultStore(tmp_path / "merged"))
        assert (merged.cache_hits, merged.computed) == (len(specs), 0)
        assert self._export(config, merged.results) == whole_export


class TestMergeStores:
    def _result(self, seed: int, latency: float = 1.0) -> SweepPointResult:
        return SweepPointResult(
            spec=replace(BASE_SPEC, workload_seed=seed),
            latencies_us=(latency,),
            metrics=(("tree_root", 0),),
        )

    def test_salt_mismatch_rejected_with_clear_error(self, tmp_path):
        src = ResultStore(tmp_path / "src", code_salt="elsewhere-v2")
        src.put(self._result(1))
        dst = ResultStore(tmp_path / "dst")
        with pytest.raises(SweepError, match="elsewhere-v2"):
            merge_stores(dst, src)

    def test_merge_into_itself_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(self._result(1))
        with pytest.raises(ValueError):
            merge_stores(store, ResultStore(tmp_path / "store"))

    def test_nonexistent_source_rejected(self, tmp_path):
        """A typo'd shard path must not pass as an empty store and report a
        successful zero-row merge."""
        with pytest.raises(SweepError, match="does not exist"):
            merge_stores(tmp_path / "dst", tmp_path / "no-such-shard")

    def test_last_source_wins_on_key_collision(self, tmp_path):
        first = ResultStore(tmp_path / "a")
        second = ResultStore(tmp_path / "b")
        first.put(self._result(1, latency=1.0))
        second.put(self._result(1, latency=2.0))
        dst = ResultStore(tmp_path / "dst")
        report = merge_stores(dst, first, second)
        assert (report.appended, report.replaced) == (1, 1)
        assert dst.get(replace(BASE_SPEC, workload_seed=1)).latencies_us == (2.0,)

    def test_merged_manifest_reports_missing_shard_points(self, tmp_path):
        """A coordinator merging an incomplete shard sees exactly the owed
        keys in the merged manifest."""
        _config, specs = small_specs((1, 4, 8))
        store = ResultStore(tmp_path / "shard")
        store.record_expected(specs, shard=(0, 1))
        run_sweep(specs[:2], store=store)
        report = merge_stores(tmp_path / "merged", store)
        missing = {store.key(spec) for spec in specs[2:]}
        assert set(report.missing) == missing
        status = ResultStore(tmp_path / "merged").manifest_status()
        assert set(status.missing) == missing
        # Completing the owed points and re-merging settles the account.
        run_sweep(specs, store=ResultStore(tmp_path / "shard"))
        report = merge_stores(tmp_path / "merged", ResultStore(tmp_path / "shard"))
        assert not report.missing
        assert ResultStore(tmp_path / "merged").manifest_status().complete


class TestClearStaleIndex:
    def test_clear_then_merge_rebuilds_index(self, tmp_path):
        """Regression: after ``clear()``, a merge into the same root (by a
        coordinator holding its own store instance) must be visible to the
        original instance — the advisory index is rebuilt from the new
        ``results.jsonl``, never trusted stale."""
        spec_a = BASE_SPEC
        spec_b = replace(BASE_SPEC, workload_seed=6)
        src = ResultStore(tmp_path / "src")
        src.put(evaluate_spec(spec_a))
        src.flush_index()

        store = ResultStore(tmp_path / "dst")
        store.put(evaluate_spec(spec_b))
        store.flush_index()
        store.clear()
        assert store.get(spec_b) is None

        merge_stores(ResultStore(tmp_path / "dst"), src)  # a separate instance
        # The cleared instance sees the merged row (no stale empty index)...
        assert store.get(spec_a) is not None
        assert store.get(spec_b) is None
        # ...and persisting its index must not poison later opens.
        store.flush_index()
        assert ResultStore(tmp_path / "dst").get(spec_a) is not None

    def test_flush_after_external_append_does_not_poison_index(self, tmp_path):
        """An index flushed by an instance that missed an external append
        must be detected as stale (its recorded size covers only what the
        instance indexed), so the next open rescans and sees every row."""
        spec_a, spec_b = BASE_SPEC, replace(BASE_SPEC, workload_seed=6)
        store = ResultStore(tmp_path / "cache")
        store.put(evaluate_spec(spec_a))
        # Another writer appends behind this instance's back...
        ResultStore(tmp_path / "cache").put(evaluate_spec(spec_b))
        # ...and the stale instance persists its (older) view.
        store.flush_index()
        reopened = ResultStore(tmp_path / "cache")
        assert reopened.get(spec_a) is not None
        assert reopened.get(spec_b) is not None


class TestSweepCli:
    def test_sweep_command_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "--scale", "smoke", "sweep", "figure2", "--network-sizes", "16",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        rc = main(argv + ["--export", str(tmp_path / "cold.json")])
        assert rc == 0
        cold_out = capsys.readouterr().out
        assert "0 cache hits" in cold_out
        rc = main(argv + ["--export", str(tmp_path / "warm.json")])
        assert rc == 0
        warm_out = capsys.readouterr().out
        assert "0 computed" in warm_out
        assert (tmp_path / "cold.json").read_bytes() == (tmp_path / "warm.json").read_bytes()

    def test_sweep_shard_and_merge_roundtrip(self, tmp_path, capsys):
        """CLI end-to-end: two sharded runs on disjoint cache dirs, a
        ``sweep merge`` (sources trail ``--into``, the argparse-hostile
        shape), then an unsharded warm run off the merged store that
        computes nothing and exports byte-identically."""
        from repro.cli import main

        base = [
            "--scale", "smoke", "sweep", "figure2", "--network-sizes", "16",
        ]
        rc = main(base + ["--cache-dir", str(tmp_path / "whole"),
                          "--export", str(tmp_path / "whole.json")])
        assert rc == 0
        capsys.readouterr()
        for index in (1, 2):
            rc = main(base + ["--shard", f"{index}/2",
                              "--cache-dir", str(tmp_path / f"shard{index}")])
            assert rc == 0
            assert f"[shard {index}/2:" in capsys.readouterr().out
        rc = main(["sweep", "merge", "--into", str(tmp_path / "merged"),
                   str(tmp_path / "shard1"), str(tmp_path / "shard2")])
        assert rc == 0
        assert "still missing" not in capsys.readouterr().out
        rc = main(base + ["--cache-dir", str(tmp_path / "merged"),
                          "--export", str(tmp_path / "merged.json")])
        assert rc == 0
        assert "0 computed" in capsys.readouterr().out
        assert (tmp_path / "merged.json").read_bytes() == (
            tmp_path / "whole.json"
        ).read_bytes()

    def test_sweep_merge_requires_into_and_sources(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep", "merge", str(tmp_path / "src")]) == 2
        assert main(["sweep", "merge", "--into", str(tmp_path / "dst")]) == 2
        assert main(["--scale", "smoke", "sweep", "figure2",
                     "--into", str(tmp_path / "dst")]) == 2
        capsys.readouterr()

    def test_sweep_invalid_shard_designator(self, capsys):
        from repro.cli import main

        assert main(["--scale", "smoke", "sweep", "figure2", "--shard", "9/4"]) == 2
        assert "shard" in capsys.readouterr().err

    def test_sweep_command_no_cache(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)  # the default store is CWD-relative
        rc = main([
            "--scale", "smoke", "sweep", "compare", "--network-size", "16",
            "--destinations", "8", "--bound-only", "--no-cache",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert not (tmp_path / ".sweep-cache").exists()
