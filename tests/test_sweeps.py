"""Tests for the sweep orchestration subsystem (:mod:`repro.sweeps`).

Covers the satellite guarantees the subsystem exists to provide:

* spec hashing is stable and sensitive to every field plus the code salt;
* the store round-trips results, survives a truncated trailing line (a run
  killed mid-append) and rebuilds a stale index;
* parallel and sequential runs are bit-identical under the same seeds;
* cache hit/miss accounting and code-salt invalidation;
* an interrupted sweep resumes by computing exactly the missing points;
* zero-delivery points surface as explicit errors, not NaN rows.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ZeroDeliveryError
from repro.experiments.figure2 import Figure2Config, figure2_result_from_points, figure2_specs
from repro.experiments.figure3 import Figure3Config, figure3_specs
from repro.experiments.common import ExperimentScale, SCALES
from repro.sweeps import (
    ResultStore,
    SweepPointResult,
    SweepPointSpec,
    evaluate_spec,
    run_sweep,
    spec_key,
)

SMOKE = SCALES["smoke"]


def small_specs(counts=(1, 4), network_size=16, samples=1):
    config = Figure2Config(
        network_sizes=(network_size,),
        destination_counts={network_size: list(counts)},
        scale=ExperimentScale(
            name="tiny", message_length_flits=16, samples_per_point=samples,
            messages_per_rate_point=10,
        ),
    )
    return config, figure2_specs(config)


BASE_SPEC = SweepPointSpec(
    workload_kind="single-multicast",
    network_size=16,
    topology_seed=3,
    message_length_flits=16,
    workload_params=(("num_destinations", 4), ("samples", 2)),
    workload_seed=5,
    x=4.0,
)


class TestSpecKey:
    def test_stable_for_equal_specs(self):
        clone = SweepPointSpec(**{f: getattr(BASE_SPEC, f) for f in (
            "workload_kind", "network_size", "topology_seed", "message_length_flits",
            "workload_params", "workload_seed", "root_strategy", "selection",
            "selection_seed", "sim_overrides", "label", "x")})
        assert spec_key(BASE_SPEC) == spec_key(clone)

    def test_sensitive_to_every_field(self):
        base = spec_key(BASE_SPEC)
        from dataclasses import replace
        variants = [
            replace(BASE_SPEC, workload_seed=6),
            replace(BASE_SPEC, topology_seed=4),
            replace(BASE_SPEC, message_length_flits=32),
            replace(BASE_SPEC, workload_params=(("num_destinations", 5), ("samples", 2))),
            replace(BASE_SPEC, sim_overrides=(("input_buffer_depth", 2),)),
            replace(BASE_SPEC, selection="first-allowed"),
            replace(BASE_SPEC, root_strategy="first"),
            replace(BASE_SPEC, label="other"),
            replace(BASE_SPEC, x=5.0),
        ]
        keys = {base} | {spec_key(v) for v in variants}
        assert len(keys) == len(variants) + 1

    def test_sensitive_to_code_salt(self):
        assert spec_key(BASE_SPEC, "salt-a") != spec_key(BASE_SPEC, "salt-b")


class TestResultStore:
    def test_roundtrip_and_persistence(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        result = evaluate_spec(BASE_SPEC)
        assert store.get(BASE_SPEC) is None
        store.put(result)
        store.flush_index()
        # A brand-new store instance (fresh index load) sees the same row.
        reopened = ResultStore(tmp_path / "cache")
        loaded = reopened.get(BASE_SPEC)
        assert loaded is not None
        assert loaded.latencies_us == result.latencies_us
        assert loaded.metrics == result.metrics

    def test_stale_index_triggers_rescan(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(evaluate_spec(BASE_SPEC))
        store.flush_index()
        # Append another row without updating the index: size mismatch.
        from dataclasses import replace
        other = replace(BASE_SPEC, workload_seed=6)
        second = ResultStore(tmp_path / "cache")
        second.put(evaluate_spec(other))
        third = ResultStore(tmp_path / "cache")
        assert third.get(BASE_SPEC) is not None
        assert third.get(other) is not None

    def test_truncated_tail_is_dropped(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(evaluate_spec(BASE_SPEC))
        # Simulate a run killed mid-append: garbage half-line at the end.
        with open(store.results_path, "ab") as handle:
            handle.write(b'{"key": "deadbeef", "latencies')
        reopened = ResultStore(tmp_path / "cache")
        assert reopened.get(BASE_SPEC) is not None
        # The partial line was cut off, so appends produce a valid file.
        from dataclasses import replace
        other = replace(BASE_SPEC, workload_seed=6)
        reopened.put(evaluate_spec(other))
        final = ResultStore(tmp_path / "cache")
        assert final.get(other) is not None
        assert len(final) == 2

    def test_iter_results_rebuilds_specs(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        result = evaluate_spec(BASE_SPEC)
        store.put(result)
        (loaded,) = list(store.iter_results())
        assert loaded.spec == BASE_SPEC
        assert loaded.latencies_us == result.latencies_us


class TestRunSweep:
    def test_results_preserve_spec_order(self):
        _config, specs = small_specs((4, 1))
        outcome = run_sweep(specs)
        assert [r.spec.x for r in outcome.results] == [s.x for s in specs]
        assert outcome.computed == len(specs)
        assert outcome.cache_hits == 0

    def test_duplicate_specs_computed_once(self):
        _config, specs = small_specs((1,))
        outcome = run_sweep(specs * 3)
        assert outcome.total == 3
        assert outcome.computed == 1
        assert len({id(r) for r in outcome.results}) == 1

    @pytest.mark.slow
    def test_parallel_matches_sequential_bit_identically(self):
        _config, specs = small_specs((1, 4, 8))
        sequential = run_sweep(specs, workers=1)
        parallel = run_sweep(specs, workers=2)
        assert [r.latencies_us for r in sequential.results] == [
            r.latencies_us for r in parallel.results
        ]
        assert [r.metrics for r in sequential.results] == [
            r.metrics for r in parallel.results
        ]

    def test_cache_hit_miss_accounting(self, tmp_path):
        _config, specs = small_specs((1, 4))
        store = ResultStore(tmp_path / "cache")
        cold = run_sweep(specs, store=store)
        assert (cold.cache_hits, cold.computed) == (0, 2)
        warm = run_sweep(specs, store=ResultStore(tmp_path / "cache"))
        assert (warm.cache_hits, warm.computed) == (2, 0)
        assert [r.latencies_us for r in warm.results] == [
            r.latencies_us for r in cold.results
        ]

    def test_code_salt_invalidates(self, tmp_path):
        _config, specs = small_specs((1,))
        run_sweep(specs, store=ResultStore(tmp_path / "cache"))
        salted = run_sweep(specs, store=ResultStore(tmp_path / "cache", code_salt="v2"))
        assert (salted.cache_hits, salted.computed) == (0, 1)

    def test_no_resume_recomputes_but_refreshes_store(self, tmp_path):
        _config, specs = small_specs((1,))
        store = ResultStore(tmp_path / "cache")
        run_sweep(specs, store=store)
        again = run_sweep(specs, store=store, resume=False)
        assert (again.cache_hits, again.computed) == (0, 1)
        assert ResultStore(tmp_path / "cache").get(specs[0]) is not None

    def test_resume_completes_exactly_the_missing_points(self, tmp_path):
        _config, specs = small_specs((1, 4, 8, 15))
        full = run_sweep(specs, store=ResultStore(tmp_path / "full"))
        # Simulate an interrupted sweep: a store holding only half the rows.
        partial_store = ResultStore(tmp_path / "partial")
        for result in full.results[:2]:
            partial_store.put(result)
        partial_store.flush_index()
        resumed = run_sweep(specs, store=ResultStore(tmp_path / "partial"))
        assert (resumed.cache_hits, resumed.computed) == (2, 2)
        assert [r.latencies_us for r in resumed.results] == [
            r.latencies_us for r in full.results
        ]
        # The store now holds the complete sweep.
        assert all(spec in ResultStore(tmp_path / "partial") for spec in specs)

    def test_zero_delivery_is_an_explicit_error(self, monkeypatch):
        import repro.sweeps.spec as spec_module
        monkeypatch.setattr(spec_module, "_run_latencies",
                            lambda *args, **kwargs: [])
        _config, specs = small_specs((1,))
        with pytest.raises(ZeroDeliveryError):
            run_sweep(specs, workers=1)

    def test_mean_us_raises_on_empty(self):
        result = SweepPointResult(spec=BASE_SPEC, latencies_us=())
        with pytest.raises(ZeroDeliveryError):
            result.mean_us

    def test_stateful_selection_is_deterministic_per_point(self):
        """A spec using the stateful "random" selection must evaluate to the
        same result every time: routing built on a stateful selection is
        never shared between evaluations (regression: a shared lru-cached
        RandomSelection RNG made results depend on evaluation history,
        breaking the content-addressed cache contract)."""
        from dataclasses import replace

        spec = replace(BASE_SPEC, selection="random", selection_seed=17)
        first = evaluate_spec(spec)
        second = evaluate_spec(spec)
        assert first.latencies_us == second.latencies_us

    @pytest.mark.slow
    def test_worker_failure_still_checkpoints_completed_points(self, tmp_path):
        """A failing point must not discard other points' checkpoints: the
        pool path drains remaining futures and stores their results before
        re-raising the first error."""
        from dataclasses import replace

        good = BASE_SPEC
        bad = replace(BASE_SPEC, workload_kind="bogus-kind")
        store = ResultStore(tmp_path / "cache")
        with pytest.raises(ValueError):
            run_sweep([bad, good], store=store, workers=2)
        assert ResultStore(tmp_path / "cache").get(good) is not None


class TestFigureIntegration:
    def test_figure2_warm_cache_is_bit_identical(self, tmp_path):
        config, specs = small_specs((1, 4, 15))
        store = ResultStore(tmp_path / "cache")
        cold = run_sweep(specs, store=store)
        warm = run_sweep(specs, store=ResultStore(tmp_path / "cache"))
        assert warm.cache_hits == len(specs)
        cold_fig = figure2_result_from_points(config, cold.results)
        warm_fig = figure2_result_from_points(config, warm.results)
        assert json.dumps(cold_fig.as_dict(), sort_keys=True) == json.dumps(
            warm_fig.as_dict(), sort_keys=True
        )

    def test_figure3_specs_route_through_orchestrator(self, tmp_path):
        config = Figure3Config(
            network_size=16,
            multicast_degrees=(4,),
            arrival_rates_per_us=(0.01,),
            scale=SMOKE,
        )
        outcome = run_sweep(figure3_specs(config), store=ResultStore(tmp_path / "c"))
        assert outcome.total == 1
        assert outcome.results[0].latencies_us
        again = run_sweep(figure3_specs(config), store=ResultStore(tmp_path / "c"))
        assert again.cache_hits == 1


class TestSweepCli:
    def test_sweep_command_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "--scale", "smoke", "sweep", "figure2", "--network-sizes", "16",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        rc = main(argv + ["--export", str(tmp_path / "cold.json")])
        assert rc == 0
        cold_out = capsys.readouterr().out
        assert "0 cache hits" in cold_out
        rc = main(argv + ["--export", str(tmp_path / "warm.json")])
        assert rc == 0
        warm_out = capsys.readouterr().out
        assert "0 computed" in warm_out
        assert (tmp_path / "cold.json").read_bytes() == (tmp_path / "warm.json").read_bytes()

    def test_sweep_command_no_cache(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)  # the default store is CWD-relative
        rc = main([
            "--scale", "smoke", "sweep", "compare", "--network-size", "16",
            "--destinations", "8", "--bound-only", "--no-cache",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert not (tmp_path / ".sweep-cache").exists()
