"""Tests for topology generators, builders, validators and properties."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.topology.builder import NetworkBuilder, network_from_edges
from repro.topology.examples import figure1_network, line_network, two_switch_network
from repro.topology.irregular import (
    IrregularLatticeGenerator,
    lattice_irregular_network,
    random_irregular_network,
)
from repro.topology.properties import (
    average_switch_distance,
    degree_histogram,
    graph_center_switches,
    summarize,
    switch_diameter,
)
from repro.topology.regular import (
    hypercube_network,
    mesh_network,
    ring_network,
    star_network,
    torus_network,
)
from repro.topology.validate import validate_network


class TestBuilder:
    def test_fluent_construction(self):
        net = (
            NetworkBuilder(ports_per_switch=8)
            .switches("A", "B", "C")
            .link("A", "B")
            .link("B", "C")
            .processor("pA", on="A")
            .processors_everywhere()
            .build()
        )
        assert net.num_switches == 3
        # explicit pA plus one per switch
        assert net.num_processors == 4

    def test_build_requires_connectivity(self):
        builder = NetworkBuilder().switches("A", "B")
        with pytest.raises(Exception):
            builder.build(require_connected=True)

    def test_builder_single_use(self):
        builder = NetworkBuilder().switches("A")
        builder.processor("p", on="A")
        builder.build()
        with pytest.raises(TopologyError):
            builder.switch("B")

    def test_network_from_edges(self):
        net = network_from_edges(
            ["A", "B", "C"],
            [("A", "B"), ("B", "C")],
            attach_processor_per_switch=True,
        )
        assert net.num_switches == 3
        assert net.num_processors == 3
        assert net.has_channel(net.node_by_label("A"), net.node_by_label("B"))


class TestFigure1:
    def test_structure_matches_paper(self):
        fixture = figure1_network()
        net = fixture.network
        # Switches 1,2,3,4,6,7; processors 5,8,9,10,11.
        assert net.num_switches == 6
        assert net.num_processors == 5
        # Tree + cross edges from the paper.
        for a, b in [(1, 2), (1, 3), (1, 4), (4, 6), (4, 7), (2, 3), (3, 4)]:
            assert net.has_channel(fixture.nodes[a], fixture.nodes[b])
        # Processor attachments.
        assert net.switch_of(fixture.nodes[5]) == fixture.nodes[2]
        assert net.switch_of(fixture.nodes[8]) == fixture.nodes[6]
        assert net.switch_of(fixture.nodes[11]) == fixture.nodes[7]

    def test_fixture_accessors(self):
        fixture = figure1_network()
        assert fixture.source == fixture.nodes[5]
        assert fixture.root == fixture.nodes[1]
        assert len(fixture.destinations) == 4

    def test_node_id_order_matches_labels(self):
        fixture = figure1_network()
        ids = [fixture.nodes[label] for label in range(1, 12)]
        assert ids == sorted(ids)


class TestIrregularGenerators:
    @pytest.mark.parametrize("size", [8, 32, 64])
    def test_lattice_generator_produces_connected_networks(self, size):
        net = lattice_irregular_network(size, seed=1)
        assert net.num_switches == size
        assert net.num_processors == size
        assert net.is_connected()

    def test_lattice_respects_port_budget(self):
        net = lattice_irregular_network(48, seed=3)
        report = validate_network(net)
        assert report.ok, report.violations

    def test_lattice_determinism(self):
        a = lattice_irregular_network(24, seed=9)
        b = lattice_irregular_network(24, seed=9)
        assert sorted(a.iter_bidirectional_links()) == sorted(b.iter_bidirectional_links())

    def test_lattice_seed_changes_topology(self):
        a = lattice_irregular_network(24, seed=1)
        b = lattice_irregular_network(24, seed=2)
        assert sorted(a.iter_bidirectional_links()) != sorted(b.iter_bidirectional_links())

    def test_generator_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            IrregularLatticeGenerator(num_switches=1)
        with pytest.raises(ConfigurationError):
            IrregularLatticeGenerator(num_switches=8, occupancy=0.0)
        with pytest.raises(ConfigurationError):
            IrregularLatticeGenerator(num_switches=8, ports_per_switch=2)

    def test_random_irregular_network(self):
        net = random_irregular_network(10, extra_links=5, seed=4)
        assert net.num_switches == 10
        assert net.is_connected()
        # Tree edges (9) plus up to 5 chords.
        assert 9 <= net.num_channels // 2 - net.num_processors <= 14

    def test_random_irregular_multiple_processors(self):
        net = random_irregular_network(4, seed=0, processors_per_switch=2)
        assert net.num_processors == 8


class TestRegularGenerators:
    def test_mesh(self):
        net = mesh_network(3, 4)
        assert net.num_switches == 12
        assert net.is_connected()
        # Corner switches have degree 2 (+1 processor).
        corner = net.node_by_label("s0_0")
        assert net.degree(corner) == 3

    def test_torus_has_wraparound(self):
        net = torus_network(4, 4)
        assert net.num_switches == 16
        first = net.node_by_label("s0_0")
        last_in_row = net.node_by_label("s0_3")
        assert net.has_channel(first, last_in_row)

    def test_torus_rejects_small_dimensions(self):
        with pytest.raises(ConfigurationError):
            torus_network(2, 4)

    def test_hypercube(self):
        net = hypercube_network(4)
        assert net.num_switches == 16
        for switch in net.switches():
            switch_neighbors = [n for n in net.neighbors(switch) if net.is_switch(n)]
            assert len(switch_neighbors) == 4

    def test_star_and_ring(self):
        star = star_network(5)
        assert star.num_switches == 6
        ring = ring_network(6)
        assert ring.num_switches == 6
        for switch in ring.switches():
            switch_neighbors = [n for n in ring.neighbors(switch) if ring.is_switch(n)]
            assert len(switch_neighbors) == 2

    def test_dimension_checks(self):
        with pytest.raises(ConfigurationError):
            hypercube_network(0)
        with pytest.raises(ConfigurationError):
            mesh_network(0, 3)
        with pytest.raises(ConfigurationError):
            ring_network(2)


class TestPropertiesAndValidation:
    def test_line_properties(self):
        net = line_network(5)
        assert switch_diameter(net) == 4
        centers = graph_center_switches(net)
        assert centers == [net.node_by_label("s2")]
        assert average_switch_distance(net) == pytest.approx(2.0)

    def test_degree_histogram(self):
        net = two_switch_network()
        histogram = degree_histogram(net)
        assert histogram == {2: 2}

    def test_summarize(self):
        net = mesh_network(3, 3)
        summary = summarize(net)
        assert summary.num_switches == 9
        assert summary.switch_diameter == 4
        assert summary.as_dict()["switches"] == 9

    def test_validate_flags_disconnected(self):
        from repro.topology.network import Network

        net = Network()
        a = net.add_switch()
        net.add_switch()
        net.add_processor(a)
        report = validate_network(net)
        assert not report.ok
        assert any("connected" in v for v in report.violations)
        with pytest.raises(TopologyError):
            report.raise_if_invalid()

    def test_validate_ok_network_with_warning(self):
        from repro.topology.network import Network

        net = Network()
        a = net.add_switch()
        b = net.add_switch()
        net.connect(a, b)
        net.add_processor(a)
        report = validate_network(net)
        assert report.ok
        assert any("no attached processor" in w for w in report.warnings)

    def test_validate_requires_processors(self):
        from repro.topology.network import Network

        net = Network()
        a = net.add_switch()
        b = net.add_switch()
        net.connect(a, b)
        report = validate_network(net)
        assert not report.ok


class TestDeterministicProperties:
    """Regression tests for set-iteration hazards fixed by repro-lint (R1)."""

    def test_eccentricities_insertion_order_is_sorted(self):
        from repro.topology.properties import switch_eccentricities

        net = lattice_irregular_network(24, seed=3)
        ecc = switch_eccentricities(net)
        # The dict's insertion order is a public, observable property; it
        # must follow switch ids, never the salted set-hash order.
        assert list(ecc) == sorted(ecc)

    def test_average_switch_distance_stable_across_calls(self):
        net = lattice_irregular_network(24, seed=3)
        assert average_switch_distance(net) == average_switch_distance(net)
