"""Smoke tests running the example applications end to end.

The examples are part of the public deliverable; these tests make sure they
keep working as the library evolves.  They are executed in-process (via
``runpy``) so coverage tools see them and failures produce real tracebacks.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"example {name} is missing"
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "figure1_walkthrough.py",
        "single_multicast_sweep.py",
        "mixed_traffic_study.py",
        "deadlock_verification.py",
        "partitioned_broadcast.py",
    } <= names


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    output = capsys.readouterr().out
    assert "SPAM multicast latency" in output
    assert "Hardware-multicast advantage" in output


def test_figure1_walkthrough_runs(capsys):
    run_example("figure1_walkthrough.py")
    output = capsys.readouterr().out
    assert "LCA of destinations: node 4" in output
    assert "delivered to all 4 destinations: True" in output


def test_single_multicast_sweep_runs(capsys):
    run_example("single_multicast_sweep.py", argv=["24"])
    output = capsys.readouterr().out
    assert "Latency vs number of destinations" in output
    assert "software lower bound" in output


@pytest.mark.slow
def test_mixed_traffic_study_runs(capsys):
    run_example("mixed_traffic_study.py")
    output = capsys.readouterr().out
    assert "Mean latency" in output


@pytest.mark.slow
def test_deadlock_verification_runs(capsys):
    run_example("deadlock_verification.py")
    output = capsys.readouterr().out
    assert "acyclic=True" in output
    assert "deadlocked=False" in output
    assert "stress rounds deadlocked" in output


@pytest.mark.slow
def test_partitioned_broadcast_runs(capsys):
    run_example("partitioned_broadcast.py")
    output = capsys.readouterr().out
    assert "partitioned broadcast" in output.lower()
