"""Tests for ``tools/repro_lint`` — the determinism static analyzer.

Each rule gets at least one *positive* snippet (the hazard fires) and one
*negative* snippet (the corrected code is silent), written to a temporary
project tree that mirrors the repository's scoped paths.  On top of the
per-rule tests: pragma discipline, baseline round-trips, the CLI contract,
the ``check_counter_docs`` shim, and the tier-1 "self-clean" test asserting
the real repository lints clean with an empty baseline.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint import DEFAULT_PATHS, all_rules, run_lint, write_baseline  # noqa: E402


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def lint_project(tmp_path, files, select=None, **kwargs):
    """Write ``files`` (relpath -> dedented text) under ``tmp_path``, lint."""
    for relpath, text in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")
    return run_lint(root=tmp_path, paths=list(DEFAULT_PATHS), select=select, **kwargs)


def lint_snippet(tmp_path, code, relpath="src/repro/module.py", select=None):
    return lint_project(tmp_path, {relpath: code}, select=select)


def rule_ids(result):
    return [finding.rule for finding in result.findings]


# ----------------------------------------------------------------------
# R1: set-iteration order
# ----------------------------------------------------------------------
def test_r1_fires_on_for_loop_over_set_parameter(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def collect(items: set[int]) -> list[int]:
            out = []
            for item in items:
                out.append(item)
            return out
        """,
        select=["R1"],
    )
    assert rule_ids(result) == ["R1"]


def test_r1_silent_when_wrapped_in_sorted(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def collect(items: set[int]) -> list[int]:
            out = []
            for item in sorted(items):
                out.append(item)
            return out
        """,
        select=["R1"],
    )
    assert rule_ids(result) == []


def test_r1_fires_on_sum_and_comprehension_over_set_literal(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def f():
            values = {1, 2, 3}
            total = sum(values)
            doubled = [v * 2 for v in values]
            return total, doubled
        """,
        select=["R1"],
    )
    assert rule_ids(result) == ["R1", "R1"]


def test_r1_sorted_with_key_still_flagged_but_plain_sorted_is_safe(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def f(items: set[str]):
            good = sorted(items)
            bad = sorted(items, key=len)
            return good, bad
        """,
        select=["R1"],
    )
    assert rule_ids(result) == ["R1"]
    assert "sorted(key=...)" in result.findings[0].message


def test_r1_tracks_self_set_attributes(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        class Engine:
            def __init__(self):
                self._segments = set()

            def snapshot(self):
                return list(self._segments)
        """,
        select=["R1"],
    )
    assert rule_ids(result) == ["R1"]


def test_r1_order_insensitive_consumers_are_safe(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def f(items: set[int]):
            return len(items), any(i > 0 for i in items), set(items)
        """,
        select=["R1"],
    )
    assert rule_ids(result) == []


def test_r1_out_of_scope_path_is_ignored(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def f(items: set[int]):
            return sum(items)
        """,
        relpath="src/other/module.py",
        select=["R1"],
    )
    assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R2: builtin hash()/id()
# ----------------------------------------------------------------------
def test_r2_fires_on_builtin_hash_and_id(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def key(spec):
            return hash(spec), id(spec)
        """,
        select=["R2"],
    )
    assert rule_ids(result) == ["R2", "R2"]


def test_r2_silent_on_stable_digests(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        import hashlib

        def key(payload: bytes) -> str:
            return hashlib.sha256(payload).hexdigest()
        """,
        select=["R2"],
    )
    assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R3: RNG discipline
# ----------------------------------------------------------------------
def test_r3_fires_on_global_numpy_rng_state(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        import numpy as np

        def f():
            np.random.seed(42)
            return np.random.random()
        """,
        select=["R3"],
    )
    assert rule_ids(result) == ["R3", "R3"]


def test_r3_fires_on_unseeded_generators(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        import random
        from numpy.random import default_rng

        def f():
            return random.Random(), default_rng()
        """,
        select=["R3"],
    )
    assert rule_ids(result) == ["R3", "R3"]


def test_r3_silent_on_seeded_generators(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        import random
        from numpy.random import default_rng

        def f(seed: int):
            return random.Random(seed), default_rng(seed)
        """,
        select=["R3"],
    )
    assert rule_ids(result) == []


def test_r3_fires_on_stdlib_global_random(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        import random

        def f(xs):
            random.shuffle(xs)
            return xs
        """,
        select=["R3"],
    )
    assert rule_ids(result) == ["R3"]


# ----------------------------------------------------------------------
# R4: wall-clock & environment leaks
# ----------------------------------------------------------------------
def test_r4_fires_on_wall_clock_entropy_and_env_reads(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        import os
        import time
        from datetime import datetime

        def f():
            started = time.time()
            stamp = datetime.now()
            noise = os.urandom(8)
            knob = os.environ.get("SOME_KNOB")
            raw = os.environ["OTHER_KNOB"]
            return started, stamp, noise, knob, raw
        """,
        select=["R4"],
    )
    assert rule_ids(result) == ["R4"] * 5


def test_r4_silent_on_simulated_time(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def advance(now_ns: int, delta_ns: int) -> int:
            return now_ns + delta_ns
        """,
        select=["R4"],
    )
    assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R5: float accumulation order
# ----------------------------------------------------------------------
def test_r5_fires_in_stats_scope_and_r1_does_not_double_report(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def mean(values: set[float]) -> float:
            return sum(values) / len(values)
        """,
        relpath="src/repro/simulator/stats.py",
        select=["R1", "R5"],
    )
    assert rule_ids(result) == ["R5"]


def test_r5_silent_when_accumulating_sorted_values(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def mean(values: set[float]) -> float:
            return sum(sorted(values)) / len(values)
        """,
        relpath="src/repro/analysis/stats.py",
        select=["R1", "R5"],
    )
    assert rule_ids(result) == []


def test_r5_fires_on_generator_driven_by_set(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def total(values: set[float]) -> float:
            return sum(v * 2.0 for v in values)
        """,
        relpath="src/repro/analysis/aggregate.py",
        select=["R5"],
    )
    assert rule_ids(result) == ["R5"]


# ----------------------------------------------------------------------
# R6: counter discipline
# ----------------------------------------------------------------------
def test_r6_fires_on_uninitialized_counter(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        class Engine:
            def __init__(self):
                self.ready = 0

            def step(self):
                self.coalesce_hits += 1
        """,
        relpath="src/repro/simulator/thing.py",
        select=["R6"],
    )
    assert rule_ids(result) == ["R6"]
    assert "coalesce_hits" in result.findings[0].message


def test_r6_silent_when_counter_initialized_in_init_or_reset(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        class Engine:
            def __init__(self):
                self.coalesce_hits = 0

            def reset_counters(self):
                self.coalesce_misses = 0

            def step(self):
                self.coalesce_hits += 1
                self.coalesce_misses += 1
        """,
        relpath="src/repro/simulator/thing.py",
        select=["R6"],
    )
    assert rule_ids(result) == []


_ENGINE_WITH_COUNTER = """
    class WormholeSimulator:
        def __init__(self):
            self.coalesce_documented = 0
            self.coalesce_mystery = 0
"""


def test_r6_doc_coverage_both_directions(tmp_path):
    result = lint_project(
        tmp_path,
        {
            "src/repro/simulator/engine.py": _ENGINE_WITH_COUNTER,
            "docs/engine_counters.md": """
                ### `coalesce_documented`
                Documented counter.

                ### `coalesce_stale`
                No longer exists.
            """,
        },
        select=["R6"],
    )
    messages = {finding.rule + ":" + finding.path: finding.message for finding in result.findings}
    assert len(result.findings) == 2
    assert "coalesce_mystery" in messages["R6:src/repro/simulator/engine.py"]
    assert "coalesce_stale" in messages["R6:docs/engine_counters.md"]


_REGIONS_WITH_COUNTERS = """
    from dataclasses import dataclass

    @dataclass
    class RegionRunResult:
        region_documented: int
        region_mystery: int
"""


def test_r6_region_counter_doc_coverage_both_directions(tmp_path):
    result = lint_project(
        tmp_path,
        {
            "src/repro/simulator/regions.py": _REGIONS_WITH_COUNTERS,
            "docs/engine_counters.md": """
                ### `region_documented`
                Documented counter.

                ### `region_stale`
                No longer exists.
            """,
        },
        select=["R6"],
    )
    messages = {finding.rule + ":" + finding.path: finding.message for finding in result.findings}
    assert len(result.findings) == 2
    assert "region_mystery" in messages["R6:src/repro/simulator/regions.py"]
    assert "region_stale" in messages["R6:docs/engine_counters.md"]


def test_r6_region_counters_clean_and_independent_of_engine_counters(tmp_path):
    """A fully documented region result must lint clean, and coalesce*
    engine headings must never cross-flag against regions.py (nor
    region_* headings against engine.py)."""
    result = lint_project(
        tmp_path,
        {
            "src/repro/simulator/regions.py": """
                from dataclasses import dataclass

                @dataclass
                class RegionRunResult:
                    region_documented: int
            """,
            "src/repro/simulator/engine.py": """
                class WormholeSimulator:
                    def __init__(self):
                        self.coalesce_documented = 0
            """,
            "docs/engine_counters.md": """
                ### `coalesce_documented`
                Engine counter.

                ### `region_documented`
                Region counter.
            """,
        },
        select=["R6"],
    )
    assert rule_ids(result) == []


def test_r6_doc_coverage_clean(tmp_path):
    result = lint_project(
        tmp_path,
        {
            "src/repro/simulator/engine.py": """
                class WormholeSimulator:
                    def __init__(self):
                        self.coalesce_documented = 0
            """,
            "docs/engine_counters.md": """
                ### `coalesce_documented`
                Documented counter.
            """,
        },
        select=["R6"],
    )
    assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R7: process-pool purity
# ----------------------------------------------------------------------
def test_r7_fires_on_lambda_and_bound_method_submission(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def run(pool, worker):
            pool.submit(lambda: 1)
            pool.submit(worker.run, 1)
        """,
        select=["R7"],
    )
    assert rule_ids(result) == ["R7", "R7"]


def test_r7_fires_on_locally_defined_callable(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def run(pool):
            def task():
                return 1
            pool.submit(task)
        """,
        select=["R7"],
    )
    assert rule_ids(result) == ["R7"]


def test_r7_fires_on_module_state_mutation(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        RESULTS = []

        def task(x):
            RESULTS.append(x)
            return x

        def run(pool, xs):
            return [pool.submit(task, x) for x in xs]
        """,
        select=["R7"],
    )
    assert rule_ids(result) == ["R7"]
    assert "RESULTS" in result.findings[0].message


def test_r7_silent_on_pure_module_level_function(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def task(x):
            return x * 2

        def run(pool, xs):
            return [pool.submit(task, x) for x in xs]
        """,
        select=["R7"],
    )
    assert rule_ids(result) == []


def test_r7_covers_executor_map(tmp_path):
    """``Executor.map`` is the other door a callable crosses the process
    boundary through (the region-parallel executor's worker path); the
    same purity contract applies."""
    result = lint_snippet(
        tmp_path,
        """
        SEEN = []

        def impure(task):
            SEEN.append(task)
            return task

        def run(pool, tasks):
            return list(pool.map(impure, tasks))
        """,
        select=["R7"],
    )
    assert rule_ids(result) == ["R7"]
    assert "SEEN" in result.findings[0].message


def test_r7_map_with_lambda_flagged_pure_map_silent(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def shard_worker(task):
            return task * 2

        def run(pool, tasks):
            bad = pool.map(lambda t: t, tasks)
            good = pool.map(shard_worker, tasks)
            return bad, good
        """,
        select=["R7"],
    )
    assert rule_ids(result) == ["R7"]


def test_r7_builtin_map_is_not_a_pool_call(tmp_path):
    """The builtin ``map(f, xs)`` is a plain Name call, not an executor
    method; closures there are fine and must not be flagged."""
    result = lint_snippet(
        tmp_path,
        """
        def run(xs):
            return list(map(lambda x: x + 1, xs))
        """,
        select=["R7"],
    )
    assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R8: config-knob docs
# ----------------------------------------------------------------------
_CONFIG_SNIPPET = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class SimulationConfig:
        documented_knob: int = 1
        mystery_knob: int = 2
"""


def test_r8_fires_on_undocumented_knob_and_ignores_prose_mentions(tmp_path):
    result = lint_project(
        tmp_path,
        {
            "src/repro/simulator/config.py": _CONFIG_SNIPPET,
            # mystery_knob appears only in prose (no code span): not enough.
            "README.md": "The `documented_knob` knob. Also mystery_knob prose.",
            "docs/fast_path.md": "Nothing here.",
        },
        select=["R8"],
    )
    assert rule_ids(result) == ["R8"]
    assert "mystery_knob" in result.findings[0].message


def test_r8_silent_when_every_knob_in_code_spans(tmp_path):
    result = lint_project(
        tmp_path,
        {
            "src/repro/simulator/config.py": _CONFIG_SNIPPET,
            "README.md": "| `documented_knob` | docs |",
            "docs/fast_path.md": "```python\nconfig.mystery_knob\n```",
        },
        select=["R8"],
    )
    assert rule_ids(result) == []


# ----------------------------------------------------------------------
# R9: observables firewall
# ----------------------------------------------------------------------
def test_r9_fires_when_sink_module_imports_obs(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        from ..obs import Telemetry

        class TraceEvent:
            pass
        """,
        relpath="src/repro/simulator/trace.py",
        select=["R9"],
    )
    assert rule_ids(result) == ["R9"]
    assert "sink module" in result.findings[0].message


def test_r9_fires_on_absolute_obs_import_in_sink_module(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        import repro.obs.export
        """,
        relpath="src/repro/sweeps/store.py",
        select=["R9"],
    )
    assert rule_ids(result) == ["R9"]


def test_r9_allows_orchestration_modules_to_import_obs(tmp_path):
    # The engine/scheduler layer may hold a recorder; only the modules
    # defining observable result types are locked down.
    result = lint_snippet(
        tmp_path,
        """
        from ..obs import NULL_TELEMETRY, Telemetry

        def run(telemetry=NULL_TELEMETRY):
            with telemetry.span("engine.run"):
                return 1
        """,
        relpath="src/repro/simulator/engine.py",
        select=["R9"],
    )
    assert rule_ids(result) == []


def test_r9_fires_on_telemetry_value_fed_to_sink_call(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def finish(store, result, telemetry):
            span_ns = telemetry.span_total_ns("engine.run")
            store.put(result, probe_span=span_ns)
        """,
        select=["R9"],
    )
    assert rule_ids(result) == ["R9"]
    assert "store.put" not in result.findings[0].message  # terminal name only
    assert "put()" in result.findings[0].message


def test_r9_fires_on_telemetry_positional_arg_to_sink_constructor(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def build(telemetry_ns):
            return TraceEvent(telemetry_ns)
        """,
        select=["R9"],
    )
    assert rule_ids(result) == ["R9"]


def test_r9_spanning_tree_vocabulary_does_not_trip_the_taint_heuristic(tmp_path):
    # ``span`` must match as a whole component: the simulator's spanning-tree
    # vocabulary is legitimate observable input.
    result = lint_snippet(
        tmp_path,
        """
        def build(spanning_tree, spanning):
            record(spanning_tree, depth=spanning.depth)
            return observable_fingerprint(spanning_tree)
        """,
        select=["R9"],
    )
    assert rule_ids(result) == []


def test_r9_obs_package_must_stay_stdlib_leaf(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        from ..simulator.stats import SimulationStats
        """,
        relpath="src/repro/obs/export.py",
        select=["R9"],
    )
    assert rule_ids(result) == ["R9"]
    assert "leaf" in result.findings[0].message


def test_r9_obs_package_absolute_repro_import_also_fires(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        import repro.simulator.config
        """,
        relpath="src/repro/obs/runtime.py",
        select=["R9"],
    )
    assert rule_ids(result) == ["R9"]


def test_r9_obs_package_stdlib_and_intra_obs_imports_are_fine(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        import json
        import time
        from pathlib import Path
        from .telemetry import Telemetry
        """,
        relpath="src/repro/obs/export.py",
        select=["R9"],
    )
    assert rule_ids(result) == []


def test_r4_excludes_obs_package_by_rule_scoped_sanction(tmp_path):
    # The same perf_counter read that R4 flags in the library is sanctioned
    # inside src/repro/obs/* (R9's firewall bounds what can flow out).
    code = """
        import time

        def stamp():
            return time.perf_counter_ns()
    """
    flagged = lint_snippet(tmp_path / "library", code, select=["R4"])
    assert rule_ids(flagged) == ["R4"]
    sanctioned = lint_snippet(
        tmp_path / "obs", code, relpath="src/repro/obs/telemetry.py", select=["R4"]
    )
    assert rule_ids(sanctioned) == []


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
def test_pragma_with_reason_suppresses(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def f(items: set[int]):
            return min(items)  # repro-lint: disable=R1 -- min over ints is order-independent
        """,
        select=["R1"],
    )
    assert rule_ids(result) == []
    assert result.suppressed == 1


def test_pragma_without_reason_is_r0_and_suppresses_nothing(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def f(items: set[int]):
            return min(items)  # repro-lint: disable=R1
        """,
        select=["R1"],
    )
    assert sorted(rule_ids(result)) == ["R0", "R1"]
    assert result.suppressed == 0


def test_pragma_on_own_line_governs_next_line(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def f(items: set[int]):
            # repro-lint: disable=R1 -- documented deliberate iteration
            return min(items)
        """,
        select=["R1"],
    )
    assert rule_ids(result) == []
    assert result.suppressed == 1


def test_pragma_for_other_rule_does_not_suppress(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def f(items: set[int]):
            return min(items)  # repro-lint: disable=R4 -- wrong rule id
        """,
        select=["R1"],
    )
    assert rule_ids(result) == ["R1"]


# ----------------------------------------------------------------------
# Baseline round-trip
# ----------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    files = {
        "src/repro/module.py": """
        def f(items: set[int]):
            return sum(items)
        """
    }
    baseline = tmp_path / "baseline.json"
    first = lint_project(tmp_path, files, select=["R1"], baseline=baseline)
    assert first.exit_code == 1
    write_baseline(baseline, first)

    second = run_lint(
        root=tmp_path, paths=list(DEFAULT_PATHS), select=["R1"], baseline=baseline
    )
    assert second.exit_code == 0
    assert second.baselined == 1

    # The baseline is line-text keyed: moving the offending line down must
    # not un-baseline it ...
    shifted = "# leading comment\n" + textwrap.dedent(files["src/repro/module.py"])
    (tmp_path / "src/repro/module.py").write_text(shifted, encoding="utf-8")
    third = run_lint(
        root=tmp_path, paths=list(DEFAULT_PATHS), select=["R1"], baseline=baseline
    )
    assert third.exit_code == 0 and third.baselined == 1

    # ... but a *new* identical hazard elsewhere is NOT covered.
    (tmp_path / "src/repro/other.py").write_text(
        textwrap.dedent(files["src/repro/module.py"]), encoding="utf-8"
    )
    fourth = run_lint(
        root=tmp_path, paths=list(DEFAULT_PATHS), select=["R1"], baseline=baseline
    )
    assert fourth.exit_code == 1 and fourth.baselined == 1


def test_unreadable_baseline_is_an_error(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("not json", encoding="utf-8")
    with pytest.raises(ValueError):
        lint_project(
            tmp_path,
            {"src/repro/module.py": "x = 1\n"},
            select=["R1"],
            baseline=baseline,
        )


# ----------------------------------------------------------------------
# Framework details
# ----------------------------------------------------------------------
def test_unparseable_file_is_e0(tmp_path):
    result = lint_project(tmp_path, {"src/repro/broken.py": "def f(:\n"})
    assert rule_ids(result) == ["E0"]


def test_unknown_select_rule_raises(tmp_path):
    with pytest.raises(ValueError):
        lint_project(tmp_path, {"src/repro/module.py": "x = 1\n"}, select=["R99"])


def test_registry_covers_r1_through_r9():
    ids = [rule.rule_id for rule in all_rules()]
    assert ids == sorted(ids)
    for expected in ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"]:
        assert expected in ids


# ----------------------------------------------------------------------
# Tier-1 self-clean: the real repository lints clean, empty baseline
# ----------------------------------------------------------------------
def test_repository_is_self_clean_with_empty_baseline():
    result = run_lint(root=REPO_ROOT, paths=list(DEFAULT_PATHS))
    assert result.baselined == 0, "repository policy: the baseline stays empty"
    assert result.findings == [], "\n".join(f.render() for f in result.findings)
    assert result.exit_code == 0


def test_checked_in_baseline_is_empty():
    payload = json.loads(
        (REPO_ROOT / "tools/repro_lint/baseline.json").read_text(encoding="utf-8")
    )
    assert payload["findings"] == []


# ----------------------------------------------------------------------
# CLI & shim
# ----------------------------------------------------------------------
def test_cli_json_output_and_exit_code():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", "src", "tools", "benchmarks", "--json"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["findings"] == []
    assert payload["files_scanned"] > 0


def test_cli_list_rules():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", "--list-rules"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    for rule_id in ["R1", "R4", "R8"]:
        assert rule_id in proc.stdout


def test_counter_docs_shim_cli_contract():
    proc = subprocess.run(
        [sys.executable, "tools/check_counter_docs.py"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "ok" in proc.stdout


def test_counter_docs_shim_detects_an_injected_mismatch(tmp_path, monkeypatch):
    # Exercised via the library (the shim is a thin wrapper over R6/R8).
    result = lint_project(
        tmp_path,
        {
            "src/repro/simulator/engine.py": _ENGINE_WITH_COUNTER,
            "docs/engine_counters.md": "### `coalesce_documented`\n",
        },
        select=["R6", "R8"],
    )
    assert result.exit_code == 1
    assert any("coalesce_mystery" in f.message for f in result.findings)


# ----------------------------------------------------------------------
# mypy (gated: the local image may not ship mypy; CI installs it)
# ----------------------------------------------------------------------
def test_mypy_scoped_modules_are_clean():
    pytest.importorskip("mypy", reason="mypy not installed; the CI lint job runs it")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
