"""Region-vs-whole differential tests for region-parallel execution.

The region-parallel contract is *bit-identical observable behaviour*: a
workload decomposed into shards by :func:`repro.simulator.regions.run_region_parallel`
must reproduce the single-process reference engine's delivery timestamps,
trace records, message statistics, flit-hop/bubble counters and per-channel
utilisation exactly (see ``docs/region_parallel.md`` for the contract and
the exactness argument).  The one canonicalization allowed is the reference
engine's same-timestamp interleaving of *different* messages' trace events
— a tie-breaking artifact of its global event sequence counter — which
:func:`~repro.simulator.regions.observable_fingerprint` removes on both
sides and nothing else.

Every shipped equivalence scenario from ``tests/test_fast_path.py`` runs
here through the differential at 2 and 4 regions (most collapse to one
shard — global traffic couples everything — which is itself the contract's
degenerate guarantee: one shard *is* a reference run).  The genuinely
multi-shard paths — a clean 4-shard region-local workload, a workload that
exercises the touched-set conflict detector and its merge-and-re-run
repair, and a real process pool — are pinned by the region-local tests,
with non-vacuity asserted through the ``region_*`` counters.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.regions import (
    assign_regions,
    plan_shards,
    preferred_channels,
    traversable_channels,
)
from repro.core.selection import RandomSelection
from repro.core.spam import SpamRouting
from repro.errors import ConfigurationError
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import WormholeSimulator
from repro.simulator.regions import (
    run_region_parallel,
    simulator_fingerprint,
)
from repro.traffic.arrivals import NegativeBinomialArrivals, PoissonArrivals
from repro.traffic.workload import MessageSpec, Workload, mixed_traffic_workload

#: With ``$REPRO_REGION_WORKERS`` set (the CI region-parallel leg exports 2)
#: the differential defers to it — every multi-shard scenario then crosses a
#: real process boundary.  Unset, shards run in-process: identical results
#: by the contract under test, and fast on one core.
_MAX_WORKERS = None if os.environ.get("REPRO_REGION_WORKERS") else 0


def _reference_fingerprint(network, routing, config, specs, until_ns=None):
    """Fingerprint of the single-process reference engine on ``specs``."""
    simulator = WormholeSimulator(network, routing, config)
    for spec in specs:
        simulator.submit_message(
            spec.source, spec.destinations, at_ns=spec.at_ns, metadata=dict(spec.metadata)
        )
    stats = simulator.run(until_ns=until_ns)
    return simulator_fingerprint(simulator, stats)


def _differential(
    network,
    routing,
    specs,
    flits,
    region_counts=(2, 4),
    until_ns=None,
    **overrides,
):
    """Assert region-parallel output identical to the reference at each count.

    Returns the last :class:`RegionRunResult` for extra assertions.
    """
    specs = list(specs)
    result = None
    for region_count in region_counts:
        config = SimulationConfig(
            message_length_flits=flits,
            trace=True,
            collect_channel_stats=True,
            region_parallel=True,
            region_count=region_count,
            **overrides,
        )
        reference = _reference_fingerprint(network, routing, config, specs, until_ns)
        result = run_region_parallel(
            network, routing, config, specs, until_ns=until_ns, max_workers=_MAX_WORKERS
        )
        assert result.fingerprint() == reference, (
            f"region-parallel run diverged from the reference at "
            f"region_count={region_count}"
        )
    return result


def _region_local_workload(network, tree, seed, pairs_per_region=3, flood=2):
    """Unicast pairs drawn inside each of 4 regions, ``flood`` repeats each.

    The repeats 50 ns apart create intra-shard contention, which is what
    makes worms deviate off their preferred routes — the only mechanism
    that can produce a touched-set conflict between shards.
    """
    assignment = assign_regions(network, 4, tree=tree)
    rng = random.Random(seed)
    workload = Workload(f"region-local-{seed}")
    for switches in assignment.regions:
        processors = [p for sw in switches for p in network.processors_of(sw)]
        for _ in range(pairs_per_region):
            source, dest = rng.sample(processors, 2)
            for repeat in range(flood):
                workload.specs.append(MessageSpec(source, (dest,), repeat * 50))
    workload.specs.sort(key=lambda spec: spec.at_ns)
    return workload


@pytest.mark.equivalence
class TestRegionVsWholeDifferential:
    """Every shipped equivalence scenario, region-parallel vs reference."""

    def test_figure1_multicast_with_replication_bubbles(self, figure1):
        spam = SpamRouting.build(figure1.network, root=figure1.root)
        specs = [MessageSpec(figure1.source, tuple(figure1.destinations), 0)]
        _differential(figure1.network, spam, specs, flits=64)

    def test_lattice_broadcast_steady_state(self, lattice32, lattice32_spam):
        source = lattice32.processors()[0]
        destinations = tuple(p for p in lattice32.processors() if p != source)
        specs = [MessageSpec(source, destinations, 0)]
        _differential(lattice32, lattice32_spam, specs, flits=128)

    def test_contended_ocrq_multicasts(self, lattice32, lattice32_spam):
        processors = lattice32.processors()
        specs = [
            MessageSpec(
                processors[index],
                tuple(p for p in processors[8:20] if p != processors[index]),
                0,
            )
            for index in range(6)
        ]
        _differential(lattice32, lattice32_spam, specs, flits=64)

    def test_cross_traffic_unicasts(self, lattice32, lattice32_spam):
        processors = lattice32.processors()
        specs = [
            MessageSpec(
                processors[index], (processors[(index + 11) % len(processors)],), 0
            )
            for index in range(8)
        ]
        _differential(lattice32, lattice32_spam, specs, flits=256)

    @pytest.mark.parametrize(
        "arrival_cls", [NegativeBinomialArrivals, PoissonArrivals]
    )
    def test_paper_length_mixed_traffic(self, lattice32, lattice32_spam, arrival_cls):
        """The 128-flit churn-regime workload of ``TestChurnPhaseBackoff``."""
        workload = mixed_traffic_workload(
            lattice32,
            rate_per_us=0.03,
            multicast_destinations=8,
            num_messages=36,
            multicast_fraction=0.15,
            seed=23,
            arrival_process=arrival_cls(0.03),
        )
        _differential(lattice32, lattice32_spam, workload, flits=128)

    def test_slow_channel_multi_period(self, lattice32, lattice32_spam):
        """The every-2nd-window compound-period scenario of
        ``TestMultiPeriodCoalescing``: the fast path inside each shard
        engine must still verify and replay the slow-channel pattern."""
        processors = lattice32.processors()
        factors = ((lattice32.injection_channel(processors[0]).cid, 2),)
        specs = [MessageSpec(processors[0], (processors[11],), 0)]
        _differential(
            lattice32,
            lattice32_spam,
            specs,
            flits=256,
            channel_latency_factors=factors,
        )

    def test_mixed_compound_periods(self, lattice32, lattice32_spam):
        processors = lattice32.processors()
        factors = (
            (lattice32.injection_channel(processors[0]).cid, 2),
            (lattice32.injection_channel(processors[1]).cid, 3),
        )
        specs = [
            MessageSpec(processors[0], (processors[11],), 0),
            MessageSpec(processors[1], (processors[14],), 0),
        ]
        _differential(
            lattice32,
            lattice32_spam,
            specs,
            flits=256,
            channel_latency_factors=factors,
        )

    def test_bounded_run_window(self, lattice32, lattice32_spam):
        """A single bounded window cut mid-stream: clocks, open busy
        periods and incomplete messages must all match the reference."""
        source = lattice32.processors()[0]
        destinations = tuple(p for p in lattice32.processors() if p != source)
        specs = [MessageSpec(source, destinations, 0)]
        result = _differential(
            lattice32, lattice32_spam, specs, flits=256, until_ns=11_000
        )
        assert result.now == 11_000

    def test_region_local_traffic_runs_multi_shard(self, lattice32, lattice32_spam):
        """Region-confined unicast pairs must actually decompose: the plan
        proposes 4 shards, validation keeps them (no conflict), and the
        merged result is identical — the non-vacuous parallel case."""
        workload = _region_local_workload(lattice32, lattice32_spam.tree, seed=1)
        result = _differential(
            lattice32, lattice32_spam, workload, flits=64, region_counts=(4,)
        )
        assert result.region_planned_shards == 4
        assert result.region_shards == 4
        assert result.region_conflict_reruns == 0
        # Intra-region pairs mostly stay on channels their region owns;
        # a route may still climb through a channel owned by a shallower
        # region (ownership is an observability quotient, not the shard
        # criterion), so coupled > 0 is fine — disjointness is what counts.
        assert result.region_confined_messages > result.region_coupled_messages
        assert (
            result.region_confined_messages + result.region_coupled_messages
            == len(workload)
        )

    def test_conflict_detection_merges_and_reruns(self, lattice32, lattice32_spam):
        """A workload whose contention drives a worm off its preferred
        route: the optimistic 4-shard plan is wrong, the touched-set
        validator must catch the collision, merge the colliding shards,
        re-run them — and the repaired result must still be identical."""
        workload = _region_local_workload(lattice32, lattice32_spam.tree, seed=0)
        result = _differential(
            lattice32, lattice32_spam, workload, flits=64, region_counts=(4,)
        )
        assert result.region_planned_shards == 4
        assert result.region_conflict_reruns >= 1
        assert result.region_shards < result.region_planned_shards


@pytest.mark.equivalence
class TestProcessPool:
    def test_real_worker_processes_identical(self, lattice32, lattice32_spam):
        """The same clean 4-shard workload through a real 4-process pool:
        pickling the network/routing/config out and the shard observables
        back must not perturb a single bit."""
        workload = _region_local_workload(lattice32, lattice32_spam.tree, seed=1)
        config = SimulationConfig(
            message_length_flits=64,
            trace=True,
            collect_channel_stats=True,
            region_parallel=True,
            region_count=4,
        )
        reference = _reference_fingerprint(lattice32, lattice32_spam, config, workload)
        result = run_region_parallel(
            lattice32, lattice32_spam, config, workload, max_workers=4
        )
        assert result.fingerprint() == reference
        assert result.region_shards == 4
        assert result.region_processes == 4


class TestDegeneratePartitions:
    def test_single_region_is_reference_run(self, lattice32, lattice32_spam):
        """``region_count=1`` must collapse to exactly one shard — a
        reference run — and still fingerprint-match today's engine."""
        workload = mixed_traffic_workload(
            lattice32,
            rate_per_us=0.03,
            multicast_destinations=8,
            num_messages=12,
            multicast_fraction=0.2,
            seed=5,
        )
        result = _differential(
            lattice32, lattice32_spam, workload, flits=64, region_counts=(1,)
        )
        assert result.region_count == 1
        assert result.region_shards == 1
        assert result.region_boundary_channels == 0
        assert result.region_conflict_reruns == 0

    def test_region_count_clamped_to_switch_count(self, lattice32, lattice32_spam):
        """Asking for more regions than switches degenerates to one switch
        per region — and must still be exact."""
        processors = lattice32.processors()
        specs = [
            MessageSpec(processors[index], (processors[index + 8],), 0)
            for index in range(4)
        ]
        result = _differential(
            lattice32, lattice32_spam, specs, flits=32, region_counts=(64,)
        )
        assert result.region_count == len(lattice32.switches())

    def test_region_with_no_injecting_processors(self, lattice32, lattice32_spam):
        """All traffic from one region's processors: other regions inject
        nothing, shards cover only the active sources, results identical."""
        assignment = assign_regions(lattice32, 4, tree=lattice32_spam.tree)
        active = [
            p for sw in assignment.regions[0] for p in lattice32.processors_of(sw)
        ]
        everyone = lattice32.processors()
        specs = [
            MessageSpec(source, (everyone[(index * 7 + 3) % len(everyone)],), 0)
            for index, source in enumerate(active[:4])
        ]
        _differential(lattice32, lattice32_spam, specs, flits=32)

    def test_empty_workload(self, lattice32, lattice32_spam):
        """Zero messages must still reproduce the reference observables —
        zeroed per-channel records and the bounded-run clock advance."""
        result = _differential(
            lattice32, lattice32_spam, [], flits=32, until_ns=5_000
        )
        assert result.now == 5_000
        assert result.stats.messages_submitted == 0
        assert result.region_shards == 1  # one empty engine

    def test_two_switch_minimal_network(self, two_switch):
        spam = SpamRouting.build(two_switch)
        source, dest = two_switch.processors()
        _differential(two_switch, spam, [MessageSpec(source, (dest,), 0)], flits=8)


class TestRuntimeGuards:
    def test_stateful_selection_rejected(self, lattice32):
        """``RandomSelection`` consumes shared RNG state per decision —
        every message couples through one stream, so shard decomposition
        is unsound and must be refused up front."""
        routing = SpamRouting.build(lattice32, selection=RandomSelection(seed=1))
        config = SimulationConfig(message_length_flits=32, region_count=2)
        processors = lattice32.processors()
        specs = [MessageSpec(processors[0], (processors[5],), 0)]
        with pytest.raises(ConfigurationError, match="stateless selection"):
            run_region_parallel(lattice32, routing, config, specs, max_workers=0)

    def test_region_count_validated_by_config(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(region_count=0)


class TestShardPlanning:
    def test_same_source_messages_share_a_shard(self, lattice32, lattice32_spam):
        """Two messages from one source serialise on the injection channel;
        the plan must never split them."""
        assignment = assign_regions(lattice32, 4, tree=lattice32_spam.tree)
        processors = lattice32.processors()
        plan = plan_shards(
            lattice32,
            lattice32_spam,
            assignment,
            [
                (processors[0], (processors[9],)),
                (processors[4], (processors[13],)),
                (processors[0], (processors[11],)),
            ],
        )
        shard_of = {
            mid: index for index, shard in enumerate(plan.shards) for mid in shard
        }
        assert shard_of[0] == shard_of[2]

    def test_shard_count_bounded_by_region_count(self, lattice32, lattice32_spam):
        """More independent components than regions: bin-packing must fold
        them into at most ``region_count`` shards without splitting any."""
        assignment = assign_regions(lattice32, 2, tree=lattice32_spam.tree)
        workload = _region_local_workload(lattice32, lattice32_spam.tree, seed=1)
        plan = plan_shards(
            lattice32,
            lattice32_spam,
            assignment,
            [(spec.source, spec.destinations) for spec in workload],
        )
        assert len(plan.shards) <= 2
        assert sorted(mid for shard in plan.shards for mid in shard) == list(
            range(len(workload))
        )

    def test_traversable_coupling_collapses_under_spam(self, lattice32, lattice32_spam):
        """SPAM's up-phase rule admits every up channel, so the static
        all-candidates closure spans the network and the sound-without-
        validation mode degenerates to one shard — the documented reason
        the executor plans optimistically instead."""
        assignment = assign_regions(lattice32, 4, tree=lattice32_spam.tree)
        workload = _region_local_workload(lattice32, lattice32_spam.tree, seed=1)
        plan = plan_shards(
            lattice32,
            lattice32_spam,
            assignment,
            [(spec.source, spec.destinations) for spec in workload],
            coupling="traversable",
        )
        assert len(plan.shards) == 1

    def test_unknown_coupling_rejected(self, lattice32, lattice32_spam):
        assignment = assign_regions(lattice32, 2, tree=lattice32_spam.tree)
        with pytest.raises(ConfigurationError, match="coupling"):
            plan_shards(lattice32, lattice32_spam, assignment, [], coupling="psychic")

    def test_preferred_closure_subset_of_traversable(self, lattice32, lattice32_spam):
        processors = lattice32.processors()
        preferred = preferred_channels(
            lattice32, lattice32_spam, processors[0], (processors[11], processors[17])
        )
        traversable = traversable_channels(
            lattice32, lattice32_spam, processors[0], (processors[11], processors[17])
        )
        assert preferred <= traversable
        assert lattice32.injection_channel(processors[0]).cid in preferred

    def test_assignment_deterministic_and_covering(self, lattice32, lattice32_spam):
        first = assign_regions(lattice32, 4, tree=lattice32_spam.tree)
        second = assign_regions(lattice32, 4, tree=lattice32_spam.tree)
        assert first.regions == second.regions
        assert first.boundary_cids == second.boundary_cids
        covered = sorted(sw for region in first.regions for sw in region)
        assert covered == sorted(lattice32.switches())
        # Every node and channel has an owner.
        for processor in lattice32.processors():
            assert processor in first.region_of
        assert set(first.channel_region) == {
            channel.cid for channel in lattice32.channels()
        }

    def test_boundary_channels_cross_regions(self, lattice32, lattice32_spam):
        assignment = assign_regions(lattice32, 4, tree=lattice32_spam.tree)
        assert assignment.boundary_cids, "4 regions of one lattice must share edges"
        by_cid = {channel.cid: channel for channel in lattice32.channels()}
        for cid in assignment.boundary_cids:
            channel = by_cid[cid]
            assert (
                assignment.region_of[channel.src]
                != assignment.region_of[channel.dst]
            )


class TestSweepsIntegration:
    def test_region_parallel_sweep_point_identical(self, lattice32, lattice32_spam):
        """``config.region_parallel`` routed through the sweep runner's
        ``_run_latencies`` must return the same latencies as the plain
        engine path."""
        from repro.sweeps.spec import _run_latencies

        workload = mixed_traffic_workload(
            lattice32,
            rate_per_us=0.03,
            multicast_destinations=6,
            num_messages=10,
            multicast_fraction=0.2,
            seed=11,
        )
        plain = _run_latencies(
            lattice32,
            lattice32_spam,
            workload,
            SimulationConfig(message_length_flits=64),
            from_creation=True,
        )
        regioned = _run_latencies(
            lattice32,
            lattice32_spam,
            workload,
            SimulationConfig(
                message_length_flits=64, region_parallel=True, region_count=4
            ),
            from_creation=True,
        )
        assert regioned == plain
