"""Tests for ancestor / extended-ancestor relations (paper Definition 1)."""

from __future__ import annotations

import pytest

from repro.spanning.ancestry import Ancestry, node_mask
from repro.spanning.labeling import label_channels
from repro.spanning.tree import bfs_spanning_tree
from repro.topology.irregular import random_irregular_network


@pytest.fixture
def figure1_ancestry(figure1):
    tree = bfs_spanning_tree(figure1.network, figure1.root)
    labeling = label_channels(figure1.network, tree)
    return Ancestry(labeling)


class TestNodeMask:
    def test_empty(self):
        assert node_mask([]) == 0

    def test_bits(self):
        assert node_mask([0, 2, 5]) == 0b100101

    def test_duplicates_idempotent(self):
        assert node_mask([3, 3, 3]) == 8


class TestTreeAncestry:
    def test_ancestors_include_self_and_root(self, figure1, figure1_ancestry):
        nodes = figure1.nodes
        ancestors = figure1_ancestry.ancestors(nodes[8])
        assert set(ancestors) == {nodes[8], nodes[6], nodes[4], nodes[1]}

    def test_is_ancestor_matches_tree(self, figure1, figure1_ancestry):
        nodes = figure1.nodes
        assert figure1_ancestry.is_ancestor(nodes[4], nodes[11])
        assert figure1_ancestry.is_ancestor(nodes[11], nodes[11])
        assert not figure1_ancestry.is_ancestor(nodes[6], nodes[11])
        assert not figure1_ancestry.is_ancestor(nodes[8], nodes[9])

    def test_subtree_masks(self, figure1, figure1_ancestry):
        nodes = figure1.nodes
        descendants = set(figure1_ancestry.descendants(nodes[6]))
        assert descendants == {nodes[6], nodes[8], nodes[9], nodes[10]}
        # Root subtree covers everything.
        assert figure1_ancestry.subtree_mask(nodes[1]) == node_mask(figure1.network.nodes())

    def test_covers_all(self, figure1, figure1_ancestry):
        nodes = figure1.nodes
        dest_mask = node_mask([nodes[8], nodes[9]])
        assert figure1_ancestry.covers_all(nodes[6], dest_mask)
        assert figure1_ancestry.covers_all(nodes[4], dest_mask)
        assert not figure1_ancestry.covers_all(nodes[7], dest_mask)

    def test_lca_delegates_to_tree(self, figure1, figure1_ancestry):
        nodes = figure1.nodes
        assert figure1_ancestry.lca([nodes[8], nodes[11]]) == nodes[4]
        assert figure1_ancestry.lca([nodes[9]]) == nodes[9]


class TestExtendedAncestry:
    def test_paper_example(self, figure1, figure1_ancestry):
        """Vertices 2 and 3 are extended ancestors of 8 (via cross channels
        2->3->4 followed by tree channels 4->6->8) — this is what legitimises
        the paper's route 5 -> 2 -> 3 -> 4 for the multicast to {8,9,10,11}."""
        nodes = figure1.nodes
        extended = set(figure1_ancestry.extended_ancestors(nodes[8]))
        assert {nodes[1], nodes[2], nodes[3], nodes[4], nodes[6], nodes[8]} == extended

    def test_extended_superset_of_tree_ancestors(self, figure1, figure1_ancestry):
        for node in figure1.network.nodes():
            anc = figure1_ancestry.ancestor_mask(node)
            ext = figure1_ancestry.extended_ancestor_mask(node)
            assert ext & anc == anc

    def test_extended_ancestors_of_processor_5(self, figure1, figure1_ancestry):
        """No cross channel leads into vertex 2's subtree, so the extended
        ancestors of processor 5 are exactly its tree ancestors."""
        nodes = figure1.nodes
        assert set(figure1_ancestry.extended_ancestors(nodes[5])) == {
            nodes[1], nodes[2], nodes[5]
        }

    def test_definition_on_random_networks(self):
        """Cross-check the bitmask computation against a brute-force
        enumeration of Definition 1 on small random irregular networks."""
        for seed in range(4):
            network = random_irregular_network(8, extra_links=6, seed=seed)
            tree = bfs_spanning_tree(network, network.switches()[0])
            labeling = label_channels(network, tree)
            ancestry = Ancestry(labeling)

            # Brute force: u is an extended ancestor of v iff there is a path
            # of zero or more down-cross channels followed by zero or more
            # down-tree channels from u to v.
            def brute_force_extended(v: int) -> set[int]:
                # nodes that can reach v via down-tree channels only
                tree_reach = {v}
                changed = True
                while changed:
                    changed = False
                    for channel in network.channels():
                        if labeling.is_down_tree(channel) and channel.dst in tree_reach:
                            if channel.src not in tree_reach:
                                tree_reach.add(channel.src)
                                changed = True
                # prepend down-cross paths
                full = set(tree_reach)
                changed = True
                while changed:
                    changed = False
                    for channel in network.channels():
                        if labeling.is_down_cross(channel) and channel.dst in full:
                            if channel.src not in full:
                                full.add(channel.src)
                                changed = True
                return full

            for v in network.nodes():
                expected = brute_force_extended(v)
                actual = set(ancestry.extended_ancestors(v))
                assert actual == expected, f"seed={seed} node={v}"

    def test_brute_force_tree_ancestors(self):
        network = random_irregular_network(10, extra_links=4, seed=11)
        tree = bfs_spanning_tree(network, network.switches()[0])
        ancestry = Ancestry(label_channels(network, tree))
        for v in network.nodes():
            expected = set(tree.path_to_root(v))
            assert set(ancestry.ancestors(v)) == expected
