"""Tests for the fleet layer (:mod:`repro.sweeps.coordinator` / ``worker``).

Covers the coordinator's acceptance guarantees at every layer:

* :class:`CoordinatorState` — the pure lease state machine: keys are owed
  to exactly one active lease (never double-granted), expiry and partial
  or foreign-salt submissions re-queue owed points, duplicate and
  late/lease-less submissions are absorbed idempotently;
* a hypothesis property: **arbitrary interleavings** of grant / clock
  advance / full / partial / foreign-salt / lease-less submissions keep
  the invariants and always leave the sweep drainable to full coverage —
  no point is ever permanently owed;
* :class:`Coordinator` — store sync (a warm store counts as done), journal
  replay (counters and lease-id continuity survive a restart, open leases
  are expired, a torn journal tail is dropped), deterministic expiry with
  an injected clock;
* the HTTP front end + :func:`run_worker` — a real server on a loopback
  port driven by the worker loop, wire-level error mapping (409 for dead
  leases, 400 for malformed bodies), and fault-mode convergence;
* the subprocess differential — the fault-injection harness
  (``tools/coordinator_fault_check.py``) scenario that SIGKILLs a worker
  mid-lease and still converges to the single-host golden export.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SweepError
from repro.experiments.common import ExperimentScale
from repro.experiments.figure2 import Figure2Config, figure2_specs
from repro.sweeps import (
    Coordinator,
    CoordinatorServer,
    CoordinatorState,
    LeaseError,
    ResultStore,
    WorkerClient,
    evaluate_spec,
    result_row,
    run_sweep,
    run_worker,
)
from repro.sweeps.coordinator import JOURNAL_NAME

TTL = 10.0


class FakeClock:
    """Injectable monotonic clock: tests advance it explicitly."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tiny_universe(counts=(1, 2, 4)):
    """A real, fast spec universe (each point evaluates in milliseconds)."""
    config = Figure2Config(
        network_sizes=(16,),
        destination_counts={16: list(counts)},
        scale=ExperimentScale(
            name="tiny", message_length_flits=16, samples_per_point=1,
            messages_per_rate_point=10,
        ),
    )
    return figure2_specs(config)


def fake_row(key: str, salt: str = "salt") -> dict:
    """A minimal store row for driving the *state machine* (which judges
    only key membership and salt; real stores see real rows)."""
    return {"key": key, "salt": salt, "spec": {}, "latencies_us": [1.0], "metrics": []}


# ----------------------------------------------------------------------
# CoordinatorState: the pure lease state machine
# ----------------------------------------------------------------------
class TestCoordinatorState:
    KEYS = ("k1", "k2", "k3", "k4", "k5")

    def make(self) -> CoordinatorState:
        return CoordinatorState(self.KEYS, "salt")

    def test_grant_covers_universe_in_order_without_double_granting(self):
        state = self.make()
        first, _ = state.grant("a", now=0.0, ttl=TTL, max_points=2)
        second, _ = state.grant("b", now=0.0, ttl=TTL, max_points=2)
        third, _ = state.grant("c", now=0.0, ttl=TTL, max_points=2)
        assert first.keys == ("k1", "k2")
        assert second.keys == ("k3", "k4")
        assert third.keys == ("k5",)
        # Everything is leased: nothing is grantable until expiry/submit.
        assert state.grant("d", now=0.0, ttl=TTL, max_points=2) == (None, None)
        status = state.status()
        assert (status.total, status.done, status.leased, status.queued) == (5, 0, 5, 0)

    def test_expiry_requeues_unfinished_keys(self):
        state = self.make()
        lease, _ = state.grant("a", now=0.0, ttl=TTL, max_points=5)
        assert state.expire_overdue(now=TTL - 1.0) == []
        events = state.expire_overdue(now=TTL + 1.0)
        assert [e["lease"] for e in events] == [lease.lease_id]
        assert events[0]["requeued"] == list(self.KEYS)
        regrant, _ = state.grant("b", now=TTL + 1.0, ttl=TTL, max_points=5)
        assert regrant.keys == self.KEYS
        assert regrant.lease_id != lease.lease_id

    def test_renew_extends_deadline_and_rejects_dead_leases(self):
        state = self.make()
        lease, _ = state.grant("a", now=0.0, ttl=TTL, max_points=1)
        renewed, _ = state.renew(lease.lease_id, now=TTL - 1.0, ttl=TTL)
        assert renewed.deadline == pytest.approx(2 * TTL - 1.0)
        assert state.expire_overdue(now=TTL + 1.0) == []
        with pytest.raises(LeaseError):
            state.renew(999, now=0.0, ttl=TTL)

    def test_full_submission_completes_and_closes_the_lease(self):
        state = self.make()
        lease, _ = state.grant("a", now=0.0, ttl=TTL, max_points=2)
        report, to_append, _ = state.ingest(
            lease.lease_id, [fake_row(k) for k in lease.keys]
        )
        assert report.accepted == 2 and report.completed == lease.keys
        assert report.requeued == () and report.lease_known
        assert [row["key"] for row in to_append] == list(lease.keys)
        assert state.lease(lease.lease_id) is None
        assert state.is_done("k1") and state.is_done("k2")

    def test_partial_submission_requeues_the_remainder_immediately(self):
        state = self.make()
        lease, _ = state.grant("a", now=0.0, ttl=TTL, max_points=3)
        report, _, _ = state.ingest(lease.lease_id, [fake_row("k1")])
        assert report.completed == ("k1",)
        assert report.requeued == ("k2", "k3")
        # No deadline wait: the remainder is immediately grantable.
        regrant, _ = state.grant("b", now=0.0, ttl=TTL, max_points=5)
        assert regrant.keys == ("k2", "k3", "k4", "k5")

    def test_foreign_salt_rows_are_rejected_and_points_stay_owed(self):
        state = self.make()
        lease, _ = state.grant("a", now=0.0, ttl=TTL, max_points=2)
        report, to_append, _ = state.ingest(
            lease.lease_id, [fake_row(k, salt="other") for k in lease.keys]
        )
        assert report.foreign_salt == 2 and report.accepted == 0
        assert to_append == []
        assert report.requeued == lease.keys
        assert not state.is_done("k1")

    def test_unknown_keys_and_malformed_rows_are_counted_not_crashed(self):
        state = self.make()
        report, to_append, _ = state.ingest(
            None, [fake_row("not-a-key"), {"salt": "salt"}, "garbage"]
        )
        assert report.unknown == 3 and report.accepted == 0
        assert to_append == []

    def test_duplicate_and_leaseless_submissions_are_idempotent(self):
        state = self.make()
        lease, _ = state.grant("a", now=0.0, ttl=TTL, max_points=1)
        state.ingest(lease.lease_id, [fake_row("k1")])
        # Late re-submission of a done key, without any lease.
        report, to_append, _ = state.ingest(None, [fake_row("k1")])
        assert report.duplicates == 1 and report.accepted == 1
        assert report.completed == () and not report.lease_known
        # The row is still appended: the store's content addressing dedups.
        assert [row["key"] for row in to_append] == ["k1"]

    def test_leaseless_submission_shrinks_the_covering_lease(self):
        state = self.make()
        lease, _ = state.grant("a", now=0.0, ttl=TTL, max_points=2)
        # Another worker (recovered rows, no lease) completes k1 first.
        report, _, _ = state.ingest(None, [fake_row("k1")])
        assert report.completed == ("k1",)
        assert state.lease(lease.lease_id).keys == ("k2",)
        # The original lease expiring must not re-queue the done point.
        events = state.expire_overdue(now=TTL + 1.0)
        assert events[0]["requeued"] == ["k2"]


# ----------------------------------------------------------------------
# Hypothesis: arbitrary interleavings keep the invariants and stay drainable
# ----------------------------------------------------------------------
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("grant"), st.integers(0, 3), st.integers(1, 4)),
        st.tuples(st.just("advance"), st.floats(0.0, 2.5 * TTL), st.just(0)),
        st.tuples(st.just("submit_full"), st.integers(0, 5), st.just(0)),
        st.tuples(st.just("submit_partial"), st.integers(0, 5), st.just(0)),
        st.tuples(st.just("submit_foreign"), st.integers(0, 5), st.just(0)),
        st.tuples(st.just("submit_leaseless"), st.integers(0, 7), st.just(0)),
    ),
    max_size=40,
)


def _check_invariants(state: CoordinatorState) -> None:
    status = state.status()
    assert status.done + status.leased + status.queued == status.total
    leased_keys = [key for lease in status.active_leases for key in lease.keys]
    # No key is covered by two active leases, and every leased key is owed.
    assert len(leased_keys) == len(dict.fromkeys(leased_keys))
    assert all(not state.is_done(key) for key in leased_keys)
    assert status.leased == len(leased_keys)


class TestInterleavingProperty:
    @settings(max_examples=60, deadline=None)
    @given(universe_size=st.integers(1, 6), ops=_OPS)
    def test_any_interleaving_reaches_full_coverage(self, universe_size, ops):
        keys = [f"k{i}" for i in range(universe_size)]
        state = CoordinatorState(keys, "salt")
        now = 0.0
        for kind, a, b in ops:
            if kind == "grant":
                state.expire_overdue(now)
                state.grant(f"w{a}", now=now, ttl=TTL, max_points=b)
            elif kind == "advance":
                now += a
                state.expire_overdue(now)
            else:
                active = state.active_leases()
                if kind == "submit_leaseless":
                    key = keys[a % len(keys)]
                    state.ingest(None, [fake_row(key)])
                elif active:
                    lease = active[a % len(active)]
                    if kind == "submit_full":
                        rows = [fake_row(k) for k in lease.keys]
                    elif kind == "submit_partial":
                        rows = [fake_row(k) for k in lease.keys[: len(lease.keys) // 2]]
                    else:  # submit_foreign
                        rows = [fake_row(k, salt="other") for k in lease.keys]
                    state.ingest(lease.lease_id, rows)
            _check_invariants(state)
        # Liveness: whatever the history, the sweep drains to completion —
        # no point is permanently owed, no lease is stuck.
        for _ in range(len(keys) + 1):
            if state.complete:
                break
            now += TTL + 1.0
            state.expire_overdue(now)
            lease, _ = state.grant("drain", now=now, ttl=TTL, max_points=len(keys))
            assert lease is not None, "owed points but nothing grantable"
            state.ingest(lease.lease_id, [fake_row(k) for k in lease.keys])
            _check_invariants(state)
        assert state.complete
        assert state.status().done == len(keys)


# ----------------------------------------------------------------------
# Coordinator: store sync, journal replay, deterministic expiry
# ----------------------------------------------------------------------
class TestCoordinator:
    def make(self, tmp_path, clock=None, specs=None):
        specs = tiny_universe() if specs is None else specs
        store = ResultStore(tmp_path / "store")
        coordinator = Coordinator(
            specs, store, lease_ttl=TTL, lease_points=2,
            clock=clock if clock is not None else FakeClock(),
        )
        return specs, store, coordinator

    def test_grant_evaluate_ingest_completes_the_sweep(self, tmp_path):
        specs, store, coordinator = self.make(tmp_path)
        while not coordinator.status().complete:
            lease = coordinator.grant("w")
            assert lease is not None
            rows = [
                result_row(evaluate_spec(coordinator.specs_by_key[key]))
                for key in lease.keys
            ]
            report = coordinator.ingest(lease.lease_id, rows)
            assert report.accepted == len(lease.keys)
        status = coordinator.status()
        assert status.complete and status.done == len(specs)
        # The merged store is complete and readable by the normal machinery.
        manifest = ResultStore(tmp_path / "store").manifest_status()
        assert manifest is not None and manifest.complete
        warm = run_sweep(specs, store=ResultStore(tmp_path / "store"))
        assert warm.computed == 0 and warm.cache_hits == len(specs)

    def test_warm_store_counts_as_done_at_startup(self, tmp_path):
        specs = tiny_universe()
        seeded = ResultStore(tmp_path / "store")
        outcome = run_sweep(specs, store=seeded)
        assert outcome.computed == len(specs)
        _, _, coordinator = self.make(tmp_path, specs=specs)
        assert coordinator.status().complete
        assert coordinator.grant("w") is None

    def test_clock_driven_expiry_requeues_for_the_next_worker(self, tmp_path):
        clock = FakeClock()
        specs, _, coordinator = self.make(tmp_path, clock=clock)
        lease = coordinator.grant("dead-worker")
        assert lease is not None
        clock.advance(TTL + 1.0)
        status = coordinator.status()  # expires overdue leases
        assert status.leased == 0 and status.queued == len(specs)
        regrant = coordinator.grant("live-worker")
        assert regrant.keys == lease.keys
        assert regrant.lease_id > lease.lease_id

    def test_journal_replay_restores_counters_and_lease_ids(self, tmp_path):
        specs, store, coordinator = self.make(tmp_path)
        lease = coordinator.grant("w")
        rows = [
            result_row(evaluate_spec(coordinator.specs_by_key[key]))
            for key in lease.keys
        ]
        coordinator.ingest(lease.lease_id, rows)
        granted = coordinator.state.counters["leases_granted"]
        accepted = coordinator.state.counters["rows_accepted"]

        _, _, restarted = self.make(tmp_path, specs=specs)
        assert restarted.state.counters["leases_granted"] == granted
        assert restarted.state.counters["rows_accepted"] == accepted
        # Completed points were recovered from the store, not recomputed.
        assert restarted.status().done == len(lease.keys)
        # Lease ids keep increasing across the restart.
        next_lease = restarted.grant("w2")
        assert next_lease is not None and next_lease.lease_id > lease.lease_id

    def test_restart_expires_open_leases_and_requeues(self, tmp_path):
        specs, store, coordinator = self.make(tmp_path)
        lease = coordinator.grant("doomed")
        assert lease is not None
        # Coordinator "crashes" holding an open lease; a new one replays.
        _, _, restarted = self.make(tmp_path, specs=specs)
        status = restarted.status()
        assert status.leased == 0
        assert status.queued == len(specs)
        events = [
            json.loads(line)
            for line in (tmp_path / "store" / JOURNAL_NAME).read_text().splitlines()
        ]
        restart_expiries = [
            e for e in events if e["event"] == "expire" and e.get("reason") == "restart"
        ]
        assert [e["lease"] for e in restart_expiries] == [lease.lease_id]

    def test_torn_journal_tail_is_dropped(self, tmp_path):
        specs, store, coordinator = self.make(tmp_path)
        lease = coordinator.grant("w")
        journal = tmp_path / "store" / JOURNAL_NAME
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"event": "grant", "lease": 99')  # killed mid-write
        _, _, restarted = self.make(tmp_path, specs=specs)
        # The torn line is ignored: lease 99 never existed, lease-id
        # continuity comes from the intact prefix.
        follow_on = restarted.grant("w2")
        assert follow_on is not None
        assert follow_on.lease_id == lease.lease_id + 1

    def test_foreign_salt_rows_never_reach_the_store(self, tmp_path):
        specs, store, coordinator = self.make(tmp_path)
        lease = coordinator.grant("w")
        rows = [
            dict(result_row(evaluate_spec(coordinator.specs_by_key[key])),
                 salt="foreign-salt/injected")
            for key in lease.keys
        ]
        report = coordinator.ingest(lease.lease_id, rows)
        assert report.foreign_salt == len(lease.keys) and report.accepted == 0
        assert report.requeued == lease.keys
        assert all(store.get_row(key) is None for key in lease.keys)


# ----------------------------------------------------------------------
# HTTP front end + worker loop
# ----------------------------------------------------------------------
@pytest.fixture()
def served(tmp_path):
    specs = tiny_universe()
    store = ResultStore(tmp_path / "store")
    coordinator = Coordinator(specs, store, lease_ttl=TTL, lease_points=2,
                              clock=FakeClock())
    server = CoordinatorServer(coordinator)
    server.start_background()
    yield specs, coordinator, server
    server.request_shutdown()
    server.server_close()


class TestHTTPFrontEnd:
    def test_run_worker_drains_the_sweep(self, served):
        specs, coordinator, server = served
        report = run_worker(server.url, "w1", poll_interval=0.01)
        assert report.stopped == "complete"
        assert report.points_evaluated == len(specs)
        assert coordinator.status().complete

    def test_wire_protocol_and_error_mapping(self, served):
        specs, coordinator, server = served
        client = WorkerClient(server.url, "w1")
        status = client.status()
        assert status["total"] == len(specs) and not status["complete"]
        response = client.lease(max_points=1)
        lease = response["lease"]
        assert lease is not None and len(lease["specs"]) == 1
        assert lease["salt"] == coordinator.store.code_salt
        assert client.renew(lease["id"])["ok"]
        # Dead lease: 409 surfaced as a SweepError naming the lease.
        with pytest.raises(SweepError, match="not active"):
            client.renew(999)
        # Malformed submit body: 400.
        with pytest.raises(SweepError, match="rows"):
            client._request("/api/submit", {"lease": lease["id"], "rows": "nope"})
        # Unknown endpoint: 404.
        with pytest.raises(SweepError, match="unknown endpoint"):
            client._request("/api/nowhere", {})

    def test_dead_worker_then_recovery_converges(self, served):
        specs, coordinator, server = served
        faulty = run_worker(server.url, "faulty", poll_interval=0.01,
                            fault="die-before-submit")
        assert faulty.stopped == "fault" and faulty.rows_submitted == 0
        assert not coordinator.status().complete
        # Deterministic deadline: advance the coordinator's injected clock.
        coordinator.clock.advance(TTL + 1.0)
        healthy = run_worker(server.url, "healthy", poll_interval=0.01)
        assert healthy.stopped == "complete"
        assert coordinator.status().complete

    def test_duplicate_submission_over_the_wire_is_absorbed(self, served):
        specs, coordinator, server = served
        report = run_worker(server.url, "dup", poll_interval=0.01,
                            fault="duplicate-submit")
        assert report.stopped == "complete"
        status = coordinator.status()
        assert status.complete
        assert status.as_dict()["counters"]["rows_duplicate"] >= 1


# ----------------------------------------------------------------------
# Subprocess differential: the fault harness's mid-lease kill scenario
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_fault_harness_stall_scenario_matches_golden():
    """A real coordinator + two real workers, one SIGKILLed mid-lease —
    the merged store's export must match the single-host golden byte for
    byte (the same check CI's coordinator-smoke job runs)."""
    repo_root = Path(__file__).resolve().parent.parent
    result = subprocess.run(
        [sys.executable, str(repo_root / "tools" / "coordinator_fault_check.py"),
         "--scenario", "stall"],
        capture_output=True, text=True, timeout=580,
    )
    assert result.returncode == 0, f"\n{result.stdout}\n{result.stderr}"
    assert "scenario stall: PASSED" in result.stdout
