"""Integration tests for the flit-level wormhole simulation engine."""

from __future__ import annotations

import pytest

from repro.core.spam import SpamRouting
from repro.errors import ConfigurationError, DeadlockError, WorkloadError
from repro.routing.naive import NaiveMinimalRouting
from repro.routing.updown import UpDownRouting
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import WormholeSimulator
from repro.topology.examples import figure1_network
from repro.topology.irregular import lattice_irregular_network


def expected_idle_unicast_latency(config: SimulationConfig, hops: int) -> int:
    """Closed-form latency of a unicast through an idle network.

    ``hops`` is the number of channels on the path (injection + switch
    channels + consumption).  The head pays the startup, one router setup per
    switch traversed, and one channel latency per channel; the remaining
    flits then stream in behind it at one flit per channel cycle.
    """
    switches = hops - 1  # every channel except the injection one ends a hop into a router/processor
    head = (
        config.startup_latency_ns
        + hops * config.channel_latency_ns
        + (hops - 1) * config.router_setup_ns
    )
    return head + (config.message_length_flits - 1) * config.channel_latency_ns


class TestUnicastTiming:
    def test_idle_unicast_latency_matches_closed_form(self, two_switch, short_config):
        spam = SpamRouting.build(two_switch)
        simulator = WormholeSimulator(two_switch, spam, short_config)
        source, dest = two_switch.processors()
        message = simulator.submit_message(source, [dest])
        simulator.run()
        path = spam.unicast_route(source, dest)
        expected = expected_idle_unicast_latency(short_config, len(path))
        assert message.latency_from_startup_ns == expected

    def test_latency_grows_with_path_length(self, line5, short_config):
        spam = SpamRouting.build(line5, root=line5.node_by_label("s0"))
        processors = line5.processors()
        latencies = []
        for dest in processors[1:]:
            simulator = WormholeSimulator(line5, spam, short_config)
            message = simulator.submit_message(processors[0], [dest])
            simulator.run()
            latencies.append(message.latency_from_startup_ns)
        assert latencies == sorted(latencies)
        assert len(set(latencies)) == len(latencies)

    def test_longer_messages_take_longer(self, two_switch):
        spam = SpamRouting.build(two_switch)
        source, dest = two_switch.processors()
        results = []
        for length in (8, 64, 128):
            simulator = WormholeSimulator(two_switch, spam, SimulationConfig(message_length_flits=length))
            message = simulator.submit_message(source, [dest])
            simulator.run()
            results.append(message.latency_from_startup_ns)
        assert results[0] < results[1] < results[2]
        # Each additional flit costs exactly one channel cycle at the bottleneck.
        assert results[1] - results[0] == 56 * 10
        assert results[2] - results[1] == 64 * 10

    def test_startup_latency_dominates_idle_latency(self, two_switch, short_config):
        spam = SpamRouting.build(two_switch)
        simulator = WormholeSimulator(two_switch, spam, short_config)
        source, dest = two_switch.processors()
        message = simulator.submit_message(source, [dest])
        simulator.run()
        assert message.latency_from_startup_ns > short_config.startup_latency_ns
        assert message.latency_from_startup_ns < 2 * short_config.startup_latency_ns


class TestMulticastBehaviour:
    def test_figure1_multicast_delivers_to_all(self, figure1, short_config):
        spam = SpamRouting.build(figure1.network, root=figure1.root)
        simulator = WormholeSimulator(figure1.network, spam, short_config)
        message = simulator.submit_message(figure1.source, figure1.destinations)
        stats = simulator.run()
        assert message.is_complete
        assert set(message.delivered_ns) == set(figure1.destinations)
        assert stats.messages_completed == 1

    def test_multicast_latency_close_to_unicast(self, lattice32, short_config):
        """The paper's headline: one worm reaches many destinations for
        roughly the cost of one unicast (same startup, slightly longer tree)."""
        spam = SpamRouting.build(lattice32)
        processors = lattice32.processors()

        uni = WormholeSimulator(lattice32, spam, short_config)
        unicast = uni.submit_message(processors[0], [processors[5]])
        uni.run()

        multi = WormholeSimulator(lattice32, spam, short_config)
        multicast = multi.submit_message(processors[0], processors[1:17])
        multi.run()

        assert multicast.latency_from_startup_ns < 2 * unicast.latency_from_startup_ns

    def test_broadcast_delivers_to_every_processor(self, lattice32, short_config):
        spam = SpamRouting.build(lattice32)
        simulator = WormholeSimulator(lattice32, spam, short_config)
        source = lattice32.processors()[0]
        message = simulator.submit_broadcast(source)
        simulator.run()
        assert message.is_complete
        assert len(message.delivered_ns) == lattice32.num_processors - 1

    def test_multicast_single_startup(self, lattice32, short_config):
        """A 16-destination multicast must incur exactly one startup: its
        latency stays far below two startup latencies."""
        spam = SpamRouting.build(lattice32)
        simulator = WormholeSimulator(lattice32, spam, short_config)
        source = lattice32.processors()[0]
        message = simulator.submit_message(source, lattice32.processors()[1:17])
        simulator.run()
        assert message.latency_from_startup_ns < 2 * short_config.startup_latency_ns

    def test_delivery_and_completion_callbacks(self, figure1, short_config):
        spam = SpamRouting.build(figure1.network, root=figure1.root)
        simulator = WormholeSimulator(figure1.network, spam, short_config)
        deliveries = []
        completions = []
        simulator.delivery_callbacks.append(lambda m, d, t: deliveries.append((m.mid, d)))
        simulator.completion_callbacks.append(lambda m: completions.append(m.mid))
        message = simulator.submit_message(figure1.source, figure1.destinations)
        simulator.run()
        assert sorted(d for _, d in deliveries) == sorted(figure1.destinations)
        assert completions == [message.mid]

    def test_trace_records_paper_event_sequence(self, figure1):
        config = SimulationConfig(message_length_flits=8, trace=True)
        spam = SpamRouting.build(figure1.network, root=figure1.root)
        simulator = WormholeSimulator(figure1.network, spam, config)
        simulator.submit_message(figure1.source, figure1.destinations)
        simulator.run()
        trace = simulator.trace
        assert trace is not None
        kinds = [event.kind for event in trace.events]
        assert "startup" in kinds and "acquire" in kinds and "complete" in kinds
        # The worm must acquire channels at the LCA (node 4) for both subtrees.
        acquires = [e for e in trace.of_kind("acquire") if e.fields["switch"] == figure1.lca]
        assert acquires and len(acquires[0].fields["channels"]) == 2


class TestContention:
    def test_two_messages_share_a_channel_serially(self, two_switch, short_config):
        spam = SpamRouting.build(two_switch)
        simulator = WormholeSimulator(two_switch, spam, short_config)
        source, dest = two_switch.processors()
        first = simulator.submit_message(source, [dest], at_ns=0)
        second = simulator.submit_message(source, [dest], at_ns=0)
        simulator.run()
        assert first.is_complete and second.is_complete
        # The second message queues behind the first at the source NI.
        assert second.completed_ns > first.completed_ns
        assert second.latency_from_creation_ns > first.latency_from_creation_ns

    def test_contending_multicasts_all_complete(self, lattice32, short_config):
        spam = SpamRouting.build(lattice32)
        simulator = WormholeSimulator(lattice32, spam, short_config)
        processors = lattice32.processors()
        messages = []
        for index in range(6):
            source = processors[index]
            destinations = [p for p in processors[8:20] if p != source]
            messages.append(simulator.submit_message(source, destinations, at_ns=0))
        simulator.run()
        assert all(message.is_complete for message in messages)

    def test_under_load_latency_increases(self, lattice32, short_config):
        spam = SpamRouting.build(lattice32)
        processors = lattice32.processors()

        light = WormholeSimulator(lattice32, spam, short_config)
        light_msg = light.submit_message(processors[0], [processors[9]])
        light.run()

        heavy = WormholeSimulator(lattice32, spam, short_config)
        for index in range(1, 8):
            heavy.submit_message(processors[index], [processors[9]], at_ns=0)
        heavy_msg = heavy.submit_message(processors[0], [processors[9]], at_ns=0)
        heavy.run()
        assert heavy_msg.latency_from_creation_ns >= light_msg.latency_from_creation_ns

    def test_stats_summary_counts(self, lattice32, short_config):
        spam = SpamRouting.build(lattice32)
        simulator = WormholeSimulator(lattice32, spam, short_config)
        processors = lattice32.processors()
        simulator.submit_message(processors[0], [processors[3]])
        simulator.submit_message(processors[1], processors[4:8])
        stats = simulator.run()
        summary = stats.summary()
        assert summary["messages_submitted"] == 2
        assert summary["messages_completed"] == 2
        assert stats.completion_ratio == 1.0
        assert len(stats.unicast_records()) == 1
        assert len(stats.multicast_records()) == 1


class TestSlowChannels:
    """Per-channel latency factors (``channel_latency_factors``) in the
    reference engine: a slow channel is the worm's rate bottleneck."""

    def _latency_with_factor(self, network, factor, length=64):
        spam = SpamRouting.build(network)
        source, dest = network.processors()
        cid = network.injection_channel(source).cid
        config = SimulationConfig(
            message_length_flits=length,
            channel_latency_factors=((cid, factor),) if factor > 1 else (),
        )
        simulator = WormholeSimulator(network, spam, config)
        message = simulator.submit_message(source, [dest])
        simulator.run()
        return message.latency_from_startup_ns

    def test_slow_injection_throttles_streaming(self, two_switch):
        """A factor-f injection channel makes the worm stream at one flit
        per f channel cycles: each extra factor costs (length-2) extra
        cycles at the bottleneck (head and tail crossings overlap with the
        downstream pipeline)."""
        base = self._latency_with_factor(two_switch, 1)
        slow2 = self._latency_with_factor(two_switch, 2)
        slow3 = self._latency_with_factor(two_switch, 3)
        config = SimulationConfig()
        per_factor = (64 - 2) * config.channel_latency_ns
        assert slow2 - base == per_factor
        assert slow3 - base == 2 * per_factor

    def test_factor_one_is_a_no_op(self, lattice32, lattice32_spam):
        processors = lattice32.processors()
        cid = lattice32.injection_channel(processors[0]).cid
        deliveries = []
        for factors in ((), ((cid, 1),)):
            config = SimulationConfig(
                message_length_flits=32, channel_latency_factors=factors
            )
            simulator = WormholeSimulator(lattice32, lattice32_spam, config)
            message = simulator.submit_message(processors[0], [processors[9]])
            simulator.run()
            deliveries.append(dict(message.delivered_ns))
        assert deliveries[0] == deliveries[1]

    def test_unknown_channel_id_rejected(self, two_switch):
        spam = SpamRouting.build(two_switch)
        config = SimulationConfig(channel_latency_factors=((10_000, 2),))
        with pytest.raises(ConfigurationError):
            WormholeSimulator(two_switch, spam, config)


class TestValidationAndSafety:
    def test_submit_rejects_invalid_endpoints(self, figure1, short_config):
        spam = SpamRouting.build(figure1.network, root=figure1.root)
        simulator = WormholeSimulator(figure1.network, spam, short_config)
        with pytest.raises(ConfigurationError):
            simulator.submit_message(figure1.nodes[4], [figure1.nodes[8]])
        with pytest.raises(WorkloadError):
            simulator.submit_message(figure1.source, [figure1.source])
        with pytest.raises(WorkloadError):
            simulator.submit_message(figure1.source, [figure1.nodes[4]])

    def test_channel_stats_collection(self, figure1):
        config = SimulationConfig(message_length_flits=8, collect_channel_stats=True)
        spam = SpamRouting.build(figure1.network, root=figure1.root)
        simulator = WormholeSimulator(figure1.network, spam, config)
        simulator.submit_message(figure1.source, figure1.destinations)
        stats = simulator.run()
        assert stats.channel_records
        carried = sum(record.data_flits for record in stats.channel_records)
        assert carried > 0

    def test_deadlock_detected_with_naive_routing_on_ring(self, ring8):
        """Naive minimal routing on a ring deadlocks under all-to-neighbour
        pressure; the simulator must detect and explain it rather than hang."""
        naive = NaiveMinimalRouting(ring8)
        config = SimulationConfig(message_length_flits=64, deadlock_detection=True)
        simulator = WormholeSimulator(ring8, naive, config)
        processors = ring8.processors()
        count = len(processors)
        # Every processor sends two switches clockwise at the same instant.
        for index, source in enumerate(processors):
            target = processors[(index + 2) % count]
            simulator.submit_message(source, [target], at_ns=0)
        with pytest.raises(DeadlockError) as excinfo:
            simulator.run()
        report = excinfo.value.report
        assert report.stalled_messages
        assert report.has_circular_wait

    def test_spam_does_not_deadlock_on_same_pressure(self, ring8):
        spam = SpamRouting.build(ring8)
        config = SimulationConfig(message_length_flits=64, deadlock_detection=True)
        simulator = WormholeSimulator(ring8, spam, config)
        processors = ring8.processors()
        count = len(processors)
        for index, source in enumerate(processors):
            target = processors[(index + 2) % count]
            simulator.submit_message(source, [target], at_ns=0)
        stats = simulator.run()
        assert stats.messages_completed == count

    def test_run_until_partial_then_resume(self, two_switch, short_config):
        spam = SpamRouting.build(two_switch)
        simulator = WormholeSimulator(two_switch, spam, short_config)
        source, dest = two_switch.processors()
        message = simulator.submit_message(source, [dest])
        simulator.run(until_ns=short_config.startup_latency_ns // 2)
        assert not message.is_complete
        simulator.run()
        assert message.is_complete


class TestDeterministicSnapshots:
    """Regression tests for set-iteration hazards fixed by repro-lint (R1)."""

    def test_active_segments_sorted_regardless_of_set_order(self, figure1, short_config):
        class FakeMessage:
            def __init__(self, mid: int) -> None:
                self.mid = mid

        class FakeSegment:
            def __init__(self, mid: int, switch: int) -> None:
                self.message = FakeMessage(mid)
                self.switch = switch

        spam = SpamRouting.build(figure1.network)
        simulator = WormholeSimulator(figure1.network, spam, short_config)
        # active_segments() orders by (message.mid, switch); seed the live-set
        # in scrambled insertion order to make hash-order leakage visible.
        fakes = [
            FakeSegment(mid, switch)
            for mid, switch in [(2, 1), (0, 3), (1, 0), (0, 1), (2, 0)]
        ]
        simulator._segments.update(fakes)
        snapshot = simulator.active_segments()
        keys = [(seg.message.mid, seg.switch) for seg in snapshot]
        assert keys == sorted(keys)
