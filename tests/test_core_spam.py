"""Tests for the SpamRouting facade (decision logic, static routes, plans)."""

from __future__ import annotations

import pytest

from repro.core.decision import DecisionMode
from repro.core.spam import SpamRouting
from repro.errors import RoutingError
from repro.routing.base import RoutingAlgorithm
from repro.simulator.message import Message
from repro.topology.irregular import random_irregular_network
from repro.topology.regular import hypercube_network, mesh_network


def make_message(source, destinations, mid=0):
    return Message(mid=mid, source=source, destinations=destinations, length_flits=8, created_ns=0)


class TestConstruction:
    def test_build_with_explicit_root(self, figure1):
        spam = SpamRouting.build(figure1.network, root=figure1.root)
        assert spam.tree.root == figure1.root
        assert isinstance(spam, RoutingAlgorithm)
        assert spam.supports_multicast

    def test_build_with_strategies(self, lattice32):
        for strategy in ("center", "max-degree", "first", "random"):
            spam = SpamRouting.build(lattice32, root_strategy=strategy, seed=1)
            assert lattice32.is_switch(spam.tree.root)

    def test_rejects_foreign_tree(self, figure1, two_switch):
        from repro.spanning.tree import bfs_spanning_tree

        tree = bfs_spanning_tree(two_switch, two_switch.switches()[0])
        with pytest.raises(RoutingError):
            SpamRouting(figure1.network, tree)

    def test_works_on_regular_topologies(self):
        for network in (mesh_network(3, 3), hypercube_network(3)):
            spam = SpamRouting.build(network)
            processors = network.processors()
            path = spam.unicast_route(processors[0], processors[-1])
            assert path[-1].dst == processors[-1]


class TestPrepareAndDecide:
    def test_prepare_stores_lca_and_mask(self, figure1, figure1_spam):
        message = make_message(figure1.source, tuple(figure1.destinations))
        figure1_spam.prepare(message)
        assert message.routing_data["lca"] == figure1.lca
        expected_mask = 0
        for dest in figure1.destinations:
            expected_mask |= 1 << dest
        assert message.routing_data["dest_mask"] == expected_mask

    def test_decide_is_one_of_before_lca(self, figure1, figure1_spam):
        nodes = figure1.nodes
        message = make_message(figure1.source, tuple(figure1.destinations))
        figure1_spam.prepare(message)
        decision = figure1_spam.decide(message, nodes[2], None)
        assert decision.mode is DecisionMode.ONE_OF
        # The distance-to-LCA selection prefers the cross channel towards 3.
        assert decision.channels[0].dst == nodes[3]

    def test_decide_is_all_of_at_lca(self, figure1, figure1_spam):
        nodes = figure1.nodes
        net = figure1.network
        message = make_message(figure1.source, tuple(figure1.destinations))
        figure1_spam.prepare(message)
        in_channel = net.channel_between(nodes[3], nodes[4])
        decision = figure1_spam.decide(message, nodes[4], in_channel)
        assert decision.mode is DecisionMode.ALL_OF
        assert {c.dst for c in decision.channels} == {nodes[6], nodes[7]}

    def test_decide_stays_all_of_below_lca(self, figure1, figure1_spam):
        nodes = figure1.nodes
        net = figure1.network
        message = make_message(figure1.source, tuple(figure1.destinations))
        figure1_spam.prepare(message)
        in_channel = net.channel_between(nodes[4], nodes[6])
        decision = figure1_spam.decide(message, nodes[6], in_channel)
        assert decision.mode is DecisionMode.ALL_OF
        assert {c.dst for c in decision.channels} == {nodes[8], nodes[9], nodes[10]}

    def test_unicast_decision_reduces_to_single_channel_chain(self, figure1, figure1_spam):
        nodes = figure1.nodes
        message = make_message(figure1.source, (nodes[11],))
        figure1_spam.prepare(message)
        assert message.routing_data["lca"] == nodes[11]
        decision = figure1_spam.decide(message, nodes[2], None)
        assert decision.mode is DecisionMode.ONE_OF

    def test_decide_prepares_lazily(self, figure1, figure1_spam):
        message = make_message(figure1.source, tuple(figure1.destinations))
        # No explicit prepare(): decide() must bootstrap the routing data.
        decision = figure1_spam.decide(message, figure1.nodes[2], None)
        assert "lca" in message.routing_data
        assert len(decision.channels) >= 1


class TestStaticRoutes:
    def test_unicast_route_matches_paper_prefix(self, figure1, figure1_spam):
        nodes = figure1.nodes
        path = figure1_spam.unicast_route(figure1.source, nodes[8])
        hops = [(c.src, c.dst) for c in path]
        assert hops[0] == (nodes[5], nodes[2])
        assert hops[-1] == (nodes[6], nodes[8])
        # The distance-priority selection reproduces the paper's prefix
        # 5 -> 2 -> 3 -> 4 before descending 4 -> 6 -> 8.
        assert hops == [
            (nodes[5], nodes[2]),
            (nodes[2], nodes[3]),
            (nodes[3], nodes[4]),
            (nodes[4], nodes[6]),
            (nodes[6], nodes[8]),
        ]

    def test_unicast_route_every_pair_small_network(self, small_irregular_spam):
        network = small_irregular_spam.network
        processors = network.processors()
        for source in processors[:4]:
            for dest in processors:
                if dest == source:
                    continue
                path = small_irregular_spam.unicast_route(source, dest)
                assert path[0].src == source
                assert path[-1].dst == dest
                # Contiguity of the path.
                for previous, current in zip(path, path[1:]):
                    assert previous.dst == current.src

    def test_unicast_route_rejects_bad_endpoints(self, figure1, figure1_spam):
        with pytest.raises(RoutingError):
            figure1_spam.unicast_route(figure1.nodes[4], figure1.nodes[8])
        with pytest.raises(RoutingError):
            figure1_spam.unicast_route(figure1.source, figure1.source)

    def test_multicast_plan_facade(self, figure1, figure1_spam):
        plan = figure1_spam.multicast_plan(figure1.source, figure1.destinations)
        assert plan.lca == figure1.lca

    def test_routes_respect_phase_order_on_random_networks(self):
        for seed in (1, 5):
            network = random_irregular_network(14, extra_links=8, seed=seed)
            spam = SpamRouting.build(network)
            processors = network.processors()
            rank = {"up": 0, "down-cross": 1, "down-tree": 2}
            for dest in processors[1:6]:
                path = spam.unicast_route(processors[0], dest)
                ranks = [
                    rank[
                        "up"
                        if spam.labeling.label(c).is_up
                        else "down-cross"
                        if spam.labeling.label(c).is_down_cross
                        else "down-tree"
                    ]
                    for c in path
                ]
                assert ranks == sorted(ranks), f"phase order violated: {ranks}"
