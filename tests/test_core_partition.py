"""Tests for the destination-partitioning extension (paper §5)."""

from __future__ import annotations

import pytest

from repro.core.partition import (
    dfs_order,
    partition_by_subtree,
    partition_contiguous,
    partition_destinations,
    partition_random,
)
from repro.errors import ConfigurationError, WorkloadError
from repro.spanning.tree import bfs_spanning_tree


@pytest.fixture
def lattice_tree(lattice32):
    return bfs_spanning_tree(lattice32, lattice32.switches()[0])


def all_destinations(network, count=16):
    return network.processors()[:count]


class TestDfsOrder:
    def test_root_first_and_all_nodes_present(self, lattice32, lattice_tree):
        order = dfs_order(lattice_tree)
        assert order[lattice_tree.root] == 0
        assert sorted(order.values()) == list(range(lattice32.num_nodes))

    def test_children_follow_parents(self, lattice_tree):
        order = dfs_order(lattice_tree)
        for node in order:
            parent = lattice_tree.parent(node)
            if parent is not None:
                assert order[parent] < order[node]


class TestContiguousPartition:
    def test_partition_sizes_balanced(self, lattice32, lattice_tree):
        destinations = all_destinations(lattice32, 17)
        groups = partition_contiguous(lattice_tree, destinations, 4)
        assert len(groups) == 4
        sizes = sorted(len(g) for g in groups)
        assert sizes == [4, 4, 4, 5]
        assert sorted(sum(groups, [])) == sorted(destinations)

    def test_groups_are_contiguous_in_dfs_order(self, lattice32, lattice_tree):
        destinations = all_destinations(lattice32, 12)
        order = dfs_order(lattice_tree)
        groups = partition_contiguous(lattice_tree, destinations, 3)
        ranked = sorted(destinations, key=lambda node: order[node])
        flattened = sum(groups, [])
        assert flattened == ranked

    def test_more_groups_than_destinations(self, lattice32, lattice_tree):
        destinations = all_destinations(lattice32, 3)
        groups = partition_contiguous(lattice_tree, destinations, 10)
        assert len(groups) == 3
        assert all(len(g) == 1 for g in groups)

    def test_single_group_is_identity(self, lattice32, lattice_tree):
        destinations = all_destinations(lattice32, 9)
        groups = partition_contiguous(lattice_tree, destinations, 1)
        assert len(groups) == 1
        assert sorted(groups[0]) == sorted(destinations)


class TestOtherStrategies:
    def test_subtree_partition_covers_everything(self, lattice32, lattice_tree):
        destinations = all_destinations(lattice32, 20)
        groups = partition_by_subtree(lattice_tree, destinations, 4)
        assert sorted(sum(groups, [])) == sorted(destinations)
        assert all(groups)

    def test_random_partition_seeded(self, lattice32, lattice_tree):
        destinations = all_destinations(lattice32, 10)
        a = partition_random(lattice_tree, destinations, 3, seed=2)
        b = partition_random(lattice_tree, destinations, 3, seed=2)
        assert a == b
        assert sorted(sum(a, [])) == sorted(destinations)

    def test_random_partition_accepts_caller_owned_generator(
        self, lattice32, lattice_tree
    ):
        """The documented seed contract: an explicit Generator is used in
        place and advanced (two calls on one stream differ; two fresh
        streams from the same seed match the integer-seed path), and the
        input sequence is never mutated."""
        import numpy as np

        destinations = all_destinations(lattice32, 10)
        frozen = list(destinations)

        from_int = partition_random(lattice_tree, destinations, 3, seed=7)
        from_gen = partition_random(
            lattice_tree, destinations, 3, seed=np.random.default_rng(7)
        )
        assert from_gen == from_int

        stream = np.random.default_rng(7)
        first = partition_random(lattice_tree, destinations, 3, seed=stream)
        second = partition_random(lattice_tree, destinations, 3, seed=stream)
        assert first == from_int  # the stream's first draw matches a fresh rng
        assert second != first  # ... and the stream advanced in place
        assert destinations == frozen

    def test_random_partition_ignores_global_numpy_state(
        self, lattice32, lattice_tree
    ):
        """Reseeding the *global* numpy RNG must not change the result:
        randomness flows only from the explicit seed argument."""
        import numpy as np

        destinations = all_destinations(lattice32, 10)
        np.random.seed(123)
        a = partition_random(lattice_tree, destinations, 3, seed=5)
        np.random.seed(321)
        b = partition_random(lattice_tree, destinations, 3, seed=5)
        assert a == b

    def test_dispatch_and_errors(self, lattice32, lattice_tree):
        destinations = all_destinations(lattice32, 8)
        for strategy in ("contiguous", "subtree", "random"):
            groups = partition_destinations(lattice_tree, destinations, 2, strategy)
            assert sorted(sum(groups, [])) == sorted(destinations)
        with pytest.raises(ConfigurationError):
            partition_destinations(lattice_tree, destinations, 2, "bogus")
        with pytest.raises(ConfigurationError):
            partition_destinations(lattice_tree, destinations, 0)
        with pytest.raises(WorkloadError):
            partition_destinations(lattice_tree, [], 2)

    def test_partitioned_groups_have_deeper_lcas(self, lattice32, lattice_tree):
        """Partitioning by contiguity should push each group's LCA at least as
        deep as the full set's LCA — that is the whole point of the
        extension (avoid the root hot-spot)."""
        from repro.spanning.ancestry import Ancestry
        from repro.spanning.labeling import label_channels

        ancestry = Ancestry(label_channels(lattice32, lattice_tree))
        destinations = all_destinations(lattice32, 16)
        full_lca_depth = lattice_tree.depth(ancestry.lca(destinations))
        groups = partition_contiguous(lattice_tree, destinations, 4)
        for group in groups:
            assert lattice_tree.depth(ancestry.lca(group)) >= full_lca_depth
