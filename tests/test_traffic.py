"""Tests for arrival processes, destination patterns and workload builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.spanning.tree import bfs_spanning_tree
from repro.traffic.arrivals import (
    DeterministicArrivals,
    NegativeBinomialArrivals,
    PoissonArrivals,
    make_arrival_process,
)
from repro.traffic.patterns import (
    broadcast_destinations,
    clustered_destinations,
    uniform_destinations,
    uniform_source,
)
from repro.traffic.workload import mixed_traffic_workload, single_multicast_workload


class TestArrivalProcesses:
    @pytest.mark.parametrize(
        "process",
        [
            PoissonArrivals(rate_per_us=0.01),
            NegativeBinomialArrivals(rate_per_us=0.01),
            DeterministicArrivals(rate_per_us=0.01),
        ],
    )
    def test_mean_interarrival_close_to_requested(self, process):
        rng = np.random.default_rng(0)
        samples = [process.next_interarrival_ns(rng) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        # 0.01 messages/us -> 100_000 ns mean inter-arrival.
        assert mean == pytest.approx(100_000, rel=0.1)
        assert all(s >= 1 for s in samples)

    def test_deterministic_is_constant(self):
        process = DeterministicArrivals(rate_per_us=0.1)
        rng = np.random.default_rng(1)
        values = {process.next_interarrival_ns(rng) for _ in range(10)}
        assert values == {10_000}

    def test_negative_binomial_is_burstier_than_deterministic(self):
        rng = np.random.default_rng(2)
        nb = NegativeBinomialArrivals(rate_per_us=0.05, r=1)
        samples = [nb.next_interarrival_ns(rng) for _ in range(2000)]
        assert np.std(samples) > 0

    def test_arrival_times_are_cumulative(self):
        process = DeterministicArrivals(rate_per_us=0.001)
        times = process.arrival_times_ns(np.random.default_rng(0), count=3, start_ns=50)
        assert times == [1_000_050, 2_000_050, 3_000_050]

    def test_average_rate_property(self):
        process = PoissonArrivals(rate_per_us=0.02)
        assert process.average_rate_per_us == pytest.approx(0.02)

    def test_factory_and_errors(self):
        assert isinstance(make_arrival_process("poisson", 0.01), PoissonArrivals)
        assert isinstance(make_arrival_process("negative-binomial", 0.01), NegativeBinomialArrivals)
        assert isinstance(make_arrival_process("deterministic", 0.01), DeterministicArrivals)
        with pytest.raises(ConfigurationError):
            make_arrival_process("weibull", 0.01)
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate_per_us=0)
        with pytest.raises(ConfigurationError):
            NegativeBinomialArrivals(rate_per_us=0.01, r=0)


class TestPatterns:
    def test_uniform_source_is_processor(self, lattice32):
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert lattice32.is_processor(uniform_source(lattice32, rng))

    def test_uniform_destinations_exclude_source(self, lattice32):
        rng = np.random.default_rng(0)
        source = lattice32.processors()[0]
        destinations = uniform_destinations(lattice32, source, 10, rng)
        assert len(destinations) == 10
        assert len(set(destinations)) == 10
        assert source not in destinations
        assert all(lattice32.is_processor(d) for d in destinations)

    def test_uniform_destinations_bounds(self, lattice32):
        rng = np.random.default_rng(0)
        source = lattice32.processors()[0]
        with pytest.raises(WorkloadError):
            uniform_destinations(lattice32, source, 0, rng)
        with pytest.raises(WorkloadError):
            uniform_destinations(lattice32, source, lattice32.num_processors, rng)

    def test_clustered_destinations_are_tree_contiguous(self, lattice32):
        rng = np.random.default_rng(3)
        tree = bfs_spanning_tree(lattice32, lattice32.switches()[0])
        source = lattice32.processors()[0]
        destinations = clustered_destinations(lattice32, tree, source, 6, rng)
        assert len(destinations) == 6
        assert source not in destinations

    def test_broadcast_destinations(self, lattice32):
        source = lattice32.processors()[3]
        destinations = broadcast_destinations(lattice32, source)
        assert len(destinations) == lattice32.num_processors - 1
        assert source not in destinations


class TestSingleMulticastWorkload:
    def test_sample_count_and_spacing(self, lattice32):
        workload = single_multicast_workload(lattice32, num_destinations=5, samples=4, seed=1)
        assert len(workload) == 4
        assert workload.num_multicasts == 4
        arrival_times = [spec.at_ns for spec in workload]
        assert arrival_times == sorted(arrival_times)
        assert arrival_times[1] - arrival_times[0] >= 100_000

    def test_destination_count_respected(self, lattice32):
        workload = single_multicast_workload(lattice32, num_destinations=7, samples=3, seed=2)
        for spec in workload:
            assert len(spec.destinations) == 7
            assert spec.source not in spec.destinations

    def test_deterministic_given_seed(self, lattice32):
        a = single_multicast_workload(lattice32, 5, 3, seed=9)
        b = single_multicast_workload(lattice32, 5, 3, seed=9)
        assert [s.destinations for s in a] == [s.destinations for s in b]
        c = single_multicast_workload(lattice32, 5, 3, seed=10)
        assert [s.destinations for s in a] != [s.destinations for s in c]

    def test_invalid_samples(self, lattice32):
        with pytest.raises(WorkloadError):
            single_multicast_workload(lattice32, 5, 0)


class TestMixedTrafficWorkload:
    def test_message_count_and_multicast_fraction(self, lattice32):
        workload = mixed_traffic_workload(
            lattice32, rate_per_us=0.02, multicast_destinations=8, num_messages=200, seed=4
        )
        assert len(workload) == 200
        fraction = workload.num_multicasts / len(workload)
        assert 0.03 <= fraction <= 0.2  # nominal 0.1

    def test_multicast_degree(self, lattice32):
        workload = mixed_traffic_workload(
            lattice32, rate_per_us=0.02, multicast_destinations=6, num_messages=100, seed=5
        )
        for spec in workload:
            if spec.is_multicast:
                assert len(spec.destinations) == 6

    def test_arrival_times_sorted_and_rate_dependent(self, lattice32):
        slow = mixed_traffic_workload(lattice32, 0.001, 4, num_messages=60, seed=6)
        fast = mixed_traffic_workload(lattice32, 0.05, 4, num_messages=60, seed=6)
        assert [s.at_ns for s in slow] == sorted(s.at_ns for s in slow)
        assert slow.horizon_ns() > fast.horizon_ns()

    def test_sources_spread_over_processors(self, lattice32):
        workload = mixed_traffic_workload(lattice32, 0.02, 4, num_messages=150, seed=7)
        sources = {spec.source for spec in workload}
        assert len(sources) > lattice32.num_processors // 2

    def test_parameter_validation(self, lattice32):
        with pytest.raises(WorkloadError):
            mixed_traffic_workload(lattice32, 0.02, 4, num_messages=0)
        with pytest.raises(WorkloadError):
            mixed_traffic_workload(lattice32, 0.02, 4, num_messages=10, multicast_fraction=1.5)
        with pytest.raises(WorkloadError):
            mixed_traffic_workload(lattice32, 0.02, lattice32.num_processors, num_messages=10)

    def test_submit_to_simulator(self, lattice32, short_config):
        from repro.core.spam import SpamRouting
        from repro.simulator.engine import WormholeSimulator

        workload = mixed_traffic_workload(lattice32, 0.02, 4, num_messages=20, seed=8)
        spam = SpamRouting.build(lattice32)
        simulator = WormholeSimulator(lattice32, spam, short_config)
        messages = workload.submit_to(simulator)
        assert len(messages) == 20
        stats = simulator.run()
        assert stats.messages_completed == 20
