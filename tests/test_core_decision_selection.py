"""Tests for routing phases, routing decisions and selection functions."""

from __future__ import annotations

import pytest

from repro.core.decision import DecisionMode, RoutingDecision, all_of, one_of
from repro.core.phases import Phase, may_follow, phase_of_label
from repro.core.selection import (
    DistanceToTargetSelection,
    FirstAllowedSelection,
    RandomSelection,
    make_selection,
)
from repro.core.unicast import RoutingOption
from repro.errors import RoutingError, SelectionError
from repro.topology.channels import DOWN_CROSS, DOWN_TREE, UP_CROSS, UP_TREE


class TestPhases:
    def test_phase_of_label(self):
        assert phase_of_label(UP_TREE) is Phase.UP
        assert phase_of_label(UP_CROSS) is Phase.UP
        assert phase_of_label(DOWN_CROSS) is Phase.DOWN_CROSS
        assert phase_of_label(DOWN_TREE) is Phase.DOWN_TREE

    def test_may_follow_is_monotone(self):
        assert may_follow(Phase.UP, Phase.UP)
        assert may_follow(Phase.UP, Phase.DOWN_CROSS)
        assert may_follow(Phase.UP, Phase.DOWN_TREE)
        assert may_follow(Phase.DOWN_CROSS, Phase.DOWN_TREE)
        assert not may_follow(Phase.DOWN_CROSS, Phase.UP)
        assert not may_follow(Phase.DOWN_TREE, Phase.DOWN_CROSS)
        assert not may_follow(Phase.DOWN_TREE, Phase.UP)


class TestRoutingDecision:
    def test_one_of_and_all_of(self, figure1):
        net = figure1.network
        channels = net.channels_from(figure1.nodes[4])
        decision = one_of(channels[:2])
        assert decision.mode is DecisionMode.ONE_OF
        assert decision.is_adaptive
        assert len(decision) == 2

        allof = all_of(channels[:3])
        assert allof.mode is DecisionMode.ALL_OF
        assert not allof.is_adaptive
        assert allof.channel_ids == tuple(c.cid for c in channels[:3])

    def test_empty_decision_rejected(self):
        with pytest.raises(RoutingError):
            RoutingDecision(DecisionMode.ONE_OF, ())

    def test_duplicate_channels_rejected_in_all_of(self, figure1):
        channel = figure1.network.channels_from(figure1.nodes[4])[0]
        with pytest.raises(RoutingError):
            all_of([channel, channel])


def _options_from(network, node):
    return [RoutingOption(c, Phase.UP) for c in network.channels_from(node)]


class TestSelectionFunctions:
    def test_distance_selection_prefers_closer_endpoint(self, figure1, figure1_spam):
        nodes = figure1.nodes
        selection = DistanceToTargetSelection(figure1.network)
        # At node 2 heading for LCA node 4: down-cross to 3 (distance 1) beats
        # up to 1 (distance 1) only via the phase tie-break; both beat nothing.
        options = figure1_spam.allowed_options(nodes[2], Phase.UP, nodes[4])
        ordered = selection.order(options, nodes[4])
        assert ordered[0].channel.dst == nodes[3]

    def test_distance_selection_prefers_direct_delivery(self, figure1):
        nodes = figure1.nodes
        network = figure1.network
        selection = DistanceToTargetSelection(network)
        consumption = network.consumption_channel(nodes[8])
        other = network.channel_between(nodes[6], nodes[4])
        options = [RoutingOption(other, Phase.UP), RoutingOption(consumption, Phase.DOWN_TREE)]
        best = selection.best(options, nodes[8])
        assert best.channel.dst == nodes[8]

    def test_first_allowed_orders_by_cid(self, figure1):
        options = _options_from(figure1.network, figure1.nodes[4])
        ordered = FirstAllowedSelection().order(options, figure1.nodes[8])
        cids = [o.channel.cid for o in ordered]
        assert cids == sorted(cids)

    def test_random_selection_is_seeded(self, figure1):
        options = _options_from(figure1.network, figure1.nodes[4])
        a = RandomSelection(seed=3).order(list(options), figure1.nodes[8])
        b = RandomSelection(seed=3).order(list(options), figure1.nodes[8])
        assert [o.channel.cid for o in a] == [o.channel.cid for o in b]

    def test_selection_preserves_option_set(self, figure1):
        options = _options_from(figure1.network, figure1.nodes[4])
        for name in ("distance-to-lca", "first-allowed", "random"):
            selection = make_selection(name, figure1.network, seed=1)
            ordered = selection.order(list(options), figure1.nodes[8])
            assert sorted(o.channel.cid for o in ordered) == sorted(
                o.channel.cid for o in options
            )

    def test_best_raises_on_empty(self, figure1):
        selection = FirstAllowedSelection()
        with pytest.raises(SelectionError):
            selection.best([], figure1.nodes[8])

    def test_make_selection_unknown_name(self, figure1):
        with pytest.raises(SelectionError):
            make_selection("bogus", figure1.network)
