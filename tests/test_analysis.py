"""Tests for statistics, sweeps, software-multicast bounds and reports."""

from __future__ import annotations

import math

import pytest

from repro.analysis.bounds import (
    compare_against_bound,
    software_multicast_latency_model,
    software_multicast_lower_bound_us,
)
from repro.analysis.report import (
    format_markdown_table,
    format_sweep,
    format_table,
    series_side_by_side,
)
from repro.analysis.stats import confidence_interval, relative_half_width, summarize_samples
from repro.analysis.sweeps import SweepResult, SweepSeries


class TestSampleStatistics:
    def test_summary_basic(self):
        summary = summarize_samples([10.0, 12.0, 11.0, 13.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(11.5)
        assert summary.ci_low < summary.mean < summary.ci_high
        assert summary.std == pytest.approx(1.29099, rel=1e-4)

    def test_single_observation_degenerates(self):
        summary = summarize_samples([5.0])
        assert summary.ci_low == summary.ci_high == 5.0
        assert summary.std == 0.0
        assert summary.relative_half_width == 0.0

    def test_confidence_interval_widens_with_confidence(self):
        values = [10, 11, 12, 13, 14, 15]
        low95, high95 = confidence_interval(values, 0.95)
        low99, high99 = confidence_interval(values, 0.99)
        assert high99 - low99 > high95 - low95

    def test_interval_contains_true_mean_for_large_sample(self):
        values = [10 + (i % 7) * 0.5 for i in range(200)]
        low, high = confidence_interval(values)
        true_mean = sum(values) / len(values)
        assert low <= true_mean <= high
        assert relative_half_width(values) < 0.02

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            summarize_samples([])
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_as_dict(self):
        summary = summarize_samples([1.0, 2.0, 3.0])
        payload = summary.as_dict()
        assert payload["count"] == 3
        assert "rel_half_width" in payload


class TestBounds:
    def test_lower_bound_values(self):
        # Paper: 10 us startup, 255-destination broadcast in a 256-node
        # network -> ceil(log2(256)) = 8 phases -> 80 us; the paper quotes
        # 90 us using 511/512-ish rounding, either way far above SPAM's 14 us.
        assert software_multicast_lower_bound_us(255) == pytest.approx(80.0)
        assert software_multicast_lower_bound_us(127) == pytest.approx(70.0)
        assert software_multicast_lower_bound_us(1) == pytest.approx(10.0)
        assert software_multicast_lower_bound_us(0) == 0.0

    def test_latency_model_adds_network_term(self):
        bound = software_multicast_latency_model(15, startup_latency_us=10, per_phase_network_us=2)
        assert bound == pytest.approx(4 * 12)

    def test_comparison_speedup(self):
        comparison = compare_against_bound(255, measured_spam_latency_us=13.5)
        assert comparison.software_lower_bound_us == pytest.approx(80.0)
        assert comparison.speedup == pytest.approx(80.0 / 13.5)
        assert comparison.speedup > 5.0
        payload = comparison.as_dict()
        assert payload["destinations"] == 255

    def test_speedup_with_zero_latency(self):
        comparison = compare_against_bound(8, measured_spam_latency_us=0.0)
        assert math.isinf(comparison.speedup)


class TestSweeps:
    def build_sweep(self):
        result = SweepResult(name="demo", x_label="x", y_label="y")
        series = result.add_series("a", flavour=1)
        series.add(1, [10.0, 11.0])
        series.add(2, [10.5, 11.5])
        other = result.add_series("b")
        other.add(1, [20.0])
        return result

    def test_series_accessors(self):
        result = self.build_sweep()
        assert result.labels() == ["a", "b"]
        series = result.get_series("a")
        assert series.xs() == [1, 2]
        assert series.means() == [10.5, 11.0]
        assert series.spread() == pytest.approx(0.5)
        assert series.max_mean() == pytest.approx(11.0)
        with pytest.raises(KeyError):
            result.get_series("missing")

    def test_rows_flatten_points(self):
        result = self.build_sweep()
        rows = list(result.rows())
        assert len(rows) == 3
        assert rows[0]["series"] == "a"
        assert rows[0]["x"] == 1
        assert "ci_low" in rows[0]

    def test_empty_series_spread(self):
        series = SweepSeries(label="empty")
        assert series.spread() == 0.0


class TestReportFormatting:
    def test_format_table_alignment(self):
        rows = [{"name": "alpha", "value": 1.23456}, {"name": "b", "value": 20}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert "1.235" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no data)"

    def test_markdown_table(self):
        rows = [{"a": 1, "b": 2}]
        text = format_markdown_table(rows)
        assert text.splitlines()[0] == "| a | b |"
        assert "|---|---|" in text

    def test_format_sweep_and_side_by_side(self):
        result = TestSweeps().build_sweep()
        text = format_sweep(result)
        assert "demo" in text
        side = series_side_by_side(result)
        lines = side.splitlines()
        assert lines[0].split()[0] == "x"
        assert "a" in lines[0] and "b" in lines[0]
        # Row for x=1 contains values from both series.
        assert "10.5" in side and "20.0" in side
