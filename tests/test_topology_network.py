"""Unit tests for the network graph model (`repro.topology.network`)."""

from __future__ import annotations

import pytest

from repro.errors import ConnectivityError, TopologyError
from repro.topology.channels import LinkRole, NodeKind
from repro.topology.network import Network


def build_simple() -> Network:
    net = Network(ports_per_switch=4, name="simple")
    a = net.add_switch("A")
    b = net.add_switch("B")
    net.connect(a, b)
    net.add_processor(a, "pA")
    net.add_processor(b, "pB")
    return net


class TestConstruction:
    def test_node_counts(self):
        net = build_simple()
        assert net.num_switches == 2
        assert net.num_processors == 2
        assert net.num_nodes == 4

    def test_channel_counts_are_directional(self):
        net = build_simple()
        # 3 bidirectional links (A-B, A-pA, B-pB) -> 6 unidirectional channels.
        assert net.num_channels == 6

    def test_labels_resolve_to_ids(self):
        net = build_simple()
        assert net.label(net.node_by_label("A")) == "A"
        assert net.label(net.node_by_label("pB")) == "pB"

    def test_duplicate_label_rejected(self):
        net = Network()
        net.add_switch("X")
        with pytest.raises(TopologyError):
            net.add_switch("X")

    def test_duplicate_link_rejected(self):
        net = Network()
        a, b = net.add_switch(), net.add_switch()
        net.connect(a, b)
        with pytest.raises(TopologyError):
            net.connect(a, b)

    def test_self_loop_rejected(self):
        net = Network()
        a = net.add_switch()
        with pytest.raises(TopologyError):
            net.connect(a, a)

    def test_port_budget_enforced(self):
        net = Network(ports_per_switch=2)
        hub = net.add_switch("hub")
        net.connect(hub, net.add_switch())
        net.connect(hub, net.add_switch())
        with pytest.raises(TopologyError):
            net.connect(hub, net.add_switch())

    def test_processor_budget_counts_against_ports(self):
        net = Network(ports_per_switch=1)
        s = net.add_switch()
        net.add_processor(s)
        with pytest.raises(TopologyError):
            net.add_processor(s)

    def test_processor_to_processor_impossible(self):
        net = Network()
        s = net.add_switch()
        p = net.add_processor(s)
        with pytest.raises(TopologyError):
            net.connect(p, s)  # connect() requires switches

    def test_unlimited_ports_when_none(self):
        net = Network(ports_per_switch=None)
        hub = net.add_switch()
        for _ in range(20):
            net.connect(hub, net.add_switch())
        assert net.degree(hub) == 20


class TestQueries:
    def test_kinds(self):
        net = build_simple()
        assert net.kind(net.node_by_label("A")) is NodeKind.SWITCH
        assert net.is_processor(net.node_by_label("pA"))

    def test_switch_of_and_processors_of(self):
        net = build_simple()
        a = net.node_by_label("A")
        pa = net.node_by_label("pA")
        assert net.switch_of(pa) == a
        assert net.processors_of(a) == [pa]
        assert net.attached_processor(a) == pa

    def test_switch_of_rejects_switch_argument(self):
        net = build_simple()
        with pytest.raises(TopologyError):
            net.switch_of(net.node_by_label("A"))

    def test_channel_between_and_reverse(self):
        net = build_simple()
        a, b = net.node_by_label("A"), net.node_by_label("B")
        ab = net.channel_between(a, b)
        ba = net.channel(ab.reverse_cid)
        assert (ab.src, ab.dst) == (a, b)
        assert (ba.src, ba.dst) == (b, a)
        assert ba.reverse_cid == ab.cid

    def test_channel_roles(self):
        net = build_simple()
        a = net.node_by_label("A")
        pa = net.node_by_label("pA")
        assert net.channel_between(pa, a).role is LinkRole.INJECTION
        assert net.channel_between(a, pa).role is LinkRole.CONSUMPTION
        b = net.node_by_label("B")
        assert net.channel_between(a, b).role is LinkRole.INTERNAL

    def test_injection_and_consumption_accessors(self):
        net = build_simple()
        pa = net.node_by_label("pA")
        assert net.injection_channel(pa).src == pa
        assert net.consumption_channel(pa).dst == pa

    def test_channels_from_and_into(self):
        net = build_simple()
        a = net.node_by_label("A")
        outgoing = {c.dst for c in net.channels_from(a)}
        incoming = {c.src for c in net.channels_into(a)}
        expected = {net.node_by_label("B"), net.node_by_label("pA")}
        assert outgoing == expected
        assert incoming == expected

    def test_missing_channel_raises(self):
        net = build_simple()
        pa, pb = net.node_by_label("pA"), net.node_by_label("pB")
        assert not net.has_channel(pa, pb)
        with pytest.raises(TopologyError):
            net.channel_between(pa, pb)

    def test_unknown_node_raises(self):
        net = build_simple()
        with pytest.raises(TopologyError):
            net.degree(99)
        with pytest.raises(TopologyError):
            net.node_by_label("missing")


class TestGraphLevel:
    def test_connectivity(self):
        net = build_simple()
        assert net.is_connected()
        disconnected = Network()
        disconnected.add_switch()
        disconnected.add_switch()
        assert not disconnected.is_connected()
        with pytest.raises(ConnectivityError):
            disconnected.require_connected()

    def test_shortest_distances(self):
        net = build_simple()
        pa = net.node_by_label("pA")
        pb = net.node_by_label("pB")
        dist = net.shortest_distances_from(pa)
        assert dist[pb] == 3  # pA -> A -> B -> pB

    def test_switch_distance_matrix_excludes_processors(self):
        net = build_simple()
        matrix = net.switch_distance_matrix()
        a, b = net.node_by_label("A"), net.node_by_label("B")
        assert matrix[a][b] == 1
        assert net.node_by_label("pA") not in matrix[a]

    def test_to_networkx_roundtrip(self):
        net = build_simple()
        graph = net.to_networkx()
        assert graph.number_of_nodes() == net.num_nodes
        assert graph.number_of_edges() == net.num_channels // 2
        kinds = {data["kind"] for _, data in graph.nodes(data=True)}
        assert kinds == {"switch", "processor"}

    def test_iter_bidirectional_links(self):
        net = build_simple()
        links = list(net.iter_bidirectional_links())
        assert len(links) == net.num_channels // 2
        assert all(a < b for a, b in links)

    def test_switch_edges_only(self):
        net = build_simple()
        edges = list(net.subgraph_switch_edges())
        assert edges == [(net.node_by_label("A"), net.node_by_label("B"))]
