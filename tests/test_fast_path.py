"""Trace-equivalence tests for the engine's steady-state fast path, plus
regression tests for the partial-run clock and channel-utilisation fixes.

The fast path's contract is *bit-identical observable behaviour*: delivery
timestamps, trace records, message statistics, flit-hop counts, bubble
counts and per-channel utilisation must not change when event coalescing is
enabled (see ``docs/fast_path.md`` for the full contract).  Every scenario
here runs twice — ``fast_path=True`` against ``fast_path=False`` (the
reference per-flit execution) — and compares the full observable
fingerprint.  Where a scenario is expected to reach a steady state, the
test additionally asserts that the fast path actually coalesced something
(and, for the phase-staggered and bubble-periodic patterns, that the
corresponding mode engaged), so the equivalence claim is not vacuous.
"""

from __future__ import annotations

import pytest

from repro.core.spam import SpamRouting
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import WormholeSimulator
from repro.topology.examples import two_switch_network
from repro.topology.irregular import lattice_irregular_network
from repro.traffic.arrivals import NegativeBinomialArrivals, PoissonArrivals
from repro.traffic.workload import mixed_traffic_workload


def _fingerprint(simulator, stats):
    """Everything observable about a finished (or paused) simulation."""
    summary = {
        key: (None if value != value else value)  # normalise NaN for ==
        for key, value in stats.summary().items()
    }
    return {
        "summary": summary,
        "trace": simulator.trace.signature(),
        "deliveries": {
            mid: dict(message.delivered_ns)
            for mid, message in simulator.messages.items()
        },
        "completions": {
            mid: message.completed_ns for mid, message in simulator.messages.items()
        },
        "hops": {mid: message.hops for mid, message in simulator.messages.items()},
        "channels": [
            (rec.cid, rec.data_flits, rec.bubble_flits, rec.busy_ns)
            for rec in stats.channel_records
        ],
        "now": simulator.now,
    }


def _run_pair(
    network,
    routing,
    submit,
    flits,
    run=None,
    expect_coalesced=False,
    expect_stagger=False,
    expect_bubbles=False,
    **overrides,
):
    """Run a scenario with the fast path on and off; assert identical output.

    ``submit`` receives the simulator and schedules the workload; ``run``
    (default: one unbounded ``run()``) drives the simulation and returns the
    final stats.  ``overrides`` are extra :class:`SimulationConfig` fields
    (e.g. ``coalesce_stagger=False``).  Returns the fast-path simulator for
    extra assertions.
    """
    results = []
    simulators = []
    for fast in (True, False):
        config = SimulationConfig(
            message_length_flits=flits,
            fast_path=fast,
            trace=True,
            collect_channel_stats=True,
            **overrides,
        )
        simulator = WormholeSimulator(network, routing, config)
        submit(simulator)
        stats = simulator.run() if run is None else run(simulator)
        results.append(_fingerprint(simulator, stats))
        simulators.append(simulator)
    fast_sim, ref_sim = simulators
    assert ref_sim.coalesced_ticks == 0
    if expect_coalesced:
        assert fast_sim.coalesced_ticks > 0, "fast path never engaged; test is vacuous"
    if expect_stagger:
        assert fast_sim.coalesced_stagger_ticks > 0, (
            "no phase-staggered window coalesced; test is vacuous"
        )
    if expect_bubbles:
        assert fast_sim.coalesced_bubble_ticks > 0, (
            "no bubble-periodic window coalesced; test is vacuous"
        )
    assert results[0] == results[1]
    return fast_sim


@pytest.mark.equivalence
class TestTraceEquivalence:
    def test_figure1_multicast_with_replication_bubbles(self, figure1):
        """The paper's §3.2 walk-through network: asynchronous replication
        produces bubbles, and the fast path must reproduce the per-flit
        trace (including every ``bubble`` record) exactly."""
        spam = SpamRouting.build(figure1.network, root=figure1.root)

        def submit(sim):
            sim.submit_message(figure1.source, figure1.destinations)

        fast_sim = _run_pair(figure1.network, spam, submit, flits=64)
        assert fast_sim.stats.bubbles_created > 0

    def test_lattice_broadcast_steady_state(self, lattice32, lattice32_spam):
        """A broadcast on the irregular lattice reaches a long streaming
        phase; the fast path must coalesce it and stay bit-identical."""

        def submit(sim):
            sim.submit_broadcast(lattice32.processors()[0])

        fast_sim = _run_pair(
            lattice32, lattice32_spam, submit, flits=128, expect_coalesced=True
        )
        assert fast_sim.stats.bubbles_created > 0

    def test_contended_ocrq_multicasts(self, lattice32, lattice32_spam):
        """Six overlapping multicasts force OCRQ queueing and serial channel
        acquisition; equivalence must hold through the contention."""
        processors = lattice32.processors()

        def submit(sim):
            for index in range(6):
                source = processors[index]
                destinations = [p for p in processors[8:20] if p != source]
                sim.submit_message(source, destinations, at_ns=0)

        _run_pair(lattice32, lattice32_spam, submit, flits=64)

    def test_cross_traffic_unicasts(self, lattice32, lattice32_spam):
        processors = lattice32.processors()

        def submit(sim):
            for index in range(8):
                sim.submit_message(
                    processors[index],
                    [processors[(index + 11) % len(processors)]],
                    at_ns=0,
                )

        _run_pair(
            lattice32, lattice32_spam, submit, flits=256, expect_coalesced=True
        )

    def test_bounded_windows_equivalent(self, lattice32, lattice32_spam):
        """Driving the simulation in ``run_for`` windows (which can cut a
        steady-state batch short) must match the reference windowed run."""

        def submit(sim):
            sim.submit_broadcast(lattice32.processors()[0])

        def run(sim):
            stats = sim.stats
            while sim.pending_messages:
                stats = sim.run_for(1_000)
            return stats

        _run_pair(
            lattice32, lattice32_spam, submit, flits=256, run=run,
            expect_coalesced=True,
        )

    def test_windowed_equals_unbounded_delivery_times(self, lattice32, lattice32_spam):
        config = SimulationConfig(message_length_flits=128)
        windowed = WormholeSimulator(lattice32, lattice32_spam, config)
        message_w = windowed.submit_broadcast(lattice32.processors()[0])
        while windowed.pending_messages:
            windowed.run_for(700)
        unbounded = WormholeSimulator(lattice32, lattice32_spam, config)
        message_u = unbounded.submit_broadcast(lattice32.processors()[0])
        unbounded.run()
        assert message_w.delivered_ns == message_u.delivered_ns


@pytest.mark.equivalence
class TestGeneralizedCoalescing:
    """The phase-staggered and bubble-periodic extensions of the fast path.

    Each scenario asserts the bit-identical fingerprint *and* that the mode
    under test actually replayed windows arithmetically (via the engine's
    ``coalesced_stagger_ticks`` / ``coalesced_bubble_ticks`` counters), so
    the equivalence claim is not vacuous.
    """

    def _mixed_workload(self, network, arrival_process):
        return mixed_traffic_workload(
            network,
            rate_per_us=0.03,
            multicast_destinations=8,
            num_messages=36,
            multicast_fraction=0.15,
            seed=23,
            arrival_process=arrival_process,
        )

    def test_poisson_arrivals_mixed_traffic(self, lattice32, lattice32_spam):
        """Figure-3-style mixed traffic with Poisson arrivals: message starts
        fall on arbitrary nanoseconds, so concurrently-active worms stream in
        different congruence classes modulo the channel period — the
        phase-stagger mode must coalesce them and stay bit-identical."""
        workload = self._mixed_workload(lattice32, PoissonArrivals(0.03))

        fast_sim = _run_pair(
            lattice32,
            lattice32_spam,
            workload.submit_to,
            flits=64,
            expect_coalesced=True,
            expect_stagger=True,
        )
        assert fast_sim.stats.bubbles_created > 0

    def test_negative_binomial_arrivals_mixed_traffic(self, lattice32, lattice32_spam):
        """The paper's negative-binomial arrivals are quantised to the channel
        period, so worms stay phase-aligned; equivalence must hold through the
        mixed unicast/multicast contention (including bubble-periodic
        windows from blocked multicast branches)."""
        workload = self._mixed_workload(lattice32, NegativeBinomialArrivals(0.03))

        _run_pair(
            lattice32,
            lattice32_spam,
            workload.submit_to,
            flits=64,
            expect_coalesced=True,
            expect_bubbles=True,
        )

    def test_phase_staggered_cross_traffic(self, lattice32, lattice32_spam):
        """Eight long unicasts deliberately submitted 3 ns apart (not a
        multiple of the 10 ns channel period) stream concurrently in
        different congruence classes; the stagger mode must batch them."""
        processors = lattice32.processors()

        def submit(sim):
            for index in range(8):
                sim.submit_message(
                    processors[index],
                    [processors[(index + 11) % len(processors)]],
                    at_ns=index * 3,
                )

        _run_pair(
            lattice32,
            lattice32_spam,
            submit,
            flits=256,
            expect_coalesced=True,
            expect_stagger=True,
        )

    def test_stagger_disabled_still_equivalent(self, lattice32, lattice32_spam):
        """With ``coalesce_stagger=False`` the same workload must fall back to
        synchronized-only coalescing — still bit-identical, never staggered."""
        processors = lattice32.processors()

        def submit(sim):
            for index in range(8):
                sim.submit_message(
                    processors[index],
                    [processors[(index + 11) % len(processors)]],
                    at_ns=index * 3,
                )

        fast_sim = _run_pair(
            lattice32, lattice32_spam, submit, flits=256, coalesce_stagger=False
        )
        assert fast_sim.coalesced_stagger_ticks == 0

    def _bubble_periodic_submit(self, processors):
        """A long unicast acquires channels that one branch of a following
        multicast needs; while the branch waits, the multicast's fork segment
        emits one bubble per period into its free branch — a bubble-periodic
        steady state lasting most of the unicast's drain."""

        def submit(sim):
            sim.submit_message(processors[1], [processors[10]], at_ns=0)
            sim.submit_message(
                processors[0],
                [p for p in processors[8:24] if p != processors[0]],
                at_ns=200,
            )

        return submit

    def test_bubble_periodic_blocked_branch(self, lattice32, lattice32_spam):
        processors = lattice32.processors()
        fast_sim = _run_pair(
            lattice32,
            lattice32_spam,
            self._bubble_periodic_submit(processors),
            flits=256,
            expect_coalesced=True,
            expect_bubbles=True,
        )
        assert fast_sim.stats.bubbles_created > 0

    def test_bubbles_disabled_still_equivalent(self, lattice32, lattice32_spam):
        processors = lattice32.processors()
        fast_sim = _run_pair(
            lattice32,
            lattice32_spam,
            self._bubble_periodic_submit(processors),
            flits=256,
            coalesce_bubbles=False,
        )
        assert fast_sim.coalesced_bubble_ticks == 0

    def test_bubble_counters_match_reference_exactly(self, lattice32, lattice32_spam):
        """Regression for the closed-form bubble replay: the total bubble
        count and every per-channel ``bubble_flits`` counter must equal the
        reference engine's, flit for flit."""
        processors = lattice32.processors()
        counters = []
        for fast in (True, False):
            config = SimulationConfig(
                message_length_flits=256,
                fast_path=fast,
                collect_channel_stats=True,
            )
            simulator = WormholeSimulator(lattice32, lattice32_spam, config)
            self._bubble_periodic_submit(processors)(simulator)
            stats = simulator.run()
            counters.append(
                (
                    stats.bubbles_created,
                    [(rec.cid, rec.bubble_flits) for rec in stats.channel_records],
                )
            )
        fast_counters, ref_counters = counters
        assert ref_counters[0] > 0
        assert fast_counters == ref_counters

    def test_bounded_windows_with_staggered_worms(self, lattice32, lattice32_spam):
        """``run_for`` windows that cut staggered batches short must still
        tile time exactly and stay bit-identical."""
        processors = lattice32.processors()

        def submit(sim):
            for index in range(6):
                sim.submit_message(
                    processors[index],
                    [processors[(index + 11) % len(processors)]],
                    at_ns=index * 7,
                )

        def run(sim):
            stats = sim.stats
            while sim.pending_messages:
                stats = sim.run_for(997)  # deliberately not a period multiple
            return stats

        _run_pair(
            lattice32,
            lattice32_spam,
            submit,
            flits=256,
            run=run,
            expect_coalesced=True,
            expect_stagger=True,
        )


class TestPartialRunClock:
    """Regression: bounded runs must land exactly on the window boundary."""

    def test_run_for_advances_clock_on_idle_simulator(self, two_switch, short_config):
        spam = SpamRouting.build(two_switch)
        simulator = WormholeSimulator(two_switch, spam, short_config)
        stats = simulator.run_for(500)
        assert simulator.now == 500
        assert stats.end_time_ns == 500
        simulator.run_for(250)
        assert simulator.now == 750

    def test_back_to_back_windows_tile_time(self, two_switch, short_config):
        spam = SpamRouting.build(two_switch)
        simulator = WormholeSimulator(two_switch, spam, short_config)
        source, dest = two_switch.processors()
        simulator.submit_message(source, [dest])
        window = 333  # deliberately not a multiple of any latency
        for index in range(1, 40):
            simulator.run_for(window)
            assert simulator.now == index * window
            if not simulator.pending_messages:
                break
        assert not simulator.pending_messages

    def test_bounded_run_boundary_with_pending_events(self, two_switch, short_config):
        """Stopping mid-startup leaves the clock at the boundary, not at the
        last popped event, and the remaining events still fire on resume."""
        spam = SpamRouting.build(two_switch)
        simulator = WormholeSimulator(two_switch, spam, short_config)
        source, dest = two_switch.processors()
        message = simulator.submit_message(source, [dest])
        boundary = short_config.startup_latency_ns // 2
        stats = simulator.run(until_ns=boundary)
        assert simulator.now == boundary
        assert stats.end_time_ns == boundary
        assert not message.is_complete
        simulator.run()
        assert message.is_complete

    def test_submissions_after_window_use_boundary_time(self, two_switch, short_config):
        spam = SpamRouting.build(two_switch)
        simulator = WormholeSimulator(two_switch, spam, short_config)
        simulator.run_for(1_000)
        source, dest = two_switch.processors()
        message = simulator.submit_message(source, [dest])
        assert message.created_ns == 1_000


class TestUtilisationAccounting:
    """Regression: links mid-transfer at a window boundary must report the
    open busy period up to the boundary."""

    def _injection_busy_ns(self, stats, simulator, processor):
        cid = simulator.network.injection_channel(processor).cid
        return next(rec.busy_ns for rec in stats.channel_records if rec.cid == cid)

    def test_open_busy_period_flushed_at_boundary(self):
        network = two_switch_network()
        spam = SpamRouting.build(network)
        config = SimulationConfig(
            message_length_flits=64, collect_channel_stats=True
        )
        source, dest = network.processors()
        # Timeline on the injection channel: the head crosses during
        # [10_000, 10_010], then stalls behind the routing decisions of the
        # two switches; once the pipeline opens, the body streams
        # continuously from 10_090 with wire slots [10_150, 10_160), etc.
        # A boundary inside a slot must flush the open busy period: busy
        # time is 10 + (boundary - 10_090), not the 70 ns of closed periods
        # the pre-fix accounting reported for every boundary in the slot.
        for boundary in (10_152, 10_155):
            simulator = WormholeSimulator(network, spam, config)
            simulator.submit_message(source, [dest])
            stats = simulator.run(until_ns=boundary)
            busy = self._injection_busy_ns(stats, simulator, source)
            assert busy == 10 + (boundary - 10_090)

    def test_flush_does_not_corrupt_resumed_accounting(self):
        network = two_switch_network()
        spam = SpamRouting.build(network)
        config = SimulationConfig(
            message_length_flits=64, collect_channel_stats=True
        )
        paused = WormholeSimulator(network, spam, config)
        source, dest = network.processors()
        paused.submit_message(source, [dest])
        paused.run(until_ns=10_015)
        final_paused = paused.run()

        straight = WormholeSimulator(network, spam, config)
        straight.submit_message(source, [dest])
        final_straight = straight.run()

        assert [
            (rec.cid, rec.data_flits, rec.busy_ns)
            for rec in final_paused.channel_records
        ] == [
            (rec.cid, rec.data_flits, rec.busy_ns)
            for rec in final_straight.channel_records
        ]

    def test_total_busy_not_undercounted_under_load(self, lattice32, lattice32_spam):
        config = SimulationConfig(
            message_length_flits=64, collect_channel_stats=True
        )
        simulator = WormholeSimulator(lattice32, lattice32_spam, config)
        simulator.submit_broadcast(lattice32.processors()[0])
        # Cut the run in the middle of the streaming phase.
        stats = simulator.run(until_ns=11_000)
        busy_links = [rec for rec in stats.channel_records if rec.busy_ns > 0]
        assert busy_links
        # A link that is mid-transfer reports time up to the boundary; no
        # record may exceed the elapsed window.
        assert all(rec.busy_ns <= 11_000 for rec in stats.channel_records)


class TestFastPathSafety:
    def test_deadlock_detection_unaffected_by_fast_path(self, ring8):
        """Deliberately broken routing must still deadlock identically with
        the fast path enabled (heads never coalesce)."""
        from repro.errors import DeadlockError
        from repro.routing.naive import NaiveMinimalRouting

        for fast in (True, False):
            naive = NaiveMinimalRouting(ring8)
            config = SimulationConfig(
                message_length_flits=64, deadlock_detection=True, fast_path=fast
            )
            simulator = WormholeSimulator(ring8, naive, config)
            processors = ring8.processors()
            count = len(processors)
            for index, source in enumerate(processors):
                simulator.submit_message(
                    source, [processors[(index + 2) % count]], at_ns=0
                )
            with pytest.raises(DeadlockError):
                simulator.run()

    def test_fast_path_off_is_pure_reference(self, lattice32, lattice32_spam):
        config = SimulationConfig(message_length_flits=128, fast_path=False)
        simulator = WormholeSimulator(lattice32, lattice32_spam, config)
        simulator.submit_broadcast(lattice32.processors()[0])
        simulator.run()
        assert simulator.coalesced_ticks == 0

    def test_larger_buffers_remain_equivalent(self, lattice32, lattice32_spam):
        """Deeper output buffers change the steady-state shape (more flits
        per buffer); the verifier must still track them exactly."""
        results = []
        for fast in (True, False):
            config = SimulationConfig(
                message_length_flits=128,
                output_buffer_depth=4,
                input_buffer_depth=2,
                fast_path=fast,
                trace=True,
            )
            simulator = WormholeSimulator(lattice32, lattice32_spam, config)
            message = simulator.submit_broadcast(lattice32.processors()[0])
            simulator.run()
            results.append(
                (
                    dict(message.delivered_ns),
                    simulator.trace.signature(),
                    simulator.stats.flit_hops,
                )
            )
        assert results[0] == results[1]


@pytest.mark.equivalence
class TestMultiPeriodCoalescing:
    """Multi-period (every-k-th-window) coalescing
    (``SimulationConfig.coalesce_multi_period``).

    On a homogeneous-latency network multi-period steady states cannot
    occur — deadlock-free wormhole routing keeps the buffer-dependency
    graph acyclic, so every moving link in a generic-free window fires
    every window — and the engine proves it at runtime: the k-histogram
    only ever records ``k == 1`` there.  A slow channel
    (``channel_latency_factors``) is the canonical bottleneck that makes
    its worm's whole region fire every k-th window; these scenarios
    engineer the every-2nd- and every-3rd-window patterns through a slow
    injection channel and assert both bit-identity and that the
    multi-period machinery actually engaged (via the k-histogram), so the
    equivalence claims are not vacuous.
    """

    def _slow_injection(self, network, processor, factor):
        return ((network.injection_channel(processor).cid, factor),)

    def test_every_2nd_window_pattern(self, lattice32, lattice32_spam):
        """A 2x-slow injection channel throttles the worm to one flit per
        two windows everywhere; the probe must verify the compound period
        2L and replay it, bit-identically."""
        processors = lattice32.processors()

        def submit(sim):
            sim.submit_message(processors[0], [processors[11]])

        fast_sim = _run_pair(
            lattice32, lattice32_spam, submit, flits=256, expect_coalesced=True,
            channel_latency_factors=self._slow_injection(lattice32, processors[0], 2),
        )
        assert fast_sim.coalesce_multi_period_batches > 0
        assert 2 in fast_sim.coalesce_k_histogram

    def test_every_3rd_window_pattern(self, lattice32, lattice32_spam):
        processors = lattice32.processors()

        def submit(sim):
            sim.submit_message(processors[0], [processors[11]])

        fast_sim = _run_pair(
            lattice32, lattice32_spam, submit, flits=256, expect_coalesced=True,
            channel_latency_factors=self._slow_injection(lattice32, processors[0], 3),
        )
        assert fast_sim.coalesce_multi_period_batches > 0
        assert 3 in fast_sim.coalesce_k_histogram

    def test_mixed_periods_in_one_run(self, lattice32, lattice32_spam):
        """Two worms behind different bottlenecks (2x and 3x injections)
        coalesce at their own compound periods within the same run."""
        processors = lattice32.processors()
        factors = self._slow_injection(lattice32, processors[0], 2) + self._slow_injection(
            lattice32, processors[1], 3
        )

        def submit(sim):
            sim.submit_message(processors[0], [processors[11]], at_ns=0)
            sim.submit_message(processors[1], [processors[14]], at_ns=0)

        fast_sim = _run_pair(
            lattice32, lattice32_spam, submit, flits=256, expect_coalesced=True,
            channel_latency_factors=factors,
        )
        assert 2 in fast_sim.coalesce_k_histogram
        assert 3 in fast_sim.coalesce_k_histogram

    def test_slow_channel_multicast(self, lattice32, lattice32_spam):
        """Replication forks and their bubbles behind a slow injection must
        verify and replay over the compound period too."""
        processors = lattice32.processors()

        def submit(sim):
            sim.submit_message(processors[0], processors[8:20])

        fast_sim = _run_pair(
            lattice32, lattice32_spam, submit, flits=256, expect_coalesced=True,
            channel_latency_factors=self._slow_injection(lattice32, processors[0], 2),
        )
        assert fast_sim.coalesce_multi_period_batches > 0

    def test_bounded_windows_with_slow_channel(self, lattice32, lattice32_spam):
        """``run_for`` windows that cut compound-period batches short must
        still tile time exactly and stay bit-identical."""
        processors = lattice32.processors()

        def submit(sim):
            sim.submit_message(processors[0], [processors[11]])

        def run(sim):
            stats = sim.stats
            while sim.pending_messages:
                stats = sim.run_for(997)  # deliberately not a period multiple
            return stats

        fast_sim = _run_pair(
            lattice32, lattice32_spam, submit, flits=256, run=run,
            expect_coalesced=True,
            channel_latency_factors=self._slow_injection(lattice32, processors[0], 2),
        )
        assert fast_sim.coalesce_multi_period_batches > 0

    def test_multi_period_disabled_still_equivalent(self, lattice32, lattice32_spam):
        """With ``coalesce_multi_period=False`` the slow-channel scenario
        must fall back to per-flit execution — still bit-identical, and
        never a compound-period batch."""
        processors = lattice32.processors()

        def submit(sim):
            sim.submit_message(processors[0], [processors[11]])

        fast_sim = _run_pair(
            lattice32, lattice32_spam, submit, flits=256,
            channel_latency_factors=self._slow_injection(lattice32, processors[0], 2),
            coalesce_multi_period=False,
        )
        assert fast_sim.coalesce_multi_period_batches == 0
        assert all(k == 1 for k in fast_sim.coalesce_k_histogram)

    def test_k_max_caps_the_probed_period(self, lattice32, lattice32_spam):
        """A 3x bottleneck needs k=3; with ``coalesce_k_max=2`` the probe
        must give up (bit-identically) rather than batch a period it was
        not allowed to try."""
        processors = lattice32.processors()

        fast_sim = _run_pair(
            lattice32,
            lattice32_spam,
            lambda sim: sim.submit_message(processors[0], [processors[11]]),
            flits=256,
            channel_latency_factors=self._slow_injection(lattice32, processors[0], 3),
            coalesce_k_max=2,
        )
        assert 3 not in fast_sim.coalesce_k_histogram
        assert fast_sim.coalesce_multi_period_batches == 0

    def test_k_max_one_matches_multi_period_off(self, lattice32, lattice32_spam):
        """``coalesce_k_max=1`` must collapse the probe to exactly the
        single-period engine (deterministic twin of the hypothesis property
        in ``tests/test_property_based.py``)."""
        processors = lattice32.processors()
        factors = self._slow_injection(lattice32, processors[0], 2)
        results = []
        for overrides in ({"coalesce_k_max": 1}, {"coalesce_multi_period": False}):
            config = SimulationConfig(
                message_length_flits=128, trace=True, collect_channel_stats=True,
                channel_latency_factors=factors, **overrides,
            )
            simulator = WormholeSimulator(lattice32, lattice32_spam, config)
            simulator.submit_message(processors[0], [processors[11]])
            stats = simulator.run()
            results.append(_fingerprint(simulator, stats))
            assert simulator.coalesce_multi_period_batches == 0
        assert results[0] == results[1]

    def test_homogeneous_network_records_only_k1(self, lattice32, lattice32_spam):
        """The k-histogram regression for paper-length mixed traffic: on a
        homogeneous-latency network the probe must never find (nor pay to
        look for) a compound period — deadlock-freedom makes the
        buffer-dependency graph acyclic, so k >= 2 patterns cannot exist."""
        workload = mixed_traffic_workload(
            lattice32,
            rate_per_us=0.03,
            multicast_destinations=8,
            num_messages=36,
            multicast_fraction=0.15,
            seed=23,
            arrival_process=NegativeBinomialArrivals(0.03),
        )
        config = SimulationConfig(message_length_flits=128)
        simulator = WormholeSimulator(lattice32, lattice32_spam, config)
        workload.submit_to(simulator)
        simulator.run()
        assert simulator.coalesced_ticks > 0
        assert set(simulator.coalesce_k_histogram) == {1}
        assert simulator.coalesce_multi_period_batches == 0
        # The histogram is consistent with the batch counter.
        assert (
            sum(simulator.coalesce_k_histogram.values()) == simulator.coalesce_batches
        )

    def test_reference_engine_records_nothing(self, lattice32, lattice32_spam):
        processors = lattice32.processors()
        config = SimulationConfig(
            message_length_flits=128,
            fast_path=False,
            channel_latency_factors=self._slow_injection(lattice32, processors[0], 2),
        )
        simulator = WormholeSimulator(lattice32, lattice32_spam, config)
        simulator.submit_message(processors[0], [processors[11]])
        simulator.run()
        assert simulator.coalesce_multi_period_batches == 0
        assert simulator.coalesce_k_histogram == {}
        assert simulator.coalesce_drain_bails == 0


@pytest.mark.equivalence
class TestDrainBails:
    """The cheap-scan drain bail (``coalesce_drain_bails``): windows that
    provably cannot verify at any period (a last-flit wire whose feeder is
    done, a blocked not-yet-active receiver) skip the doomed snapshot and
    take the verify-failure backoff instead."""

    def test_drain_bails_engage_on_churny_mixed_traffic(
        self, lattice32, lattice32_spam
    ):
        workload = mixed_traffic_workload(
            lattice32,
            rate_per_us=0.03,
            multicast_destinations=8,
            num_messages=36,
            multicast_fraction=0.15,
            seed=23,
            arrival_process=PoissonArrivals(0.03),
        )
        fast_sim = _run_pair(
            lattice32,
            lattice32_spam,
            workload.submit_to,
            flits=128,
            expect_coalesced=True,
        )
        assert fast_sim.coalesce_drain_bails > 0, (
            "no probe exited through the drain bail; the counter (and the "
            "churn-phase economiser) never engaged — test is vacuous"
        )

    def test_reference_engine_never_drain_bails(self, lattice32, lattice32_spam):
        config = SimulationConfig(message_length_flits=64, fast_path=False)
        simulator = WormholeSimulator(lattice32, lattice32_spam, config)
        simulator.submit_broadcast(lattice32.processors()[0])
        simulator.run()
        assert simulator.coalesce_drain_bails == 0


@pytest.mark.equivalence
class TestChurnPhaseBackoff:
    """Paper-length mixed traffic is churn-dominated: most paid fast-path
    snapshots fail the self-similarity check and take the exponential
    backoff (``_coalesce_backoff``).  The ROADMAP names this regime as the
    next engine bottleneck; these tests pin its contract *before* anyone
    attacks it — however the backoff paces its probes, traces and stats
    must stay bit-identical to the reference engine."""

    def _paper_length_workload(self, network, arrival_process):
        return mixed_traffic_workload(
            network,
            rate_per_us=0.03,
            multicast_destinations=8,
            num_messages=36,
            multicast_fraction=0.15,
            seed=23,
            arrival_process=arrival_process,
        )

    @pytest.mark.parametrize(
        "arrival_cls", [NegativeBinomialArrivals, PoissonArrivals]
    )
    def test_verify_failure_backoff_stays_bit_identical(
        self, lattice32, lattice32_spam, arrival_cls
    ):
        """A 128-flit (paper message length) mixed-traffic run must drive
        the verify-failure backoff — churn phases make paid snapshots fail
        — without changing a single observable: the backoff may only decide
        *when* to probe, never what a window replays to."""
        workload = self._paper_length_workload(lattice32, arrival_cls(0.03))
        fast_sim = _run_pair(
            lattice32,
            lattice32_spam,
            workload.submit_to,
            flits=128,
            expect_coalesced=True,
        )
        assert fast_sim.coalesce_verify_failures > 0, (
            "no paid snapshot failed verification; the churn regime (and "
            "the backoff under test) never engaged — test is vacuous"
        )
        # The backoff is a real economiser here, not a one-off: failures
        # recur across the run, so a regression in its bookkeeping would
        # have many chances to corrupt state.
        assert fast_sim.coalesce_snapshots > fast_sim.coalesce_batches

    def test_reference_engine_counts_no_verify_failures(
        self, lattice32, lattice32_spam
    ):
        workload = self._paper_length_workload(
            lattice32, NegativeBinomialArrivals(0.03)
        )
        config = SimulationConfig(message_length_flits=128, fast_path=False)
        simulator = WormholeSimulator(lattice32, lattice32_spam, config)
        workload.submit_to(simulator)
        simulator.run()
        assert simulator.coalesce_verify_failures == 0
        assert simulator.coalesce_snapshots == 0


@pytest.mark.equivalence
class TestGenericDeadlineBail:
    """The O(1) probe bail on the EventQueue-maintained earliest generic
    deadline (the churn-phase cheapener named in the ROADMAP)."""

    def test_bails_engage_on_churny_mixed_traffic(self, lattice32, lattice32_spam):
        """Paper-length mixed traffic is churn-dominated: submits, router
        decisions and acquisitions queue as generic events close to the
        streaming transfers, so most probes must exit through the O(1)
        generic-deadline bail — and the run must stay bit-identical."""
        workload = mixed_traffic_workload(
            lattice32,
            rate_per_us=0.03,
            multicast_destinations=8,
            num_messages=36,
            multicast_fraction=0.15,
            seed=23,
            arrival_process=NegativeBinomialArrivals(0.03),
        )
        fast_sim = _run_pair(
            lattice32,
            lattice32_spam,
            workload.submit_to,
            flits=64,
            expect_coalesced=True,
        )
        assert fast_sim.coalesce_generic_bails > 0, (
            "no probe exited through the O(1) generic-deadline bail; "
            "the counter (and the optimisation) never engaged"
        )

    def test_reference_engine_never_bails(self, lattice32, lattice32_spam):
        config = SimulationConfig(message_length_flits=32, fast_path=False)
        simulator = WormholeSimulator(lattice32, lattice32_spam, config)
        simulator.submit_broadcast(lattice32.processors()[0])
        simulator.run()
        assert simulator.coalesce_generic_bails == 0
