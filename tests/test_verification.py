"""Tests for the deadlock/livelock verification utilities (Theorems 1 and 2)."""

from __future__ import annotations

import pytest

from repro.core.spam import SpamRouting
from repro.routing.naive import NaiveMinimalRouting
from repro.routing.updown import UpDownRouting
from repro.topology.irregular import lattice_irregular_network, random_irregular_network
from repro.topology.regular import mesh_network, ring_network
from repro.verification.cdg import build_naive_cdg, build_spam_cdg, build_updown_cdg
from repro.verification.harness import run_workload, stress_test_deadlock_freedom
from repro.verification.reachability import (
    check_multicast_coverage,
    check_routing_function_totality,
    check_unicast_reachability,
)
from repro.traffic.workload import mixed_traffic_workload


class TestChannelDependencyGraphs:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_spam_cdg_acyclic_on_random_irregular(self, seed):
        network = random_irregular_network(10, extra_links=6, seed=seed)
        spam = SpamRouting.build(network)
        cdg = build_spam_cdg(spam)
        assert cdg.is_acyclic(), cdg.find_cycle()
        assert cdg.num_channels == network.num_channels
        assert cdg.num_dependencies > 0

    def test_spam_cdg_acyclic_on_lattice_and_mesh(self):
        for network in (lattice_irregular_network(24, seed=5), mesh_network(3, 4), ring_network(6)):
            spam = SpamRouting.build(network)
            assert build_spam_cdg(spam).is_acyclic()

    def test_updown_cdg_acyclic(self):
        network = random_irregular_network(10, extra_links=6, seed=7)
        updown = UpDownRouting.build(network)
        cdg = build_updown_cdg(updown)
        assert cdg.is_acyclic()

    def test_naive_cdg_cyclic_on_ring(self):
        ring = ring_network(6)
        naive = NaiveMinimalRouting(ring)
        cdg = build_naive_cdg(naive)
        assert not cdg.is_acyclic()
        cycle = cdg.find_cycle()
        assert cycle and len(cycle) >= 2

    def test_summary_shape(self):
        network = random_irregular_network(8, extra_links=3, seed=1)
        spam = SpamRouting.build(network)
        summary = build_spam_cdg(spam).summary()
        assert summary["acyclic"] is True
        assert summary["algorithm"] == "spam"

    def test_spam_cdg_has_no_down_to_up_dependency(self):
        """Structural invariant behind Theorem 1: no dependency ever leads
        from a down channel back to an up channel."""
        network = random_irregular_network(9, extra_links=5, seed=2)
        spam = SpamRouting.build(network)
        cdg = build_spam_cdg(spam)
        labeling = spam.labeling
        for src, dst in cdg.graph.edges():
            if not labeling.is_up(src):
                assert not labeling.is_up(dst)


class TestReachability:
    def test_unicast_reachability_exhaustive_small(self, small_irregular_spam):
        report = check_unicast_reachability(small_irregular_spam)
        assert report.ok, report.failures
        assert report.pairs_checked == 12 * 11
        assert report.max_route_length >= 2

    def test_unicast_reachability_sampled(self, lattice32_spam):
        report = check_unicast_reachability(lattice32_spam, sample_pairs=100)
        assert report.ok, report.failures
        assert report.pairs_checked <= 101

    def test_multicast_coverage(self, lattice32_spam, lattice32):
        processors = lattice32.processors()
        sets = [processors[1:5], processors[5:21], processors[1:]]
        report = check_multicast_coverage(lattice32_spam, sets, source=processors[0])
        assert report.ok, report.failures

    def test_routing_function_totality(self, small_irregular_spam):
        report = check_routing_function_totality(small_irregular_spam)
        assert report.ok, report.failures
        assert report.pairs_checked > 0

    def test_report_raise_if_failed(self):
        from repro.errors import VerificationError
        from repro.verification.reachability import ReachabilityReport

        report = ReachabilityReport()
        report.failures.append("boom")
        with pytest.raises(VerificationError):
            report.raise_if_failed()


class TestStressHarness:
    def test_spam_stress_delivers_everything(self, lattice32):
        spam = SpamRouting.build(lattice32)
        results = stress_test_deadlock_freedom(
            lattice32, spam, rounds=2, messages_per_round=30, rate_per_us=0.05, seed=3
        )
        assert all(result.all_delivered for result in results)
        assert all(not result.deadlocked for result in results)

    def test_updown_stress_delivers_everything(self, lattice32):
        updown = UpDownRouting.build(lattice32)
        results = stress_test_deadlock_freedom(
            lattice32, updown, rounds=1, messages_per_round=30, rate_per_us=0.05, seed=4
        )
        assert all(result.all_delivered for result in results)

    def test_naive_routing_deadlocks_on_ring(self, ring8):
        """A deterministic ring-shift pattern under naive minimal routing is
        the textbook circular-wait deadlock; ``run_workload`` must capture it
        (rather than hang or raise) so it can be asserted on."""
        from repro.simulator.config import SimulationConfig
        from repro.traffic.workload import MessageSpec, Workload

        naive = NaiveMinimalRouting(ring8)
        processors = ring8.processors()
        count = len(processors)
        specs = [
            MessageSpec(
                source=processors[index],
                destinations=(processors[(index + 2) % count],),
                at_ns=0,
            )
            for index in range(count)
        ]
        workload = Workload(name="ring-shift", specs=specs)
        result = run_workload(
            ring8, naive, workload, SimulationConfig(message_length_flits=64)
        )
        assert result.deadlocked
        assert not result.all_delivered
        assert result.deadlock_description

    def test_run_workload_reports_counts(self, lattice32, short_config):
        spam = SpamRouting.build(lattice32)
        workload = mixed_traffic_workload(lattice32, 0.02, 4, num_messages=25, seed=6)
        result = run_workload(lattice32, spam, workload, short_config)
        assert result.messages_submitted == 25
        assert result.messages_completed == 25
        assert result.all_delivered
        assert result.mean_latency_us > 10.0
