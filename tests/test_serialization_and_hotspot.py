"""Tests for topology serialisation and the static hot-spot analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.hotspot import analyze_multicast_load, root_traversal_probability
from repro.core.spam import SpamRouting
from repro.errors import TopologyError
from repro.topology.examples import figure1_network
from repro.topology.irregular import lattice_irregular_network
from repro.topology.serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


class TestSerialization:
    def test_round_trip_preserves_structure(self, lattice32):
        document = network_to_dict(lattice32)
        rebuilt = network_from_dict(document)
        assert rebuilt.num_switches == lattice32.num_switches
        assert rebuilt.num_processors == lattice32.num_processors
        assert sorted(rebuilt.iter_bidirectional_links()) == sorted(
            lattice32.iter_bidirectional_links()
        )
        for node in lattice32.nodes():
            assert rebuilt.label(node) == lattice32.label(node)
            assert rebuilt.kind(node) == lattice32.kind(node)

    def test_round_trip_preserves_routing_behaviour(self, figure1):
        rebuilt = network_from_dict(network_to_dict(figure1.network))
        original = SpamRouting.build(figure1.network, root=figure1.root)
        clone = SpamRouting.build(rebuilt, root=figure1.root)
        source = figure1.source
        dest = figure1.destinations[0]
        original_path = [(c.src, c.dst) for c in original.unicast_route(source, dest)]
        clone_path = [(c.src, c.dst) for c in clone.unicast_route(source, dest)]
        assert original_path == clone_path

    def test_save_and_load_file(self, tmp_path, small_irregular):
        path = save_network(small_irregular, tmp_path / "network.json")
        assert path.exists()
        loaded = load_network(path)
        assert loaded.num_switches == small_irregular.num_switches
        assert loaded.name == small_irregular.name

    def test_rejects_foreign_documents(self):
        with pytest.raises(TopologyError):
            network_from_dict({"format": "something-else"})
        with pytest.raises(TopologyError):
            network_from_dict({"format": "repro-network", "version": 99})

    def test_document_is_json_friendly(self, two_switch):
        import json

        document = network_to_dict(two_switch)
        encoded = json.dumps(document)
        assert json.loads(encoded) == document


class TestHotspotAnalysis:
    def test_figure1_broadcast_goes_through_lca_not_root(self):
        fixture = figure1_network()
        spam = SpamRouting.build(fixture.network, root=fixture.root)
        report = analyze_multicast_load(spam, [(fixture.source, fixture.destinations)])
        assert report.multicasts == 1
        # The LCA of {8,9,10,11} is node 4, not the root, so no root traversal.
        assert report.root_traversals == 0
        assert fixture.nodes[4] in dict(report.hottest_switches(10))

    def test_channel_load_counts_trees(self, lattice32_spam, lattice32):
        processors = lattice32.processors()
        multicasts = [
            (processors[0], processors[1:9]),
            (processors[3], processors[10:18]),
            (processors[20], processors[1:9]),
        ]
        report = analyze_multicast_load(lattice32_spam, multicasts)
        assert report.multicasts == 3
        assert max(report.channel_load.values()) <= 3
        assert report.load_imbalance() >= 1.0
        assert len(report.hottest_channels(3)) == 3

    def test_root_probability_grows_with_destination_count(self, lattice32_spam):
        small = root_traversal_probability(lattice32_spam, 2, samples=60, seed=1)
        large = root_traversal_probability(lattice32_spam, 24, samples=60, seed=1)
        assert 0.0 <= small <= 1.0
        assert large >= small
        # A near-broadcast almost always needs the root (paper §5's concern).
        assert large > 0.8

    def test_empty_report_defaults(self):
        from repro.analysis.hotspot import HotspotReport

        report = HotspotReport()
        assert report.root_traversal_fraction == 0.0
        assert report.load_imbalance() == 0.0
        assert report.hottest_channels() == []
