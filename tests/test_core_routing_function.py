"""Tests for the SPAM routing function: unicast rules (§3.1) and the
multicast distribution rule (§3.2)."""

from __future__ import annotations

import pytest

from repro.core.multicast import (
    build_multicast_plan,
    downtree_outputs,
    normalize_destinations,
)
from repro.core.phases import Phase
from repro.core.unicast import legal_next_channels, unicast_options
from repro.errors import RoutingError, WorkloadError
from repro.spanning.ancestry import Ancestry, node_mask
from repro.spanning.labeling import label_channels
from repro.spanning.tree import bfs_spanning_tree
from repro.topology.irregular import random_irregular_network


@pytest.fixture
def fig1_parts(figure1):
    tree = bfs_spanning_tree(figure1.network, figure1.root)
    labeling = label_channels(figure1.network, tree)
    ancestry = Ancestry(labeling)
    return figure1, labeling, ancestry


class TestUnicastRules:
    def test_rule1_up_channels_only_from_up_phase(self, fig1_parts):
        figure1, labeling, ancestry = fig1_parts
        nodes = figure1.nodes
        up_options = unicast_options(labeling, ancestry, nodes[2], Phase.UP, nodes[8])
        up_channels = {o.channel.dst for o in up_options if o.next_phase is Phase.UP}
        assert nodes[1] in up_channels
        # After a down cross channel, up channels are forbidden.
        dc_options = unicast_options(labeling, ancestry, nodes[2], Phase.DOWN_CROSS, nodes[8])
        assert all(o.next_phase is not Phase.UP for o in dc_options)

    def test_rule2_down_cross_requires_extended_ancestor(self, fig1_parts):
        figure1, labeling, ancestry = fig1_parts
        nodes = figure1.nodes
        # From node 2, the cross channel to 3 is allowed towards 8 because 3
        # is an extended ancestor of 8.
        options = unicast_options(labeling, ancestry, nodes[2], Phase.UP, nodes[8])
        assert any(
            o.channel.dst == nodes[3] and o.next_phase is Phase.DOWN_CROSS for o in options
        )
        # Towards processor 5 (attached to node 2's own subtree), node 3 is
        # NOT an extended ancestor, so the cross channel must not be offered.
        options_to_5 = unicast_options(labeling, ancestry, nodes[3], Phase.UP, nodes[5])
        assert all(o.channel.dst != nodes[4] or o.next_phase is Phase.UP for o in options_to_5)

    def test_rule2_forbidden_after_down_tree(self, fig1_parts):
        figure1, labeling, ancestry = fig1_parts
        nodes = figure1.nodes
        options = unicast_options(labeling, ancestry, nodes[3], Phase.DOWN_TREE, nodes[8])
        assert all(o.next_phase is Phase.DOWN_TREE for o in options)

    def test_rule3_down_tree_requires_ancestor(self, fig1_parts):
        figure1, labeling, ancestry = fig1_parts
        nodes = figure1.nodes
        # At node 4 the only useful down tree channel towards 11 is (4, 7).
        options = unicast_options(labeling, ancestry, nodes[4], Phase.DOWN_CROSS, nodes[11])
        tree_moves = [o for o in options if o.next_phase is Phase.DOWN_TREE]
        assert {o.channel.dst for o in tree_moves} == {nodes[7]}

    def test_rule3_available_in_all_phases(self, fig1_parts):
        figure1, labeling, ancestry = fig1_parts
        nodes = figure1.nodes
        for phase in (Phase.UP, Phase.DOWN_CROSS, Phase.DOWN_TREE):
            options = unicast_options(labeling, ancestry, nodes[6], phase, nodes[9])
            assert any(o.channel.dst == nodes[9] for o in options)

    def test_consumption_channel_is_final_hop(self, fig1_parts):
        figure1, labeling, ancestry = fig1_parts
        nodes = figure1.nodes
        options = unicast_options(labeling, ancestry, nodes[2], Phase.UP, nodes[5])
        assert any(o.channel.dst == nodes[5] and o.next_phase is Phase.DOWN_TREE for o in options)

    def test_legal_next_channels_raises_at_target(self, fig1_parts):
        figure1, labeling, ancestry = fig1_parts
        with pytest.raises(RoutingError):
            legal_next_channels(labeling, ancestry, figure1.nodes[4], Phase.UP, figure1.nodes[4])

    def test_never_stuck_in_up_phase(self):
        """On random topologies the routing function must always offer at
        least one channel from the UP phase (the worst-case fallback is
        climbing to the root and descending the tree)."""
        for seed in range(3):
            network = random_irregular_network(10, extra_links=5, seed=seed)
            tree = bfs_spanning_tree(network, network.switches()[0])
            labeling = label_channels(network, tree)
            ancestry = Ancestry(labeling)
            for switch in network.switches():
                for target in network.processors():
                    if target == switch:
                        continue
                    options = unicast_options(labeling, ancestry, switch, Phase.UP, target)
                    assert options, f"stuck at {switch} -> {target} (seed {seed})"


class TestMulticastRule:
    def test_normalize_destinations(self, figure1):
        net = figure1.network
        nodes = figure1.nodes
        result = normalize_destinations(net, nodes[5], [nodes[9], nodes[8], nodes[9]])
        assert result == tuple(sorted([nodes[8], nodes[9]]))
        with pytest.raises(WorkloadError):
            normalize_destinations(net, nodes[5], [])
        with pytest.raises(WorkloadError):
            normalize_destinations(net, nodes[5], [nodes[5]])
        with pytest.raises(WorkloadError):
            normalize_destinations(net, nodes[5], [nodes[4]])  # a switch

    def test_downtree_outputs_at_lca(self, fig1_parts):
        figure1, labeling, ancestry = fig1_parts
        nodes = figure1.nodes
        net = figure1.network
        dest_mask = node_mask(figure1.destinations)
        outputs = downtree_outputs(net, ancestry, nodes[4], dest_mask)
        assert {c.dst for c in outputs} == {nodes[6], nodes[7]}
        outputs6 = downtree_outputs(net, ancestry, nodes[6], dest_mask)
        assert {c.dst for c in outputs6} == {nodes[8], nodes[9], nodes[10]}
        outputs7 = downtree_outputs(net, ancestry, nodes[7], dest_mask)
        assert {c.dst for c in outputs7} == {nodes[11]}

    def test_plan_matches_paper_walkthrough(self, fig1_parts):
        figure1, labeling, ancestry = fig1_parts
        nodes = figure1.nodes
        plan = build_multicast_plan(
            figure1.network, ancestry, figure1.source, figure1.destinations
        )
        assert plan.lca == nodes[4]
        assert plan.split_switches == sorted([nodes[4], nodes[6]])
        assert set(plan.branch_outputs) == {nodes[4], nodes[6], nodes[7]}
        delivered = {c.dst for c in plan.branch_channels if figure1.network.is_processor(c.dst)}
        assert delivered == set(figure1.destinations)

    def test_single_destination_plan_is_unicast(self, fig1_parts):
        figure1, labeling, ancestry = fig1_parts
        plan = build_multicast_plan(
            figure1.network, ancestry, figure1.source, [figure1.destinations[0]]
        )
        assert plan.is_unicast
        assert plan.lca == figure1.destinations[0]
        assert plan.branch_channels == ()

    def test_plan_covers_destinations_on_random_networks(self):
        for seed in range(3):
            network = random_irregular_network(12, extra_links=6, seed=seed)
            tree = bfs_spanning_tree(network, network.switches()[0])
            ancestry = Ancestry(label_channels(network, tree))
            processors = network.processors()
            source = processors[0]
            destinations = processors[1:8]
            plan = build_multicast_plan(network, ancestry, source, destinations)
            delivered = {c.dst for c in plan.branch_channels if network.is_processor(c.dst)}
            assert delivered == set(destinations)
            # Every branch channel is a down tree channel (parent -> child).
            for channel in plan.branch_channels:
                assert tree.parent(channel.dst) == channel.src

    def test_plan_rejects_switch_source(self, fig1_parts):
        figure1, labeling, ancestry = fig1_parts
        with pytest.raises(WorkloadError):
            build_multicast_plan(
                figure1.network, ancestry, figure1.nodes[4], figure1.destinations
            )
