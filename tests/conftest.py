"""Shared fixtures for the test suite.

Fixtures are deliberately small (a handful of switches) so that the whole
suite — including the flit-level simulation tests — runs in seconds; the
larger paper-scale configurations are exercised by the benchmark harnesses
instead.
"""

from __future__ import annotations

import pytest

from repro.core.spam import SpamRouting
from repro.simulator.config import SimulationConfig
from repro.topology.examples import figure1_network, line_network, two_switch_network
from repro.topology.irregular import lattice_irregular_network, random_irregular_network
from repro.topology.regular import mesh_network, ring_network


@pytest.fixture
def figure1():
    """The paper's Figure 1 network fixture."""
    return figure1_network()


@pytest.fixture
def figure1_spam(figure1):
    """SPAM built on the Figure 1 network with the paper's root (vertex 1)."""
    return SpamRouting.build(figure1.network, root=figure1.root)


@pytest.fixture
def small_irregular():
    """A small random irregular network with chords (12 switches)."""
    return random_irregular_network(12, extra_links=6, seed=3)


@pytest.fixture
def small_irregular_spam(small_irregular):
    """SPAM on the small irregular network."""
    return SpamRouting.build(small_irregular)


@pytest.fixture
def lattice32():
    """A 32-switch paper-style lattice irregular network."""
    return lattice_irregular_network(32, seed=7)


@pytest.fixture
def lattice32_spam(lattice32):
    """SPAM on the 32-switch lattice network."""
    return SpamRouting.build(lattice32)


@pytest.fixture
def mesh3x3():
    """A 3x3 mesh (regular topology)."""
    return mesh_network(3, 3)


@pytest.fixture
def ring8():
    """An 8-switch ring (used by the deadlock-injection tests)."""
    return ring_network(8)


@pytest.fixture
def two_switch():
    """Two switches, one processor each."""
    return two_switch_network()


@pytest.fixture
def line5():
    """A line of five switches."""
    return line_network(5)


@pytest.fixture
def short_config():
    """A simulation configuration with short messages for fast tests."""
    return SimulationConfig(message_length_flits=8)
