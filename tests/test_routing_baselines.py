"""Tests for the baseline routing algorithms and the software multicast."""

from __future__ import annotations

import pytest

from repro.core.phases import Phase
from repro.core.spam import SpamRouting
from repro.errors import WorkloadError
from repro.routing.naive import NaiveMinimalRouting
from repro.routing.tables import build_unicast_table
from repro.routing.unicast_multicast import (
    UnicastMulticastScheduler,
    binomial_schedule,
    minimum_phases,
)
from repro.routing.updown import UpDownRouting
from repro.simulator.message import Message
from repro.topology.irregular import random_irregular_network


def make_message(source, destinations, mid=0):
    return Message(mid=mid, source=source, destinations=destinations, length_flits=8, created_ns=0)


class TestUpDownRouting:
    def test_routes_every_pair(self, lattice32):
        updown = UpDownRouting.build(lattice32)
        processors = lattice32.processors()
        for source in processors[:3]:
            for dest in processors[:10]:
                if dest == source:
                    continue
                path = updown.unicast_route(source, dest)
                assert path[0].src == source
                assert path[-1].dst == dest

    def test_no_up_after_down(self, lattice32):
        updown = UpDownRouting.build(lattice32)
        processors = lattice32.processors()
        for dest in processors[1:8]:
            path = updown.unicast_route(processors[0], dest)
            seen_down = False
            for channel in path:
                if updown.labeling.is_up(channel):
                    assert not seen_down, "up channel used after a down channel"
                else:
                    seen_down = True

    def test_down_reachability_matches_bfs(self, figure1):
        updown = UpDownRouting.build(figure1.network, root=figure1.root)
        nodes = figure1.nodes
        # From the root every node is reachable with down channels only.
        for node in figure1.network.nodes():
            assert updown.down_reachable(nodes[1], node)
        # From node 6 only its own subtree is reachable going down.
        assert updown.down_reachable(nodes[6], nodes[8])
        assert not updown.down_reachable(nodes[6], nodes[11])

    def test_rejects_multicast_messages(self, figure1):
        updown = UpDownRouting.build(figure1.network, root=figure1.root)
        message = make_message(figure1.source, tuple(figure1.destinations))
        with pytest.raises(NotImplementedError):
            updown.decide(message, figure1.nodes[2], None)

    def test_shares_tree_with_spam(self, lattice32):
        spam = SpamRouting.build(lattice32)
        updown = UpDownRouting(lattice32, spam.tree, spam.selection)
        assert updown.tree.root == spam.tree.root


class TestNaiveMinimalRouting:
    def test_paths_are_minimal(self, mesh3x3):
        naive = NaiveMinimalRouting(mesh3x3)
        processors = mesh3x3.processors()
        source, dest = processors[0], processors[-1]
        path = naive.greedy_unicast_path(make_message(source, (dest,)),
                                         mesh3x3.switch_of(source))
        # Mesh corner to corner: 4 switch hops + consumption channel.
        assert len(path) == 5

    def test_decision_offers_only_closer_channels(self, ring8):
        naive = NaiveMinimalRouting(ring8)
        processors = ring8.processors()
        message = make_message(processors[0], (processors[3],))
        decision = naive.decide(message, ring8.switch_of(processors[0]), None)
        dist = naive._distances(processors[3])
        here = dist[ring8.switch_of(processors[0])]
        assert all(dist[c.dst] < here for c in decision.channels)


class TestSoftwareMulticast:
    def test_minimum_phases(self):
        assert minimum_phases(0) == 0
        assert minimum_phases(1) == 1
        assert minimum_phases(2) == 2
        assert minimum_phases(3) == 2
        assert minimum_phases(7) == 3
        assert minimum_phases(8) == 4
        assert minimum_phases(255) == 8
        with pytest.raises(WorkloadError):
            minimum_phases(-1)

    def test_binomial_schedule_reaches_all_and_doubles(self):
        steps = binomial_schedule(100, list(range(15)))
        recipients = [s.recipient for s in steps]
        assert sorted(recipients) == list(range(15))
        assert max(s.phase for s in steps) + 1 == minimum_phases(15)
        # In phase p at most 2**p sends occur.
        from collections import Counter

        per_phase = Counter(s.phase for s in steps)
        for phase, count in per_phase.items():
            assert count <= 2**phase

    def test_binomial_schedule_senders_hold_message(self):
        steps = binomial_schedule(0, [1, 2, 3, 4, 5])
        informed = {0}
        for step in sorted(steps, key=lambda s: (s.phase, s.recipient)):
            assert step.sender in informed
            informed.add(step.recipient)

    def test_schedule_rejects_bad_input(self):
        with pytest.raises(WorkloadError):
            binomial_schedule(1, [1, 2])
        with pytest.raises(WorkloadError):
            binomial_schedule(0, [1, 1])

    def test_scheduler_drives_forwarding(self):
        scheduler = UnicastMulticastScheduler(source=0, destinations=(1, 2, 3, 4, 5, 6, 7))
        assert scheduler.num_phases == 3
        first = scheduler.initial_sends()
        assert all(step.sender == 0 for step in first)
        # Deliver to the first recipient; it must forward to someone new.
        forwarded = scheduler.on_delivery(first[0].recipient)
        assert all(step.sender == first[0].recipient for step in forwarded)
        # Duplicate deliveries are ignored.
        assert scheduler.on_delivery(first[0].recipient) == []
        with pytest.raises(WorkloadError):
            scheduler.on_delivery(99)
        assert not scheduler.finished
        for dest in (1, 2, 3, 4, 5, 6, 7):
            scheduler.on_delivery(dest)
        assert scheduler.finished


class TestRoutingTables:
    def test_table_matches_on_the_fly_routing(self, figure1, figure1_spam):
        table = build_unicast_table(figure1_spam)
        nodes = figure1.nodes
        entry = table.lookup(nodes[2], Phase.UP, nodes[8])
        live = figure1_spam.allowed_options(nodes[2], Phase.UP, nodes[8])
        assert set(entry.channel_ids) == {o.channel.cid for o in live}

    def test_table_size_and_fanout(self, figure1, figure1_spam):
        table = build_unicast_table(figure1_spam)
        assert table.size > 0
        assert table.max_fanout() >= 1
        # Entries exist towards switch targets too (multicast LCAs).
        assert table.channels_for(figure1.nodes[2], Phase.UP, figure1.nodes[4])

    def test_restricted_targets(self, figure1, figure1_spam):
        table = build_unicast_table(figure1_spam, targets=[figure1.nodes[8]])
        assert all(key[2] == figure1.nodes[8] for key in table.entries)
