"""Unit tests for the simulator's building blocks (flits, buffers, OCRQs,
event queue, configuration, messages)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError, WorkloadError
from repro.simulator.buffers import FlitBuffer
from repro.simulator.config import PAPER_CONFIG, SimulationConfig
from repro.simulator.events import EventQueue
from repro.simulator.flit import Flit, FlitKind, make_worm_flits
from repro.simulator.message import Message, MessageKind
from repro.simulator.ocrq import OutputChannelRequestQueue


class TestFlit:
    def test_kinds(self):
        head = Flit(FlitKind.HEAD, 1, 0)
        tail = Flit(FlitKind.TAIL, 1, 7)
        bubble = Flit(FlitKind.BUBBLE, 1, 3)
        assert head.is_head and head.is_data
        assert tail.is_tail and tail.is_data
        assert bubble.is_bubble and not bubble.is_data

    def test_make_worm_flits(self):
        flits = make_worm_flits(5, 6)
        assert len(flits) == 6
        assert flits[0].is_head
        assert flits[-1].is_tail
        assert all(f.kind is FlitKind.BODY for f in flits[1:-1])
        assert [f.seq for f in flits] == list(range(6))
        assert all(f.message_id == 5 for f in flits)


class TestFlitBuffer:
    def test_fifo_order(self):
        buffer = FlitBuffer(3)
        flits = make_worm_flits(0, 3)
        for flit in flits:
            buffer.push(flit)
        assert buffer.is_full
        assert [buffer.pop().seq for _ in range(3)] == [0, 1, 2]
        assert buffer.is_empty

    def test_capacity_enforced(self):
        buffer = FlitBuffer(1)
        buffer.push(Flit(FlitKind.HEAD, 0, 0))
        with pytest.raises(SimulationError):
            buffer.push(Flit(FlitKind.BODY, 0, 1))

    def test_pop_and_peek_empty_raise(self):
        buffer = FlitBuffer(1)
        with pytest.raises(SimulationError):
            buffer.pop()
        with pytest.raises(SimulationError):
            buffer.peek()

    def test_occupancy_accounting(self):
        buffer = FlitBuffer(2)
        assert buffer.free_slots == 2
        buffer.push(Flit(FlitKind.HEAD, 0, 0))
        assert buffer.occupancy == 1
        assert buffer.free_slots == 1
        assert len(buffer) == 1
        assert buffer.flits()[0].is_head

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            FlitBuffer(0)


class _FakeSegment:
    def __init__(self, mid):
        self.message = type("M", (), {"mid": mid})()

    def try_acquire(self):  # pragma: no cover - not exercised here
        pass


class TestOcrq:
    def test_fifo_and_head(self):
        ocrq = OutputChannelRequestQueue()
        a, b = _FakeSegment(1), _FakeSegment(2)
        assert ocrq.is_empty and ocrq.head() is None
        ocrq.enqueue(a)
        ocrq.enqueue(b)
        assert ocrq.head() is a
        assert ocrq.waiting_message_ids() == (1, 2)
        ocrq.pop_head(a)
        assert ocrq.head() is b

    def test_duplicate_enqueue_rejected(self):
        ocrq = OutputChannelRequestQueue()
        a = _FakeSegment(1)
        ocrq.enqueue(a)
        with pytest.raises(SimulationError):
            ocrq.enqueue(a)

    def test_pop_requires_head(self):
        ocrq = OutputChannelRequestQueue()
        a, b = _FakeSegment(1), _FakeSegment(2)
        ocrq.enqueue(a)
        ocrq.enqueue(b)
        with pytest.raises(SimulationError):
            ocrq.pop_head(b)

    def test_remove(self):
        ocrq = OutputChannelRequestQueue()
        a, b = _FakeSegment(1), _FakeSegment(2)
        ocrq.enqueue(a)
        ocrq.enqueue(b)
        ocrq.remove(b)
        assert len(ocrq) == 1
        with pytest.raises(SimulationError):
            ocrq.remove(b)


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule(30, lambda: seen.append("c"))
        queue.schedule(10, lambda: seen.append("a"))
        queue.schedule(20, lambda: seen.append("b"))
        while not queue.is_empty:
            _, callback = queue.pop()
            callback()
        assert seen == ["a", "b", "c"]
        assert queue.now == 30

    def test_same_time_fifo(self):
        queue = EventQueue()
        seen = []
        for index in range(5):
            queue.schedule(7, lambda i=index: seen.append(i))
        while not queue.is_empty:
            queue.pop()[1]()
        assert seen == [0, 1, 2, 3, 4]

    def test_scheduling_in_the_past_rejected(self):
        queue = EventQueue()
        queue.schedule(10, lambda: None)
        queue.pop()
        with pytest.raises(SimulationError):
            queue.schedule(5, lambda: None)

    def test_schedule_after_and_next_time(self):
        queue = EventQueue(start_ns=100)
        queue.schedule_after(50, lambda: None)
        assert queue.next_time() == 150
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()


class TestEventQueueTransferEntries:
    """The tagged transfer entries backing the engine's fast path."""

    def test_transfer_entries_are_counted(self):
        queue = EventQueue()
        marker = object()
        queue.schedule(5, lambda: None)
        assert queue.transfer_pending == 0
        queue.schedule_transfer(10, marker)
        assert queue.transfer_pending == 1
        time_ns, _seq, kind, payload = queue.pop_entry()
        assert (time_ns, kind) == (5, 0)
        assert queue.transfer_pending == 1
        time_ns, _seq, kind, payload = queue.pop_entry()
        assert (time_ns, kind) == (10, 1)
        assert payload is marker
        assert queue.transfer_pending == 0

    def test_pop_refuses_transfer_entries_without_consuming(self):
        queue = EventQueue()
        queue.schedule_transfer(10, object())
        with pytest.raises(SimulationError):
            queue.pop()
        # The refusal must not have popped the entry or advanced the clock.
        assert len(queue) == 1
        assert queue.transfer_pending == 1
        assert queue.now == 0

    def test_advance_to_moves_to_boundary_only(self):
        queue = EventQueue()
        queue.advance_to(100)
        assert queue.now == 100
        queue.advance_to(50)  # never backwards
        assert queue.now == 100
        queue.schedule(150, lambda: None)
        queue.advance_to(150)
        assert queue.now == 150
        queue.schedule(180, lambda: None)
        with pytest.raises(SimulationError):
            queue.advance_to(200)  # never past a pending event

    def test_shift_preserves_congruence_classes_and_order(self):
        """The phase-staggered batch advance: every transfer deadline moves
        by the same delta, so staggered deadlines keep their spacing (and
        congruence class modulo the period) and their relative order."""
        queue = EventQueue()
        early, late_first, late_second = object(), object(), object()
        queue.schedule_transfer(13, early)
        queue.schedule_transfer(17, late_first)
        queue.schedule_transfer(17, late_second)
        queue.shift_transfers(16, 50)
        assert queue.now == 16
        entries = [queue.pop_entry() for _ in range(3)]
        assert [entry[0] for entry in entries] == [63, 67, 67]
        assert entries[0][3] is early
        assert entries[1][3] is late_first and entries[2][3] is late_second

    def test_shift_keeps_generic_priority_on_ties(self):
        queue = EventQueue()
        transfer = object()
        queue.schedule(40, lambda: None)
        queue.schedule_transfer(10, transfer)
        queue.shift_transfers(10, 30)
        # The transfer lands on the generic event's timestamp; the generic
        # (scheduled before the batch began) must still fire first.
        entries = [queue.pop_entry() for _ in range(2)]
        assert [entry[0] for entry in entries] == [40, 40]
        assert [entry[2] for entry in entries] == [0, 1]
        assert entries[1][3] is transfer

    def test_shift_rejects_moving_backwards(self):
        queue = EventQueue()
        queue.schedule_transfer(10, object())
        queue.pop_entry()
        with pytest.raises(SimulationError):
            queue.shift_transfers(5, 10)
        with pytest.raises(SimulationError):
            queue.shift_transfers(15, -1)

    def test_shift_refuses_to_overtake_generic_events(self):
        queue = EventQueue()
        queue.schedule(20, lambda: None)
        queue.schedule_transfer(10, object())
        with pytest.raises(SimulationError):
            queue.shift_transfers(25, 30)

    def test_next_generic_time_tracks_generic_entries_only(self):
        queue = EventQueue()
        assert queue.next_generic_time() is None
        queue.schedule_transfer(5, object())
        assert queue.next_generic_time() is None  # transfers don't count
        queue.schedule(30, lambda: None)
        queue.schedule(10, lambda: None)
        assert queue.next_generic_time() == 10
        queue.pop_entry()  # transfer at 5
        assert queue.next_generic_time() == 10
        queue.pop_entry()  # generic at 10
        assert queue.next_generic_time() == 30
        queue.pop_entry()  # generic at 30
        assert queue.next_generic_time() is None

    def test_next_generic_time_survives_transfer_shift(self):
        queue = EventQueue()
        queue.schedule(100, lambda: None)
        queue.schedule_transfer(10, object())
        queue.shift_transfers(10, 40)
        # The shift retimes transfers only; the generic deadline is exact.
        assert queue.next_generic_time() == 100

    def test_next_generic_time_handles_equal_deadlines(self):
        queue = EventQueue()
        for _ in range(3):
            queue.schedule(50, lambda: None)
        queue.pop_entry()
        queue.pop_entry()
        assert queue.next_generic_time() == 50
        queue.pop_entry()
        assert queue.next_generic_time() is None


class TestSimulationConfig:
    def test_paper_defaults(self):
        assert PAPER_CONFIG.startup_latency_ns == 10_000
        assert PAPER_CONFIG.router_setup_ns == 40
        assert PAPER_CONFIG.channel_latency_ns == 10
        assert PAPER_CONFIG.message_length_flits == 128
        assert PAPER_CONFIG.input_buffer_depth == 1
        assert PAPER_CONFIG.serialization_latency_ns == 1280

    def test_with_overrides(self):
        config = PAPER_CONFIG.with_overrides(message_length_flits=16, trace=True)
        assert config.message_length_flits == 16
        assert config.trace
        assert PAPER_CONFIG.message_length_flits == 128  # original untouched

    def test_multi_period_defaults(self):
        assert PAPER_CONFIG.coalesce_multi_period
        assert PAPER_CONFIG.coalesce_k_max == 3
        assert PAPER_CONFIG.channel_latency_factors == ()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"startup_latency_ns": -1},
            {"channel_latency_ns": 0},
            {"message_length_flits": 1},
            {"input_buffer_depth": 0},
            {"max_hops": 1},
            {"router_setup_ns": -5},
            {"coalesce_k_max": 0},
            {"channel_latency_factors": ((0, 0),)},
            {"channel_latency_factors": ((-1, 2),)},
            {"channel_latency_factors": ((0, 2, 3),)},
            {"channel_latency_factors": (0, 2)},
            {"channel_latency_factors": ((0, 2.5),)},
            {"channel_latency_factors": ((0, 2), (0, 3))},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**kwargs)


class TestMessage:
    def test_kind_and_normalisation(self):
        message = Message(0, source=9, destinations=[3, 1, 3], length_flits=4, created_ns=5)
        assert message.destinations == (1, 3)
        assert message.kind is MessageKind.MULTICAST
        assert message.num_destinations == 2
        unicast = Message(1, source=9, destinations=[2], length_flits=4, created_ns=0)
        assert unicast.kind is MessageKind.UNICAST

    def test_invalid_messages_rejected(self):
        with pytest.raises(WorkloadError):
            Message(0, source=1, destinations=[], length_flits=4, created_ns=0)
        with pytest.raises(WorkloadError):
            Message(0, source=1, destinations=[1], length_flits=4, created_ns=0)
        with pytest.raises(WorkloadError):
            Message(0, source=1, destinations=[2], length_flits=1, created_ns=0)

    def test_delivery_and_latency_accounting(self):
        message = Message(0, source=0, destinations=[1, 2], length_flits=4, created_ns=100)
        message.startup_began_ns = 150
        assert message.record_delivery(1, 500) is False
        assert message.record_delivery(2, 900) is True
        assert message.is_complete
        assert message.completed_ns == 900
        assert message.latency_from_creation_ns == 800
        assert message.latency_from_startup_ns == 750
        # Duplicate delivery does not change the completion time.
        message.record_delivery(1, 1000)
        assert message.completed_ns == 900

    def test_delivery_to_wrong_destination_rejected(self):
        message = Message(0, source=0, destinations=[1], length_flits=4, created_ns=0)
        with pytest.raises(WorkloadError):
            message.record_delivery(7, 10)

    def test_latencies_none_before_completion(self):
        message = Message(0, source=0, destinations=[1], length_flits=4, created_ns=0)
        assert message.latency_from_creation_ns is None
        assert message.latency_from_startup_ns is None


class TestStatsZeroTimestamps:
    def test_record_message_completing_at_t0(self):
        """A message created, started and completed at t=0 records an
        all-zero timeline — 0 is a real timestamp, not "unset"."""
        from repro.simulator.stats import SimulationStats

        message = Message(0, source=0, destinations=[1], length_flits=4, created_ns=0)
        message.startup_began_ns = 0
        assert message.record_delivery(1, 0) is True
        record = SimulationStats().record_message(message)
        assert record.startup_began_ns == 0
        assert record.completed_ns == 0
        assert record.latency_from_creation_ns == 0
        assert record.latency_from_startup_ns == 0

    def test_record_message_never_rewrites_a_zero_startup(self):
        """Regression: the falsy-`or` fallback rewrote ``startup_began_ns=0``
        to ``created_ns`` — a recorded timestamp must be reported verbatim;
        only ``None`` means "unset" and falls back."""
        from repro.simulator.stats import SimulationStats

        message = Message(0, source=0, destinations=[1], length_flits=4, created_ns=4)
        message.startup_began_ns = 0
        message.record_delivery(1, 8)
        record = SimulationStats().record_message(message)
        assert record.startup_began_ns == 0  # the old code reported 4 here
        assert record.latency_from_startup_ns == 8

    def test_record_message_falls_back_only_on_none(self):
        from repro.simulator.stats import SimulationStats

        message = Message(0, source=0, destinations=[1], length_flits=4, created_ns=4)
        message.record_delivery(1, 10)  # startup_began_ns stays None
        record = SimulationStats().record_message(message)
        assert record.startup_began_ns == 4  # created_ns fallback
        assert record.completed_ns == 10
