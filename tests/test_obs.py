"""Tests for ``repro.obs``: the recorder, the exporters, and the firewall's
dynamic half — telemetry on vs off must be observably bit-identical.

The static half of the observables firewall (nothing from ``repro.obs``
flows into fingerprinted results) is enforced by repro-lint rule R9 and
tested in ``tests/test_repro_lint.py``.  This module tests the dynamic
contract the sanction rests on:

* recording telemetry never changes any observable — every equivalence
  regime (single-process fast path, region-parallel at 2/4 regions with
  and without a real process pool, sweep evaluation) fingerprints
  identically with ``config.telemetry`` on and off;
* the disabled path really is the no-op singleton (zero per-event cost);
* the exporters are deterministic given an injected clock, produce
  schema-valid snapshots and loadable Chrome traces, and the summary
  tables ``repro-spam obs summarize`` prints add up.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    chrome_trace_events,
    summarize_snapshot,
    validate_chrome_trace,
    validate_snapshot,
    write_chrome_trace,
    write_snapshot,
)
from repro.obs.export import snapshot_dict
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import WormholeSimulator
from repro.simulator.regions import run_region_parallel, simulator_fingerprint
from repro.sweeps import run_sweep
from repro.sweeps.spec import SweepPointSpec
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.workload import (
    MessageSpec,
    Workload,
    mixed_traffic_workload,
    single_multicast_workload,
)


class _FakeClock:
    """Deterministic monotonic clock for golden-file exporter tests."""

    def __init__(self, step_ns: int = 100):
        self.now_ns = 0
        self.step_ns = step_ns

    def __call__(self) -> int:
        self.now_ns += self.step_ns
        return self.now_ns


# ----------------------------------------------------------------------
# The recorder
# ----------------------------------------------------------------------
class TestTelemetryRecorder:
    def test_span_context_manager_records_duration(self):
        tel = Telemetry(clock=_FakeClock(step_ns=50))
        with tel.span("work", shard=3):
            pass
        (span,) = tel.spans
        assert span["name"] == "work"
        assert span["track"] == "main"
        assert span["start_ns"] == 50
        assert span["dur_ns"] == 50
        assert span["attrs"] == {"shard": 3}

    def test_begin_end_nest_and_annotate(self):
        tel = Telemetry(clock=_FakeClock())
        tel.begin("outer")
        tel.begin("inner")
        tel.annotate(detail=7)
        tel.end()
        tel.end(clean=True)
        names = [span["name"] for span in tel.spans]
        assert names == ["inner", "outer"]  # innermost closes first
        inner, outer = tel.spans
        assert inner["attrs"] == {"detail": 7}
        assert outer["attrs"] == {"clean": True}
        assert outer["start_ns"] < inner["start_ns"]
        assert outer["start_ns"] + outer["dur_ns"] > inner["start_ns"] + inner["dur_ns"]

    def test_span_at_clamps_negative_durations(self):
        tel = Telemetry(clock=_FakeClock())
        tel.span_at("backwards", 100, 40)
        assert tel.spans[0]["dur_ns"] == 0

    def test_counters_gauges_and_value_distributions(self):
        tel = Telemetry(clock=_FakeClock())
        tel.counter("hits")
        tel.counter("hits", 4)
        tel.gauge("depth", 2.0)
        tel.gauge("depth", 5.0)
        for observation in (30.0, 10.0, 20.0):
            tel.value("probe_ns", observation)
        assert tel.counters == {"hits": 5}
        assert tel.gauges == {"depth": 5.0}  # last write wins
        assert tel.values == {
            "probe_ns": {"count": 3, "total": 60.0, "min": 10.0, "max": 30.0}
        }

    def test_span_list_is_bounded(self):
        tel = Telemetry(clock=_FakeClock(), max_spans=2)
        for index in range(5):
            tel.span_at("s", index, index + 1)
        assert len(tel.spans) == 2
        assert tel.spans_dropped == 3

    def test_aggregation_helpers(self):
        tel = Telemetry(clock=_FakeClock())
        tel.span_at("a", 0, 10)
        tel.span_at("b", 10, 30)
        tel.span_at("a", 30, 35)
        assert tel.span_total_ns("a") == 15
        assert tel.span_count("a") == 2
        assert [span["dur_ns"] for span in tel.iter_spans("a")] == [10, 5]

    def test_payload_roundtrip_and_child_merge(self):
        child = Telemetry(track="worker", clock=_FakeClock())
        child.span_at("evaluate", 0, 100)
        child.counter("points", 3)
        child.gauge("chunk", 1.0)
        child.value("evaluate_ns", 100.0)
        payload = child.to_payload()
        # The payload must survive JSON (the pickling boundary is at least
        # this strict).
        payload = json.loads(json.dumps(payload))

        parent = Telemetry(track="main", clock=_FakeClock())
        parent.counter("points", 1)
        parent.merge_child(payload, track="chunk0")
        (span,) = parent.spans
        assert span["track"] == "chunk0"  # re-labelled on the way in
        assert parent.counters == {"points": 1, "chunk0/points": 3}
        assert parent.gauges == {"chunk0/chunk": 1.0}
        assert parent.values["chunk0/evaluate_ns"]["count"] == 1

    def test_merge_child_folds_distributions_and_dropped_counts(self):
        parent = Telemetry(clock=_FakeClock())
        parent.merge_child(
            {
                "values": {"d": {"count": 2, "total": 30.0, "min": 10.0, "max": 20.0}},
                "spans_dropped": 4,
            },
            track="w",
        )
        parent.merge_child(
            {"values": {"d": {"count": 1, "total": 5.0, "min": 5.0, "max": 5.0}}},
            track="w",
        )
        assert parent.values["w/d"] == {
            "count": 3,
            "total": 35.0,
            "min": 5.0,
            "max": 20.0,
        }
        assert parent.spans_dropped == 4

    def test_merge_child_respects_span_bound(self):
        parent = Telemetry(clock=_FakeClock(), max_spans=1)
        payload = {
            "spans": [
                {"name": "a", "track": "w", "start_ns": 0, "dur_ns": 1, "attrs": {}},
                {"name": "b", "track": "w", "start_ns": 1, "dur_ns": 1, "attrs": {}},
            ]
        }
        parent.merge_child(payload, track="w")
        assert len(parent.spans) == 1
        assert parent.spans_dropped == 1


class TestNullTelemetry:
    def test_module_singleton_is_disabled(self):
        assert isinstance(NULL_TELEMETRY, NullTelemetry)
        assert NULL_TELEMETRY.enabled is False
        assert Telemetry().enabled is True

    def test_every_recording_method_is_stateless(self):
        tel = NULL_TELEMETRY
        tel.begin("x")
        tel.end()
        tel.span_at("x", 0, 10)
        tel.counter("c")
        tel.gauge("g", 1.0)
        tel.value("v", 1.0)
        tel.annotate(a=1)
        tel.merge_child({"spans": [], "counters": {"c": 1}}, track="w")
        assert tel.spans == ()
        assert tel.counters == {}
        assert tel.span_total_ns("x") == 0
        assert tel.span_count("x") == 0
        assert list(tel.iter_spans("x")) == []
        assert tel.to_payload()["spans"] == []

    def test_span_hands_back_one_shared_context_manager(self):
        # The no-op overhead contract: a disabled ``with telemetry.span()``
        # allocates nothing — every call returns the same inert object.
        first = NULL_TELEMETRY.span("a", attr=1)
        second = NULL_TELEMETRY.span("b")
        assert first is second
        with first:
            pass

    def test_disabled_engine_holds_the_singleton_and_raw_probe(self):
        # Telemetry off must select the shared no-op recorder and leave the
        # fast path's probe entry un-instrumented (zero per-event overhead).
        from repro.topology.examples import two_switch_network

        net = two_switch_network()
        from repro.core.spam import SpamRouting

        simulator = WormholeSimulator(net, SpamRouting.build(net), SimulationConfig())
        assert simulator.telemetry is NULL_TELEMETRY
        assert simulator._obs_clock is None


# ----------------------------------------------------------------------
# Telemetry on vs off: bit-identical observables (the dynamic firewall)
# ----------------------------------------------------------------------
def _engine_fingerprint(network, routing, workload, config, telemetry=None, until_ns=None):
    simulator = WormholeSimulator(network, routing, config, telemetry=telemetry)
    workload.submit_to(simulator)
    stats = simulator.run(until_ns=until_ns)
    return simulator_fingerprint(simulator, stats), simulator


def _scenario_workloads(lattice32):
    """The equivalence regimes, as (name, workload, flits, overrides)."""
    processors = lattice32.processors()
    broadcast = Workload("broadcast")
    broadcast.specs.append(MessageSpec(processors[0], tuple(processors[1:]), 0))
    contended = Workload("contended")
    for index in range(4):
        contended.specs.append(
            MessageSpec(processors[index], tuple(processors[8:16]), index * 30)
        )
    slow = single_multicast_workload(lattice32, num_destinations=6, samples=2, seed=5)
    slow_cid = lattice32.injection_channel(processors[0]).cid
    return [
        ("broadcast", broadcast, 64, {}),
        ("contended_multicasts", contended, 32, {}),
        (
            "mixed_poisson_128f",
            mixed_traffic_workload(
                lattice32,
                rate_per_us=0.02,
                multicast_destinations=8,
                num_messages=40,
                seed=11,
                arrival_process=PoissonArrivals(0.02),
            ),
            128,
            {},
        ),
        (
            "mixed_negative_binomial_128f",
            mixed_traffic_workload(
                lattice32, rate_per_us=0.02, multicast_destinations=8,
                num_messages=40, seed=11,
            ),
            128,
            {},
        ),
        (
            "slow_channel_multi_period",
            slow,
            96,
            {"channel_latency_factors": ((slow_cid, 2),)},
        ),
    ]


@pytest.mark.equivalence
class TestTelemetryOnOffEquivalence:
    """``config.telemetry`` may never change a fingerprint, anywhere."""

    def test_engine_scenarios_bit_identical(self, lattice32, lattice32_spam):
        for name, workload, flits, overrides in _scenario_workloads(lattice32):
            base = SimulationConfig(
                message_length_flits=flits,
                trace=True,
                collect_channel_stats=True,
                **overrides,
            )
            off, _ = _engine_fingerprint(lattice32, lattice32_spam, workload, base)
            on, simulator = _engine_fingerprint(
                lattice32,
                lattice32_spam,
                workload,
                base.with_overrides(telemetry=True),
            )
            assert on == off, f"telemetry changed observables in {name!r}"
            tel = simulator.telemetry
            assert tel.enabled, name
            assert tel.span_count("engine.run") == 1, name
            # Non-vacuity: the instrumented probe classified every window it
            # saw, and the tier counters agree with the probe span count.
            probes = tel.span_count("engine.probe")
            tier_total = sum(
                count
                for key, count in tel.counters.items()
                if key.startswith("engine.probe.") and not key.startswith("engine.probe.k.")
            )
            assert probes > 0, f"{name!r} never engaged the fast path probe"
            assert probes == tier_total, name
            assert tel.gauges["engine.coalesce_snapshots"] == simulator.coalesce_snapshots

    def test_bounded_windows_bit_identical(self, lattice32, lattice32_spam):
        workload = mixed_traffic_workload(
            lattice32, rate_per_us=0.02, multicast_destinations=8,
            num_messages=24, seed=3,
        )
        base = SimulationConfig(
            message_length_flits=64, trace=True, collect_channel_stats=True
        )
        fingerprints = []
        for telemetry_on in (False, True):
            config = base.with_overrides(telemetry=telemetry_on)
            simulator = WormholeSimulator(lattice32, lattice32_spam, config)
            workload.submit_to(simulator)
            while not all(m.is_complete for m in simulator.messages.values()):
                simulator.run_for(25_000)
            fingerprints.append(simulator_fingerprint(simulator, simulator.stats))
        assert fingerprints[0] == fingerprints[1]

    def test_region_parallel_bit_identical_at_2_and_4_regions(
        self, lattice32, lattice32_spam
    ):
        workload = mixed_traffic_workload(
            lattice32, rate_per_us=0.02, multicast_destinations=8,
            num_messages=32, seed=9,
        )
        for region_count in (2, 4):
            config = SimulationConfig(
                message_length_flits=64,
                trace=True,
                collect_channel_stats=True,
                region_parallel=True,
                region_count=region_count,
            )
            off = run_region_parallel(
                lattice32, lattice32_spam, config, workload.specs, max_workers=0
            )
            on = run_region_parallel(
                lattice32,
                lattice32_spam,
                config.with_overrides(telemetry=True),
                workload.specs,
                max_workers=0,
            )
            assert on.fingerprint() == off.fingerprint(), region_count
            assert off.telemetry is NULL_TELEMETRY
            tel = on.telemetry
            assert tel.enabled
            # Phase spans and shard-merged engine telemetry are all present.
            for phase in ("region.plan", "region.execute", "region.merge"):
                assert tel.span_count(phase) >= 1, (region_count, phase)
            assert tel.span_count("region.shard.run") == tel.gauges["region.shards"]
            assert any(track.startswith("shard") for track in
                       {span["track"] for span in tel.spans})

    def test_region_parallel_real_process_pool_ships_worker_telemetry(
        self, lattice32, lattice32_spam
    ):
        # A region-local workload that genuinely splits into shards, run on
        # a real 2-process pool: observables identical, every shard's
        # telemetry payload shipped back and merged under shard{i} tracks.
        from repro.core.regions import assign_regions
        import random as _random

        assignment = assign_regions(lattice32, 4, tree=lattice32_spam.tree)
        rng = _random.Random(4)
        workload = Workload("region-local")
        for switches in assignment.regions:
            processors = [
                p for sw in switches for p in lattice32.processors_of(sw)
            ]
            if len(processors) < 2:
                continue
            source, dest = rng.sample(processors, 2)
            workload.specs.append(MessageSpec(source, (dest,), 0))
        config = SimulationConfig(
            message_length_flits=32,
            trace=True,
            collect_channel_stats=True,
            region_parallel=True,
            region_count=4,
            telemetry=True,
        )
        reference = run_region_parallel(
            lattice32, lattice32_spam, config.with_overrides(telemetry=False),
            workload.specs, max_workers=0,
        )
        pooled = run_region_parallel(
            lattice32, lattice32_spam, config, workload.specs, max_workers=2
        )
        assert pooled.fingerprint() == reference.fingerprint()
        assert pooled.region_processes > 0, "pool never engaged; test is vacuous"
        shard_tracks = {
            span["track"]
            for span in pooled.telemetry.spans
            if span["track"].startswith("shard")
        }
        assert len(shard_tracks) == pooled.region_shards
        assert pooled.telemetry.span_count("region.shard.run") == pooled.region_shards

    def test_sweep_results_identical_and_worker_telemetry_merged(self):
        specs = [
            SweepPointSpec(
                workload_kind="single-multicast",
                network_size=16,
                topology_seed=2,
                message_length_flits=16,
                workload_params=(("num_destinations", degree), ("samples", 2)),
                workload_seed=degree,
            )
            for degree in (2, 4, 6)
        ]
        plain = run_sweep(list(specs))
        tel = Telemetry(track="sweep")
        observed = run_sweep(list(specs), telemetry=tel)
        assert observed.results == plain.results
        assert tel.span_count("sweep.point.evaluate") == len(specs)
        assert observed.computed_seconds > 0.0
        assert observed.elapsed_seconds > 0.0

        pooled_tel = Telemetry(track="sweep")
        pooled = run_sweep(list(specs), workers=2, telemetry=pooled_tel)
        assert pooled.results == plain.results
        # Worker-process telemetry came back under chunk{i} track labels.
        chunk_tracks = {
            span["track"]
            for span in pooled_tel.spans
            if span["track"].startswith("chunk")
        }
        assert chunk_tracks, "no worker telemetry shipped back"
        assert pooled_tel.span_count("sweep.pool.dispatch") == 1
        assert pooled.computed_seconds > 0.0

    def test_sweep_time_accounting_without_caller_recorder(self, tmp_path):
        # run_sweep measures its outcome timing even with telemetry=None,
        # and the summary line carries the accounting the resume check and
        # CI grep on.
        from repro.sweeps import ResultStore

        specs = [
            SweepPointSpec(
                workload_kind="single-multicast",
                network_size=16,
                topology_seed=2,
                message_length_flits=16,
                workload_params=(("num_destinations", 4), ("samples", 2)),
                workload_seed=7,
            )
        ]
        store = ResultStore(tmp_path / "cache")
        cold = run_sweep(list(specs), store=store)
        warm = run_sweep(list(specs), store=store)
        assert cold.computed == 1 and cold.computed_seconds > 0.0
        assert warm.cache_hits == 1 and warm.computed_seconds == 0.0
        assert warm.hit_seconds > 0.0
        assert "1 computed" in cold.summary()
        assert "s elapsed)" in cold.summary()


# ----------------------------------------------------------------------
# Exporters (deterministic via the injected clock)
# ----------------------------------------------------------------------
def _golden_telemetry() -> Telemetry:
    tel = Telemetry(track="main", clock=_FakeClock(step_ns=1000))
    with tel.span("engine.run", bounded=False):
        tel.span_at("engine.probe", 1500, 2500, tier="batch", k=2, ticks=40)
    tel.counter("engine.probe.batch", 1)
    tel.gauge("engine.coalesce_batches", 1)
    tel.value("engine.probe.batch_ns", 1000.0)
    tel.merge_child(
        {
            "spans": [
                {
                    "name": "region.shard.run",
                    "track": "shard",
                    "start_ns": 0,
                    "dur_ns": 500,
                    "attrs": {"messages": 2},
                }
            ],
            "counters": {"engine.probe.scan_reject": 3},
            "values": {
                "engine.probe.scan_reject_ns": {
                    "count": 3, "total": 300.0, "min": 50.0, "max": 150.0,
                }
            },
        },
        track="shard0",
    )
    return tel


class TestExporters:
    def test_snapshot_golden(self):
        document = snapshot_dict(_golden_telemetry())
        assert document == {
            "schema": "repro.obs/snapshot",
            "version": 1,
            "track": "main",
            "spans": [
                {
                    "name": "engine.probe",
                    "track": "main",
                    "start_ns": 1500,
                    "dur_ns": 1000,
                    "attrs": {"tier": "batch", "k": 2, "ticks": 40},
                },
                {
                    "name": "engine.run",
                    "track": "main",
                    "start_ns": 1000,
                    "dur_ns": 1000,
                    "attrs": {"bounded": False},
                },
                {
                    "name": "region.shard.run",
                    "track": "shard0",
                    "start_ns": 0,
                    "dur_ns": 500,
                    "attrs": {"messages": 2},
                },
            ],
            "spans_dropped": 0,
            "counters": {
                "engine.probe.batch": 1,
                "shard0/engine.probe.scan_reject": 3,
            },
            "gauges": {"engine.coalesce_batches": 1},
            "values": {
                "engine.probe.batch_ns": {
                    "count": 1, "total": 1000.0, "min": 1000.0, "max": 1000.0,
                },
                "shard0/engine.probe.scan_reject_ns": {
                    "count": 3, "total": 300.0, "min": 50.0, "max": 150.0,
                },
            },
        }

    def test_written_snapshot_validates_against_checked_in_schema(self, tmp_path):
        path = write_snapshot(_golden_telemetry(), tmp_path / "obs" / "snap.json")
        document = json.loads(path.read_text())
        assert validate_snapshot(document) == []

    def test_validator_rejects_malformed_snapshots(self):
        good = snapshot_dict(_golden_telemetry())
        assert validate_snapshot(good) == []

        wrong_schema = dict(good, schema="something.else")
        assert any("expected" in error for error in validate_snapshot(wrong_schema))

        missing = dict(good)
        del missing["counters"]
        assert any("counters" in error for error in validate_snapshot(missing))

        bad_span = json.loads(json.dumps(good))
        bad_span["spans"][0]["dur_ns"] = -5
        assert any("minimum" in error for error in validate_snapshot(bad_span))

        extra = dict(good, surprise=1)
        assert any("surprise" in error for error in validate_snapshot(extra))

        bad_value = json.loads(json.dumps(good))
        bad_value["values"]["engine.probe.batch_ns"]["count"] = "three"
        assert validate_snapshot(bad_value) != []

    def test_chrome_trace_golden_and_well_formed(self, tmp_path):
        events = chrome_trace_events(_golden_telemetry())
        # One thread-name metadata record per track, in first-seen order.
        meta = [event for event in events if event["ph"] == "M"]
        assert [event["args"]["name"] for event in meta] == ["main", "shard0"]
        complete = [event for event in events if event["ph"] == "X"]
        assert [event["name"] for event in complete] == [
            "engine.probe", "engine.run", "region.shard.run",
        ]
        probe = complete[0]
        assert probe["ts"] == 1.5 and probe["dur"] == 1.0  # ns -> us
        assert probe["args"] == {"tier": "batch", "k": 2, "ticks": 40}
        assert {event["tid"] for event in complete} == {0, 1}

        path = write_chrome_trace(_golden_telemetry(), tmp_path / "snap.trace.json")
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []
        assert document["traceEvents"] == events

    def test_chrome_trace_validator_rejects_malformed_documents(self):
        assert validate_chrome_trace(42) != []
        assert validate_chrome_trace({"notTraceEvents": []}) != []
        assert validate_chrome_trace({"traceEvents": [{"name": "x"}]}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X", "ts": 0.0, "dur": 1.0,
                              "pid": 0, "tid": True}]}
        ) != []
        assert validate_chrome_trace([]) == []  # bare array form

    def test_summarize_snapshot_tables(self):
        document = snapshot_dict(_golden_telemetry())
        tables = summarize_snapshot(document)
        tiers = {row["tier"]: row for row in tables["tiers"]}
        # Track prefixes are stripped, so the shard's scan rejects aggregate
        # with the parent's batch tier into one attribution table.
        assert set(tiers) == {"batch", "scan_reject"}
        assert tiers["batch"]["probes"] == 1
        assert tiers["scan_reject"]["probes"] == 3
        assert tiers["batch"]["total_ms"] == pytest.approx(1000.0 / 1e6)
        assert sum(row["share"] for row in tables["tiers"]) == pytest.approx(1.0)
        spans = {row["span"]: row for row in tables["spans"]}
        assert spans["engine.run"]["count"] == 1
        assert spans["region.shard.run"]["total_ms"] == pytest.approx(500.0 / 1e6)


# ----------------------------------------------------------------------
# CLI: --telemetry artifacts, obs validate / obs summarize
# ----------------------------------------------------------------------
class TestObsCli:
    def test_figure2_telemetry_artifacts_validate_end_to_end(self, capsys, tmp_path):
        out = tmp_path / "fig2.obs.json"
        rc = main([
            "--scale", "smoke", "figure2", "--network-sizes", "16",
            "--telemetry", str(out),
        ])
        assert rc == 0
        trace = out.with_suffix(".trace.json")
        assert out.exists() and trace.exists()
        document = json.loads(out.read_text())
        assert validate_snapshot(document) == []
        assert validate_chrome_trace(json.loads(trace.read_text())) == []
        # The smoke figure exercised the engine, so per-tier probe
        # distributions made it into the unified snapshot.
        assert any(
            key.rsplit("/", 1)[-1].startswith("engine.probe.")
            for key in document["values"]
        )
        capsys.readouterr()

        assert main(["obs", "validate", str(out)]) == 0
        validated = capsys.readouterr().out
        assert "ok" in validated and str(trace) in validated

        assert main(["obs", "summarize", str(out)]) == 0
        summary = capsys.readouterr().out
        assert "probe time attribution" in summary
        assert "sweep.run" in summary

    def test_obs_validate_fails_on_malformed_snapshot(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "repro.obs/snapshot"}))
        assert main(["obs", "validate", str(bad)]) == 1
        assert "missing required" in capsys.readouterr().err

    def test_obs_validate_checks_an_explicit_trace_file(self, capsys, tmp_path):
        snap = write_snapshot(_golden_telemetry(), tmp_path / "snap.json")
        bad_trace = tmp_path / "bad.trace.json"
        bad_trace.write_text(json.dumps({"traceEvents": [{"name": "x"}]}))
        assert main(["obs", "validate", str(snap), "--trace", str(bad_trace)]) == 1
        assert "trace:" in capsys.readouterr().err
