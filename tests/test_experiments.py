"""Tests for the experiment drivers (reduced-size versions of each figure).

These tests run the same code paths as the benchmark harnesses but on small
networks with few samples, checking the *qualitative* claims of the paper:

* Figure 2 — latency essentially independent of the destination count;
* Figure 3 — latency grows with the arrival rate but stays close across
  multicast degrees;
* §4 comparison — SPAM beats the software multicast lower bound by a large
  factor for broadcast-sized destination sets.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    AblationConfig,
    run_buffer_depth_ablation,
    run_partition_ablation,
    run_root_ablation,
    run_selection_ablation,
)
from repro.experiments.common import (
    SCALES,
    build_network_and_routing,
    current_scale,
    paper_config,
    scaled,
)
from repro.experiments.figure2 import Figure2Config, default_destination_counts, run_figure2
from repro.experiments.figure3 import Figure3Config, run_figure3
from repro.experiments.software_comparison import (
    SoftwareComparisonConfig,
    run_software_comparison,
)

SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module")
def tiny_ablation_config():
    return AblationConfig(network_size=16, num_destinations=8, scale=SMOKE)


class TestScaling:
    def test_named_scales(self):
        assert SCALES["paper"].message_length_flits == 128
        assert scaled("smoke").name == "smoke"
        assert current_scale().name in SCALES

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        monkeypatch.setenv("REPRO_FLITS", "16")
        monkeypatch.setenv("REPRO_SAMPLES", "3")
        scale = current_scale()
        assert scale.name == "smoke"
        assert scale.message_length_flits == 16
        assert scale.samples_per_point == 3

    def test_paper_config_from_scale(self):
        config = paper_config(SMOKE, input_buffer_depth=2)
        assert config.message_length_flits == SMOKE.message_length_flits
        assert config.input_buffer_depth == 2

    def test_build_network_and_routing(self):
        network, routing = build_network_and_routing(16, seed=1)
        assert network.num_switches == 16
        assert routing.network is network

    def test_default_destination_counts(self):
        counts = default_destination_counts(128)
        assert counts[0] == 1
        assert counts[-1] == 127
        assert counts == sorted(counts)
        assert len(counts) <= 8


class TestFigure2:
    @pytest.fixture(scope="class")
    def figure2_result(self):
        config = Figure2Config(
            network_sizes=(24,),
            destination_counts={24: [1, 4, 12, 23]},
            scale=SMOKE,
        )
        return run_figure2(config)

    def test_series_structure(self, figure2_result):
        assert figure2_result.labels() == ["24-switch network"]
        series = figure2_result.series[0]
        assert series.xs() == [1, 4, 12, 23]
        assert all(point.summary.count == SMOKE.samples_per_point for point in series.points)

    def test_latency_in_plausible_range(self, figure2_result):
        """With a 10 us startup the idle-network multicast latency must sit a
        little above 10 us — the paper reports 11-14 us."""
        for mean in figure2_result.series[0].means():
            assert 10.0 < mean < 20.0

    def test_latency_flat_in_destination_count(self, figure2_result):
        """The paper's headline claim: latency is essentially independent of
        the number of destinations (single worm, single startup)."""
        series = figure2_result.series[0]
        assert series.spread() < 0.25 * min(series.means())


class TestFigure3:
    @pytest.fixture(scope="class")
    def figure3_result(self):
        config = Figure3Config(
            network_size=24,
            multicast_degrees=(4, 8),
            arrival_rates_per_us=(0.005, 0.05),
            scale=SMOKE,
        )
        return run_figure3(config)

    def test_series_per_degree(self, figure3_result):
        assert figure3_result.labels() == ["4 destinations", "8 destinations"]
        for series in figure3_result.series:
            assert series.xs() == [0.005, 0.05]

    def test_latency_rises_with_rate(self, figure3_result):
        for series in figure3_result.series:
            means = series.means()
            assert means[-1] >= means[0]

    def test_latency_similar_across_degrees(self, figure3_result):
        """Latency should be largely independent of the multicast degree."""
        at_high_rate = [series.means()[-1] for series in figure3_result.series]
        assert max(at_high_rate) - min(at_high_rate) < 0.5 * min(at_high_rate)


class TestSoftwareComparison:
    def test_speedup_over_lower_bound(self):
        config = SoftwareComparisonConfig(
            network_size=24,
            destination_counts=(23,),
            scale=SMOKE,
            run_software_baseline=True,
        )
        rows = run_software_comparison(config)
        assert len(rows) == 1
        row = rows[0]
        assert row["software_bound_us"] >= 50.0
        assert row["speedup"] > 3.0
        # The executable binomial baseline can only be slower than the bound.
        assert row["software_measured_us"] >= row["software_bound_us"] * 0.95
        assert row["measured_speedup"] >= row["speedup"] * 0.9

    def test_bound_only_mode(self):
        config = SoftwareComparisonConfig(
            network_size=16,
            destination_counts=(8,),
            scale=SMOKE,
            run_software_baseline=False,
        )
        rows = run_software_comparison(config)
        assert "software_measured_us" not in rows[0]


class TestAblations:
    def test_buffer_depth_rows(self, tiny_ablation_config):
        rows = run_buffer_depth_ablation((1, 2), tiny_ablation_config)
        assert [row["buffer_depth"] for row in rows] == [1, 2]
        assert all(row["latency_us"] > 10.0 for row in rows)
        # Deeper buffers never make an idle-network multicast slower.
        assert rows[1]["latency_us"] <= rows[0]["latency_us"] + 0.05

    def test_selection_rows(self, tiny_ablation_config):
        rows = run_selection_ablation(("distance-to-lca", "first-allowed"), tiny_ablation_config)
        assert {row["selection"] for row in rows} == {"distance-to-lca", "first-allowed"}
        best = min(rows, key=lambda row: row["latency_us"])
        assert best["latency_us"] <= rows[0]["latency_us"] + 1e-9

    def test_root_rows(self, tiny_ablation_config):
        rows = run_root_ablation(("center", "first"), tiny_ablation_config)
        assert all("tree_height" in row for row in rows)
        center = next(row for row in rows if row["root_strategy"] == "center")
        first = next(row for row in rows if row["root_strategy"] == "first")
        assert center["tree_height"] <= first["tree_height"]

    def test_partition_rows(self, tiny_ablation_config):
        rows = run_partition_ablation((1, 2), config=tiny_ablation_config)
        assert [row["groups"] for row in rows] == [1, 2]
        # Splitting into two worms costs an extra startup on an idle network.
        assert rows[1]["latency_us"] > rows[0]["latency_us"]
