"""Tests for the batched Monte-Carlo replication backend.

The batched path's whole value rests on one contract: every replication's
:class:`~repro.sweeps.spec.SweepPointResult` is **bit-identical** to the
one-task-per-point path, while the network / spanning tree / labelling /
ancestry are built once per batch instead of once per replication.  These
tests pin that contract:

* batched-vs-per-point differential over every ``workload_kind``, including
  the stateful ``"random"`` selection (whose RNG must be freshly seeded per
  replication, never shared);
* the same differential through :func:`run_sweep` — sequential and over a
  real process pool — with per-replication checkpointing into the store;
* cache/resume interaction: a half-stored batch computes exactly the
  missing half;
* a hypothesis property that :func:`group_replications` is a partition of
  the input specs (every spec in exactly one batch, multiplicity included,
  batch-size bound respected, skeleton key uniform within a batch);
* failure semantics: a mid-batch error still checkpoints the replications
  that completed before it.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ZeroDeliveryError
from repro.sweeps import (
    ReplicationBatchSpec,
    ResultStore,
    SweepPointSpec,
    evaluate_batch,
    evaluate_spec,
    group_replications,
    iter_evaluate_batch,
    run_sweep,
)


def _spec(kind: str, params, *, topology_seed=3, network_size=16, **kwargs):
    defaults = dict(
        workload_kind=kind,
        network_size=network_size,
        topology_seed=topology_seed,
        message_length_flits=16,
        workload_params=tuple(params),
        workload_seed=5,
        x=1.0,
    )
    defaults.update(kwargs)
    return SweepPointSpec(**defaults)


#: One representative spec per workload kind, all sharing a skeleton.
KIND_SPECS = [
    _spec("single-multicast", (("num_destinations", 4), ("samples", 2))),
    _spec(
        "mixed",
        (
            ("rate_per_us", 0.01),
            ("multicast_destinations", 4),
            ("num_messages", 6),
            ("multicast_fraction", 0.25),
            ("arrival", "poisson"),
        ),
    ),
    _spec(
        "software-comparison",
        (("num_destinations", 4), ("samples", 2), ("execute_software", 1)),
    ),
    _spec("partitioned-multicast", (("num_destinations", 8), ("groups", 2))),
]

#: Stateful-selection replications: same skeleton, per-replication RNG seeds.
RANDOM_SPECS = [
    _spec(
        "single-multicast",
        (("num_destinations", 4), ("samples", 1)),
        workload_seed=10 + i,
        selection="random",
        selection_seed=i,
        x=float(i),
    )
    for i in range(4)
]


class TestBatchedDifferential:
    def test_bit_identical_across_all_workload_kinds(self):
        specs = KIND_SPECS + RANDOM_SPECS
        batches = group_replications(specs)
        assert len(batches) == 1  # one shared skeleton
        batched = evaluate_batch(batches[0])
        per_point = [evaluate_spec(spec) for spec in specs]
        assert batched == per_point

    def test_stateless_selection_routing_reused_within_batch(self):
        """Replications on a stateless selection share one routing object —
        the in-batch analogue of the per-point lru cache."""
        specs = [replace(KIND_SPECS[0], workload_seed=seed) for seed in (5, 6)]
        batch = group_replications(specs)[0]
        results = evaluate_batch(batch)
        assert results == [evaluate_spec(spec) for spec in specs]

    def test_random_selection_not_contaminated_by_batch_neighbours(self):
        """A stateful selection's RNG must not leak between replications:
        evaluating a spec alone and inside a batch gives identical results."""
        alone = [evaluate_spec(spec) for spec in RANDOM_SPECS]
        batch = group_replications(RANDOM_SPECS)[0]
        assert evaluate_batch(batch) == alone
        # Order independence too: reversed batch, same per-spec results.
        reversed_batch = group_replications(list(reversed(RANDOM_SPECS)))[0]
        assert evaluate_batch(reversed_batch) == list(reversed(alone))

    def test_foreign_spec_rejected(self):
        batch = group_replications([KIND_SPECS[0]])[0]
        foreign = replace(KIND_SPECS[1], topology_seed=4)
        bad = ReplicationBatchSpec(
            batch.network_size,
            batch.topology_seed,
            batch.root_strategy,
            (foreign,),
        )
        with pytest.raises(ValueError, match="does not belong"):
            list(iter_evaluate_batch(bad))


class TestBatchedRunSweep:
    def test_sequential_batched_matches_unbatched(self, tmp_path):
        specs = KIND_SPECS + RANDOM_SPECS
        base = run_sweep(specs, store=ResultStore(tmp_path / "a"))
        batched = run_sweep(
            specs, store=ResultStore(tmp_path / "b"), batch_replications=8
        )
        assert batched.results == base.results
        assert (batched.cache_hits, batched.computed) == (0, len(specs))
        # Every replication landed under its own spec key.
        reopened = ResultStore(tmp_path / "b")
        assert all(spec in reopened for spec in specs)

    @pytest.mark.slow
    def test_pool_batched_matches_unbatched(self, tmp_path):
        specs = KIND_SPECS + RANDOM_SPECS
        base = run_sweep(specs, store=None)
        pooled = run_sweep(
            specs,
            store=ResultStore(tmp_path / "cache"),
            workers=2,
            batch_replications=3,
        )
        assert pooled.results == base.results
        assert all(spec in ResultStore(tmp_path / "cache") for spec in specs)

    def test_resume_half_stored_batch(self, tmp_path):
        """Warm-cache semantics are unchanged by batching: a half-stored
        batch computes exactly the missing half and returns the same rows."""
        specs = KIND_SPECS + RANDOM_SPECS
        base = run_sweep(specs, store=ResultStore(tmp_path / "full"))
        half = len(specs) // 2
        store = ResultStore(tmp_path / "half")
        store.put_many(base.results[:half])
        store.flush_index()
        resumed = run_sweep(
            specs, store=ResultStore(tmp_path / "half"), batch_replications=8
        )
        assert (resumed.cache_hits, resumed.computed) == (half, len(specs) - half)
        assert resumed.results == base.results

    def test_mid_batch_failure_checkpoints_earlier_replications(
        self, tmp_path, monkeypatch
    ):
        """Sequential batched run: replications evaluated before a mid-batch
        failure are already in the store when the error surfaces."""
        import repro.sweeps.spec as spec_module

        real_run_latencies = spec_module._run_latencies

        def poisoned(network, routing, workload, config, from_creation, telemetry=None):
            if workload.seed == 99:
                return []
            return real_run_latencies(
                network, routing, workload, config, from_creation, telemetry
            )

        monkeypatch.setattr(spec_module, "_run_latencies", poisoned)
        good = KIND_SPECS[0]
        bad = replace(good, workload_seed=99)
        store = ResultStore(tmp_path / "cache")
        with pytest.raises(ZeroDeliveryError):
            run_sweep([good, bad], store=store, batch_replications=2)
        assert ResultStore(tmp_path / "cache").get(good) is not None

    def test_batched_telemetry_tracks(self, tmp_path):
        """Pool-batched telemetry lands under ``batch{i}`` tracks with one
        per-replication evaluate span each."""
        from repro.obs import Telemetry

        telemetry = Telemetry(track="test")
        run_sweep(
            RANDOM_SPECS, store=None, workers=2, batch_replications=2,
            telemetry=telemetry,
        )
        payload = telemetry.to_payload()
        tracks = {span["track"] for span in payload["spans"]}
        assert any(track.startswith("batch0") for track in tracks)
        evaluate_spans = [
            span for span in payload["spans"]
            if span["name"] == "sweep.point.evaluate"
        ]
        assert len(evaluate_spans) == len(RANDOM_SPECS)


_key_strategy = st.tuples(
    st.integers(min_value=8, max_value=10),  # network_size (never simulated)
    st.integers(min_value=0, max_value=3),  # topology_seed
    st.sampled_from(["center", "max-degree"]),  # root_strategy
)


@st.composite
def _spec_lists(draw):
    keys = draw(st.lists(_key_strategy, min_size=0, max_size=12))
    return [
        _spec(
            "single-multicast",
            (("num_destinations", 2), ("samples", 1)),
            network_size=size,
            topology_seed=seed,
            root_strategy=root,
            workload_seed=index,
        )
        for index, (size, seed, root) in enumerate(keys)
    ]


class TestGroupingPartitionProperty:
    @settings(max_examples=60, deadline=None)
    @given(specs=_spec_lists(), max_batch_size=st.integers(min_value=0, max_value=5))
    def test_grouping_is_a_partition(self, specs, max_batch_size):
        batches = group_replications(specs, max_batch_size=max_batch_size)
        # Every spec lands in exactly one batch (multiplicity included).
        scattered = [spec for batch in batches for spec in batch.specs]
        assert sorted(scattered, key=repr) == sorted(specs, key=repr)
        for batch in batches:
            assert batch.specs  # no empty batches
            if max_batch_size > 0:
                assert len(batch.specs) <= max_batch_size
            # Uniform skeleton key within a batch, and it matches the batch's.
            for spec in batch.specs:
                assert (
                    spec.network_size,
                    spec.topology_seed,
                    spec.root_strategy,
                ) == (batch.network_size, batch.topology_seed, batch.root_strategy)

    def test_order_preserved_within_groups(self):
        specs = [
            replace(KIND_SPECS[0], workload_seed=seed) for seed in (9, 7, 8)
        ]
        (batch,) = group_replications(specs)
        assert [spec.workload_seed for spec in batch.specs] == [9, 7, 8]
