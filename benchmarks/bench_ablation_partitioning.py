"""Ablation benchmark: destination partitioning (paper §5, future work).

The paper proposes partitioning large destination sets "into groups of
contiguous nodes" served by separate worms to relieve the hot spot at the
spanning-tree root.  This benchmark sends a large multicast as 1, 2 and 4
contiguous-group worms and records the completion latency of the whole
logical multicast.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.experiments.ablations import AblationConfig, run_partition_ablation

GROUP_COUNTS = (1, 2, 4)


@pytest.mark.benchmark(group="ablations")
def test_destination_partitioning_ablation(benchmark, record_result):
    config = AblationConfig(num_destinations=48, network_size=64)

    rows = benchmark.pedantic(
        lambda: run_partition_ablation(GROUP_COUNTS, config=config), rounds=1, iterations=1
    )

    header = (
        "Destination-partitioning ablation — completion latency (us) of one "
        f"{config.num_destinations}-destination multicast sent as k contiguous-group worms, "
        f"{config.network_size}-switch irregular network (idle)\n"
    )
    record_result("ablation_partitioning", header + format_table(rows))

    assert [row["groups"] for row in rows] == list(GROUP_COUNTS)
    # On an idle network each extra worm costs roughly one extra startup,
    # because the source serialises its sends — this is the trade-off the
    # paper's future-work section weighs against root-hot-spot relief.
    latencies = [row["latency_us"] for row in rows]
    assert latencies == sorted(latencies)
    assert latencies[1] >= latencies[0] + 5.0
