"""Shared infrastructure for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper (or one
ablation) and

* runs the corresponding experiment driver exactly once per benchmark round
  (``benchmark.pedantic(..., rounds=1)``) so the wall-clock time reported by
  pytest-benchmark is the cost of regenerating that figure at the selected
  scale, and
* writes the regenerated rows/series to ``benchmarks/results/<name>.txt`` so
  the numbers can be inspected (and pasted into EXPERIMENTS.md) without
  re-running anything.

The scale is controlled by the ``REPRO_SCALE`` environment variable exactly
like the experiment drivers (``smoke`` / ``default`` / ``paper``); benchmarks
default to the ``default`` scale.

The figure and ablation harnesses call the experiment drivers, which route
through the :mod:`repro.sweeps` orchestrator: set ``REPRO_SWEEP_WORKERS=N``
to spread sweep points over ``N`` worker processes (the timing then reports
the sharded wall-clock).  No result store is passed, so benchmark timings
always measure real simulation, never cache hits;
``bench_sweep_orchestrator.py`` measures the cache itself.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmark harnesses drop their regenerated tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write a named result artefact and echo it to the terminal."""

    def _record(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")
        return path

    return _record
