"""Benchmark harness regenerating **Figure 3** of the paper.

Paper: "message latency was measured for mixed unicast and multicast traffic
in a 128 node network in which 90% of messages were unicast and 10% of
messages were multicast.  Simulations were conducted for multicasts with 8,
16, 32, and 64 destinations using a negative binomial distribution with
varying average arrival rates."  The figure shows latency rising with the
arrival rate while the four curves (one per multicast degree) stay close
together.

The harness reproduces the same sweep (reduced sample counts by default; set
``REPRO_SCALE=paper`` for the full configuration) and prints/stores one
latency series per multicast degree.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import series_side_by_side
from repro.experiments.figure3 import Figure3Config, run_figure3


@pytest.mark.benchmark(group="figure3")
def test_figure3_mixed_traffic(benchmark, record_result):
    config = Figure3Config()

    result = benchmark.pedantic(lambda: run_figure3(config), rounds=1, iterations=1)

    table = series_side_by_side(result)
    header = (
        "Figure 3 reproduction — latency (us) vs per-processor arrival rate "
        "(messages/us)\n"
        f"network={result.parameters['network_size']} switches, 90% unicast / 10% multicast, "
        f"scale={result.parameters['scale']}, "
        f"messages/point={result.parameters['messages_per_point']}\n"
    )
    record_result("figure3_mixed_traffic", header + table)

    # Shape checks mirroring the paper's observations.
    for series in result.series:
        means = series.means()
        assert means[0] > 10.0, "even at the lightest load the startup floor applies"
        assert means[-1] >= means[0] * 0.95, "latency must not fall as the load rises"
    # Latency largely independent of the multicast degree: compare the curves
    # at the heaviest sampled load.
    heavy = [series.means()[-1] for series in result.series]
    assert max(heavy) - min(heavy) < 0.6 * min(heavy), (
        "latency should remain largely independent of the number of destinations"
    )
