"""Engineering benchmark: raw throughput of the flit-level simulator.

Not a figure from the paper — this measures how many flit-hops per second
the event-driven engine sustains, which determines how expensive the
paper-scale configurations are to regenerate.  pytest-benchmark runs the same
broadcast repeatedly, so this is also the benchmark to watch when optimising
the simulator's hot path.
"""

from __future__ import annotations

import pytest

from repro.core.spam import SpamRouting
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import WormholeSimulator
from repro.topology.irregular import lattice_irregular_network


@pytest.fixture(scope="module")
def broadcast_setup():
    network = lattice_irregular_network(64, seed=11)
    routing = SpamRouting.build(network)
    config = SimulationConfig(message_length_flits=64)
    return network, routing, config


@pytest.mark.benchmark(group="engine")
def test_broadcast_simulation_throughput(benchmark, broadcast_setup, record_result):
    network, routing, config = broadcast_setup

    def run_once():
        simulator = WormholeSimulator(network, routing, config)
        simulator.submit_broadcast(network.processors()[0])
        stats = simulator.run()
        return stats

    stats = benchmark(run_once)
    assert stats.messages_completed == 1
    record_result(
        "simulator_throughput",
        (
            "Engine micro-benchmark — one 63-destination broadcast, 64-switch network, "
            f"64-flit message\nflit-hops simulated per run: {stats.flit_hops}\n"
            "(see pytest-benchmark output for the wall-clock distribution)"
        ),
    )


@pytest.mark.benchmark(group="engine")
def test_unicast_simulation_throughput(benchmark, broadcast_setup):
    network, routing, config = broadcast_setup
    processors = network.processors()

    def run_once():
        simulator = WormholeSimulator(network, routing, config)
        for index in range(8):
            simulator.submit_message(
                processors[index], [processors[(index + 17) % len(processors)]], at_ns=0
            )
        return simulator.run()

    stats = benchmark(run_once)
    assert stats.messages_completed == 8
