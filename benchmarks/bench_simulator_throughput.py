"""Engineering benchmark: raw throughput of the flit-level simulator.

Not a figure from the paper — this measures how many flit-hops per second
the event-driven engine sustains, which determines how expensive the
paper-scale configurations are to regenerate.  pytest-benchmark runs the same
broadcast repeatedly, so this is also the benchmark to watch when optimising
the simulator's hot path.

Six kinds of scenario are exercised:

* the seed scenarios (64 switches, 64-flit worms) kept verbatim so numbers
  stay comparable across PRs,
* scale scenarios (256 switches and/or 512-flit worms) where steady-state
  streaming dominates and the engine's event-coalescing fast path pays off,
* Figure-3-style mixed-traffic scenarios (128 switches, 90 % unicast / 10 %
  multicast, Poisson and negative-binomial arrivals) — the workloads that
  motivated the phase-staggered and bubble-periodic coalescing modes, the
  profile used to tune ``_MIN_BATCH_TICKS`` and the probe backoff, and (at
  the paper's 128-flit length) the churn regime whose probe-economics
  counters (verify failures, drain bails, generic bails) the snapshot
  records,
* slow-channel scenarios (``channel_latency_factors``): worms behind a 2x
  or 3x injection bottleneck stream at rate 1/k and exercise the
  multi-period (every-k-th-window) coalescing mode,
* a region-parallel scenario (256 switches, 16-flit churn traffic whose
  preferred-route closures are globally disjoint — the embarrassingly
  parallel best case for ``docs/region_parallel.md``) timed against the
  single-process reference at 2 and 4 worker processes,
* an explicit fast-path vs. reference comparison that asserts bit-identical
  delivery timestamps and records the measured speedups to
  ``benchmarks/results/simulator_throughput.json`` (the committed
  ``BENCH_simulator_throughput.json`` at the repository root is a snapshot
  of this file, refreshed when the engine changes materially).
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.core.regions import assign_regions, preferred_channels
from repro.core.spam import SpamRouting
from repro.obs import Telemetry, summarize_snapshot
from repro.obs.export import snapshot_dict
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import WormholeSimulator
from repro.simulator.regions import run_region_parallel, simulator_fingerprint
from repro.topology.irregular import lattice_irregular_network
from repro.traffic.arrivals import make_arrival_process
from repro.traffic.workload import MessageSpec, Workload, mixed_traffic_workload


def _available_cores() -> int:
    """CPUs this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def broadcast_setup():
    network = lattice_irregular_network(64, seed=11)
    routing = SpamRouting.build(network)
    config = SimulationConfig(message_length_flits=64)
    return network, routing, config


@pytest.fixture(scope="module")
def scale_setup():
    """256 switches, 512-flit worms: the steady-state streaming regime."""
    network = lattice_irregular_network(256, seed=11)
    routing = SpamRouting.build(network)
    config = SimulationConfig(message_length_flits=512)
    return network, routing, config


@pytest.fixture(scope="module")
def figure3_setup():
    """128 switches with Figure-3 mixed traffic (90 % unicast / 10 % multicast,
    degree 16) at a moderately heavy arrival rate, one workload per arrival
    process.  Poisson arrivals land on arbitrary nanoseconds (phase-staggered
    worms); the paper's negative binomial is quantised to the channel cycle."""
    network = lattice_irregular_network(128, seed=7)
    routing = SpamRouting.build(network)
    workloads = {
        name: mixed_traffic_workload(
            network,
            rate_per_us=0.02,
            multicast_destinations=16,
            num_messages=60,
            multicast_fraction=0.1,
            seed=23,
            arrival_process=make_arrival_process(name, 0.02),
        )
        for name in ("poisson", "negative-binomial")
    }
    config = SimulationConfig(message_length_flits=128)
    return network, routing, workloads, config


def _broadcast_once(network, routing, config):
    simulator = WormholeSimulator(network, routing, config)
    simulator.submit_broadcast(network.processors()[0])
    return simulator.run()


def _mixed_once(network, routing, workload, config):
    simulator = WormholeSimulator(network, routing, config)
    workload.submit_to(simulator)
    simulator.run()
    return simulator


@pytest.mark.benchmark(group="engine")
def test_broadcast_simulation_throughput(benchmark, broadcast_setup, record_result):
    network, routing, config = broadcast_setup

    def run_once():
        return _broadcast_once(network, routing, config)

    stats = benchmark(run_once)
    assert stats.messages_completed == 1
    record_result(
        "simulator_throughput",
        (
            "Engine micro-benchmark — one 63-destination broadcast, 64-switch network, "
            f"64-flit message\nflit-hops simulated per run: {stats.flit_hops}\n"
            "(see pytest-benchmark output for the wall-clock distribution)"
        ),
    )


@pytest.mark.benchmark(group="engine")
def test_unicast_simulation_throughput(benchmark, broadcast_setup):
    network, routing, config = broadcast_setup
    processors = network.processors()

    def run_once():
        simulator = WormholeSimulator(network, routing, config)
        for index in range(8):
            simulator.submit_message(
                processors[index], [processors[(index + 17) % len(processors)]], at_ns=0
            )
        return simulator.run()

    stats = benchmark(run_once)
    assert stats.messages_completed == 8


@pytest.mark.benchmark(group="engine")
def test_long_worm_broadcast_throughput(benchmark, broadcast_setup):
    """64 switches, 512-flit worms: long steady-state phase on a small net."""
    network, routing, _ = broadcast_setup
    config = SimulationConfig(message_length_flits=512)

    stats = benchmark(lambda: _broadcast_once(network, routing, config))
    assert stats.messages_completed == 1


@pytest.mark.benchmark(group="engine")
def test_large_broadcast_throughput(benchmark, scale_setup):
    """256 switches, 512-flit worms: the paper-scale stress scenario."""
    network, routing, config = scale_setup

    stats = benchmark(lambda: _broadcast_once(network, routing, config))
    assert stats.messages_completed == 1


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("arrival", ["poisson", "negative-binomial"])
def test_mixed_traffic_throughput(benchmark, figure3_setup, arrival):
    """Figure-3 mixed traffic end to end (the headline workload of the
    paper's second experiment) on the default engine configuration."""
    network, routing, workloads, config = figure3_setup

    simulator = benchmark(
        lambda: _mixed_once(network, routing, workloads[arrival], config)
    )
    assert not simulator.pending_messages
    assert simulator.coalesced_ticks > 0


def _time_broadcast(network, routing, config, rounds: int) -> tuple[float, int]:
    """Best-of-``rounds`` wall-clock seconds and flit-hop count of one run."""
    best = float("inf")
    hops = 0
    for _ in range(rounds):
        start = time.perf_counter()
        stats = _broadcast_once(network, routing, config)
        best = min(best, time.perf_counter() - start)
        hops = stats.flit_hops
    return best, hops


def _time_mixed(network, routing, workload, config, rounds: int):
    """Best-of-``rounds`` wall clock plus the final simulator of one run."""
    best = float("inf")
    simulator = None
    for _ in range(rounds):
        start = time.perf_counter()
        simulator = _mixed_once(network, routing, workload, config)
        best = min(best, time.perf_counter() - start)
    return best, simulator


@pytest.mark.benchmark(group="engine")
def test_fast_path_speedup_and_equivalence(
    broadcast_setup, scale_setup, figure3_setup, results_dir
):
    """Fast path vs. reference: identical results, measured speedups.

    Writes ``simulator_throughput.json`` next to the text artefacts so the
    perf trajectory of the engine is machine-readable.
    """
    scenarios = []
    for name, (network, routing, _), flits, rounds, floor in (
        ("broadcast_64sw_512f", broadcast_setup, 512, 3, 3.0),
        ("broadcast_256sw_512f", scale_setup, 512, 2, 1.5),
    ):
        fast_config = SimulationConfig(message_length_flits=flits, fast_path=True)
        ref_config = fast_config.with_overrides(fast_path=False)

        fast_sim = WormholeSimulator(network, routing, fast_config)
        fast_msg = fast_sim.submit_broadcast(network.processors()[0])
        fast_stats = fast_sim.run()
        ref_sim = WormholeSimulator(network, routing, ref_config)
        ref_msg = ref_sim.submit_broadcast(network.processors()[0])
        ref_stats = ref_sim.run()

        # The fast path's contract: bit-identical observable behaviour.
        assert fast_msg.delivered_ns == ref_msg.delivered_ns
        assert fast_stats.flit_hops == ref_stats.flit_hops
        assert fast_stats.bubbles_created == ref_stats.bubbles_created
        assert fast_stats.end_time_ns == ref_stats.end_time_ns

        fast_s, hops = _time_broadcast(network, routing, fast_config, rounds)
        ref_s, _ = _time_broadcast(network, routing, ref_config, rounds)
        speedup = ref_s / fast_s
        scenarios.append(
            {
                "scenario": name,
                "message_length_flits": flits,
                "flit_hops": hops,
                "fast_seconds": round(fast_s, 6),
                "reference_seconds": round(ref_s, 6),
                "fast_flit_hops_per_sec": round(hops / fast_s),
                "reference_flit_hops_per_sec": round(hops / ref_s),
                "speedup": round(speedup, 2),
            }
        )
        # Regression floors, far below the measured speedups (≈8.8x / ≈3.9x).
        # Wall-clock ratios are inherently noisy on shared CI runners, so the
        # floors are only enforced on opt-in (REPRO_BENCH_STRICT=1, set for
        # local benchmarking); the equivalence assertions above always run.
        if os.environ.get("REPRO_BENCH_STRICT"):
            assert speedup >= floor, f"{name}: fast path speedup {speedup:.2f}x < {floor}x"

    # Figure-3 mixed traffic: the workloads the phase-staggered and
    # bubble-periodic coalescing modes were built for.  ``sync_only`` runs
    # the fast path with both new modes disabled, so the recorded numbers
    # separate their contribution from PR 1's synchronized coalescing.  The
    # 512-flit variants are where streaming dominates and those modes pay;
    # the paper-length 128-flit runs are churn-dominated — their
    # probe-economics counters are recorded so the churn-regime trajectory
    # (verify failures down, drain bails engaged, speedup vs reference up)
    # stays visible across PRs.
    network, routing, workloads, base_config = figure3_setup
    for arrival, workload in workloads.items():
        for flits in (base_config.message_length_flits, 512):
            config = base_config.with_overrides(message_length_flits=flits)
            ref_config = config.with_overrides(fast_path=False)
            sync_only_config = config.with_overrides(
                coalesce_stagger=False, coalesce_bubbles=False
            )
            fast_s, fast_sim = _time_mixed(network, routing, workload, config, rounds=2)
            sync_s, _ = _time_mixed(network, routing, workload, sync_only_config, rounds=2)
            ref_s, ref_sim = _time_mixed(network, routing, workload, ref_config, rounds=2)

            assert {m: dict(msg.delivered_ns) for m, msg in fast_sim.messages.items()} == {
                m: dict(msg.delivered_ns) for m, msg in ref_sim.messages.items()
            }
            assert fast_sim.stats.flit_hops == ref_sim.stats.flit_hops
            assert fast_sim.stats.bubbles_created == ref_sim.stats.bubbles_created
            assert fast_sim.stats.end_time_ns == ref_sim.stats.end_time_ns
            assert fast_sim.coalesced_ticks > 0
            # Homogeneous latencies: the probe must never pay for (or find)
            # a compound period — see docs/fast_path.md.
            assert fast_sim.coalesce_multi_period_batches == 0
            assert set(fast_sim.coalesce_k_histogram) <= {1}

            hops = fast_sim.stats.flit_hops
            scenarios.append(
                {
                    "scenario": f"figure3_mixed_128sw_{flits}f_{arrival}",
                    "message_length_flits": flits,
                    "flit_hops": hops,
                    "fast_seconds": round(fast_s, 6),
                    "reference_seconds": round(ref_s, 6),
                    "fast_flit_hops_per_sec": round(hops / fast_s),
                    "reference_flit_hops_per_sec": round(hops / ref_s),
                    "speedup": round(ref_s / fast_s, 2),
                    "sync_only_seconds": round(sync_s, 6),
                    "sync_only_speedup": round(ref_s / sync_s, 2),
                    "coalesced_ticks": fast_sim.coalesced_ticks,
                    "coalesced_stagger_ticks": fast_sim.coalesced_stagger_ticks,
                    "coalesced_bubble_ticks": fast_sim.coalesced_bubble_ticks,
                    "coalesce_snapshots": fast_sim.coalesce_snapshots,
                    "coalesce_batches": fast_sim.coalesce_batches,
                    "coalesce_verify_failures": fast_sim.coalesce_verify_failures,
                    "coalesce_generic_bails": fast_sim.coalesce_generic_bails,
                    "coalesce_drain_bails": fast_sim.coalesce_drain_bails,
                }
            )
            if os.environ.get("REPRO_BENCH_STRICT") and flits == 512:
                # The new modes must beat sync-only coalescing where
                # streaming dominates (measured ≈1.3–1.5x); floor well below.
                assert sync_s / fast_s >= 1.1, (
                    f"{arrival}@512f: modes speedup {sync_s / fast_s:.2f}x < 1.1x"
                )

    # Slow-channel scenarios: a 2x/3x injection bottleneck throttles the
    # worm to rate 1/k — the multi-period (every-k-th-window) coalescing
    # regime.  The reference engine pays one heap event per flit per hop
    # regardless; the fast path replays whole compound periods.
    network, routing, _ = broadcast_setup
    processors = network.processors()
    for factor in (2, 3):
        flits = 512
        factors = ((network.injection_channel(processors[0]).cid, factor),)
        config = SimulationConfig(
            message_length_flits=flits, channel_latency_factors=factors
        )
        ref_config = config.with_overrides(fast_path=False)

        def _slow_once(cfg):
            simulator = WormholeSimulator(network, routing, cfg)
            simulator.submit_message(
                processors[0], [processors[17], processors[29]]
            )
            simulator.run()
            return simulator

        fast_s = ref_s = float("inf")
        fast_sim = None
        for _ in range(3):
            start = time.perf_counter()
            fast_sim = _slow_once(config)
            fast_s = min(fast_s, time.perf_counter() - start)
            start = time.perf_counter()
            ref_sim = _slow_once(ref_config)
            ref_s = min(ref_s, time.perf_counter() - start)

        assert {m: dict(msg.delivered_ns) for m, msg in fast_sim.messages.items()} == {
            m: dict(msg.delivered_ns) for m, msg in ref_sim.messages.items()
        }
        assert fast_sim.stats.flit_hops == ref_sim.stats.flit_hops
        assert fast_sim.stats.end_time_ns == ref_sim.stats.end_time_ns
        assert fast_sim.coalesce_multi_period_batches > 0
        assert factor in fast_sim.coalesce_k_histogram

        hops = fast_sim.stats.flit_hops
        scenarios.append(
            {
                "scenario": f"slow_channel_x{factor}_64sw_{flits}f",
                "message_length_flits": flits,
                "flit_hops": hops,
                "fast_seconds": round(fast_s, 6),
                "reference_seconds": round(ref_s, 6),
                "fast_flit_hops_per_sec": round(hops / fast_s),
                "reference_flit_hops_per_sec": round(hops / ref_s),
                "speedup": round(ref_s / fast_s, 2),
                "coalesced_ticks": fast_sim.coalesced_ticks,
                "coalesce_multi_period_batches": fast_sim.coalesce_multi_period_batches,
                "coalesce_k_histogram": {
                    str(k): v for k, v in sorted(fast_sim.coalesce_k_histogram.items())
                },
            }
        )

    # Region-parallel scenario: the churny 256-switch workload the
    # region-vs-whole harness (tests/test_regions.py) pins, at benchmark
    # scale.  40 unicast pairs — 10 per region of a 4-region DFS-contiguous
    # partition — are rejection-sampled so their *preferred-route closures*
    # are globally pairwise disjoint, and each pair repeats every 11 us,
    # just above the NI's injection period for a 16-flit worm.  The traffic
    # is therefore pure churn (constant worm setup/teardown, the regime the
    # coalescing fast path helps least) yet contention-free: no worm ever
    # deviates off its preferred route, the optimistic 4-shard plan
    # validates with zero conflict re-runs, and the run is embarrassingly
    # parallel — the honest upper bound for region-parallel speedup.
    network, routing, _ = scale_setup
    assignment = assign_regions(network, 4, tree=routing.tree)
    rng = random.Random(5)
    used: set[int] = set()
    pairs: list[tuple[int, int]] = []
    for region in assignment.regions:
        procs = [p for sw in region for p in network.processors_of(sw)]
        got = tries = 0
        while got < 10 and tries < 4000:
            tries += 1
            src, dst = rng.sample(procs, 2)
            closure = preferred_channels(network, routing, src, (dst,))
            if not (closure & used):
                used |= closure
                pairs.append((src, dst))
                got += 1
        assert got == 10, "rejection sampling found too few disjoint pairs"
    workload = Workload("bench-region-disjoint")
    for repeat in range(60):
        for src, dst in pairs:
            workload.specs.append(MessageSpec(src, (dst,), repeat * 11_000))
    workload.specs.sort(key=lambda spec: (spec.at_ns, spec.source))

    region_config = SimulationConfig(
        message_length_flits=16, region_parallel=True, region_count=4
    )
    start = time.perf_counter()
    region_ref = WormholeSimulator(network, routing, region_config)
    workload.submit_to(region_ref)
    region_ref.run()
    ref_s = time.perf_counter() - start
    reference = simulator_fingerprint(region_ref)
    hops = region_ref.stats.flit_hops

    for workers in (2, 4):
        start = time.perf_counter()
        result = run_region_parallel(
            network, routing, region_config, workload, max_workers=workers
        )
        par_s = time.perf_counter() - start
        # The contract always holds; wall-clock speedup is hardware-bound.
        assert result.fingerprint() == reference
        assert result.region_planned_shards == result.region_shards == 4
        assert result.region_conflict_reruns == 0
        scenarios.append(
            {
                "scenario": f"region_parallel_256sw_16f_{workers}w",
                "message_length_flits": 16,
                "flit_hops": hops,
                "messages": len(workload.specs),
                "region_count": 4,
                "max_workers": workers,
                "region_processes": result.region_processes,
                "parallel_seconds": round(par_s, 6),
                "reference_seconds": round(ref_s, 6),
                "parallel_flit_hops_per_sec": round(hops / par_s),
                "reference_flit_hops_per_sec": round(hops / ref_s),
                "speedup": round(ref_s / par_s, 2),
            }
        )
        # Parallel wall-clock beats single-process only with real cores to
        # spread the shards over; a 1-CPU container time-slices the worker
        # processes and pays the fork/pickle overhead on top.  The floor is
        # therefore doubly gated: opt-in strict mode AND >= 4 usable cores
        # (measured 2.5-3x per-shard cost reduction, so 4 cores clears 1x
        # comfortably).
        if os.environ.get("REPRO_BENCH_STRICT") and _available_cores() >= 4:
            assert ref_s / par_s > 1.0, (
                f"region-parallel @ {workers} workers: "
                f"{ref_s / par_s:.2f}x <= 1x despite >= 4 cores"
            )

    # Telemetry-sourced time attribution: where the wall clock actually goes.
    # The Figure-3 poisson workload is re-run with a ``repro.obs`` recorder
    # attached, so the instrumented probe attributes every coalescing window
    # to its exit tier — the same per-tier table ``repro-spam obs summarize``
    # prints.  Telemetry is observability-only (lint rule R9 keeps it out of
    # every fingerprinted result), so the instrumented run's observables are
    # bit-identical to the timed runs above.
    f3_network, f3_routing, f3_workloads, f3_config = figure3_setup
    engine_tel = Telemetry(track="engine")
    instrumented = WormholeSimulator(
        f3_network, f3_routing, f3_config, telemetry=engine_tel
    )
    f3_workloads["poisson"].submit_to(instrumented)
    instrumented.run()
    engine_summary = summarize_snapshot(snapshot_dict(engine_tel))

    # Per-shard region timings: the disjoint region-parallel scenario again,
    # now with each worker's shard telemetry shipped back and merged
    # parent-side (tracks shard0..shard3).
    region_tel = Telemetry(track="region")
    region_result = run_region_parallel(
        network, routing, region_config, workload, max_workers=2,
        telemetry=region_tel,
    )
    assert region_result.fingerprint() == reference
    shard_rows = sorted(
        (
            {
                "track": span["track"],
                "messages": span["attrs"].get("messages"),
                "run_ms": round(span["dur_ns"] / 1e6, 3),
            }
            for span in region_tel.iter_spans("region.shard.run")
        ),
        key=lambda row: row["track"],
    )

    payload = {
        "benchmark": "simulator_throughput",
        "metric": "flit_hops_per_sec",
        "scenarios": scenarios,
        "time_attribution": {
            "workload": "figure3_mixed_128sw_128f_poisson",
            "engine_probe_tiers": engine_summary["tiers"],
            "region_parallel_shards": {
                "scenario": "region_parallel_256sw_16f_2w",
                "shards": shard_rows,
            },
        },
    }
    path = Path(results_dir) / "simulator_throughput.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n===== simulator_throughput.json =====\n{json.dumps(payload, indent=2)}\n")
