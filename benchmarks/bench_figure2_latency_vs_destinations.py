"""Benchmark harness regenerating **Figure 2** of the paper.

Paper: "message latency was measured for a single multicast with a varying
number of destinations ... for networks comprising 128 and 256 nodes"; the
resulting curves are flat at roughly 11-14 µs, essentially independent of
both the destination count and the network size.

The harness sweeps the destination count in 128- and 256-switch irregular
networks and prints/stores one latency series per network size — the same
two curves the figure shows.  Absolute values depend on the random topology
instance; the *shape* assertions (flatness, near-equality of the two
networks, > 10 µs startup floor) are checked here.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import series_side_by_side
from repro.experiments.figure2 import Figure2Config, run_figure2


@pytest.mark.benchmark(group="figure2")
def test_figure2_latency_vs_destinations(benchmark, record_result):
    config = Figure2Config()

    result = benchmark.pedantic(lambda: run_figure2(config), rounds=1, iterations=1)

    table = series_side_by_side(result)
    header = (
        f"Figure 2 reproduction — latency (us) vs number of destinations\n"
        f"scale={result.parameters['scale']}, "
        f"message length={result.parameters['message_length_flits']} flits, "
        f"samples/point={result.parameters['samples_per_point']}\n"
    )
    record_result("figure2_latency_vs_destinations", header + table)

    # Shape checks mirroring the paper's observations.
    for series in result.series:
        means = series.means()
        assert all(mean > 10.0 for mean in means), "latency must exceed the 10 us startup"
        assert series.spread() < 0.35 * min(means), (
            "latency should be essentially independent of the destination count"
        )
    if len(result.series) == 2:
        small, large = (series.max_mean() for series in result.series)
        assert abs(small - large) < 0.5 * min(small, large), (
            "latency should be largely independent of the network size"
        )
