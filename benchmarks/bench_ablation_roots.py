"""Ablation benchmark: spanning-tree root selection.

The paper picks "an arbitrary vertex" as the root and notes in §5 that
"judicious selection of spanning trees for the underlying routing algorithm
may have significant effects on performance".  This benchmark compares root
selection heuristics (graph centre, maximum degree, first switch) on the same
single-multicast workload and records both the resulting tree height and the
measured latency.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.experiments.ablations import AblationConfig, run_root_ablation

STRATEGIES = ("center", "max-degree", "first")


@pytest.mark.benchmark(group="ablations")
def test_root_selection_ablation(benchmark, record_result):
    config = AblationConfig()

    rows = benchmark.pedantic(
        lambda: run_root_ablation(STRATEGIES, config), rounds=1, iterations=1
    )

    header = (
        "Root-selection ablation — single multicast latency (us), "
        f"{config.network_size}-switch irregular network, "
        f"{config.num_destinations} destinations\n"
    )
    record_result("ablation_root_selection", header + format_table(rows))

    by_name = {row["root_strategy"]: row for row in rows}
    assert set(by_name) == set(STRATEGIES)
    # A central root never yields a taller tree than an arbitrary root.
    assert by_name["center"]["tree_height"] <= by_name["first"]["tree_height"]
    # Latencies stay in the paper's 10-20 us band on an idle network.
    for row in rows:
        assert 10.0 < row["latency_us"] < 20.0
