"""Ablation benchmark: selection function.

The paper's §3.1 notes that "a number of possible selection functions could
be used to select a channel from those provided by the routing function" and
its simulations use distance-to-LCA priority.  This benchmark compares that
policy against a channel-id priority and a random priority on the same
single-multicast workload.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.experiments.ablations import AblationConfig, run_selection_ablation

STRATEGIES = ("distance-to-lca", "first-allowed", "random")


@pytest.mark.benchmark(group="ablations")
def test_selection_function_ablation(benchmark, record_result):
    config = AblationConfig()

    rows = benchmark.pedantic(
        lambda: run_selection_ablation(STRATEGIES, config), rounds=1, iterations=1
    )

    header = (
        "Selection-function ablation — single multicast latency (us), "
        f"{config.network_size}-switch irregular network, "
        f"{config.num_destinations} destinations\n"
    )
    record_result("ablation_selection", header + format_table(rows))

    by_name = {row["selection"]: row["latency_us"] for row in rows}
    assert set(by_name) == set(STRATEGIES)
    # The paper's distance-to-LCA policy is never beaten by more than noise:
    # it must be within 5% of the best policy on this workload.
    best = min(by_name.values())
    assert by_name["distance-to-lca"] <= best * 1.05
