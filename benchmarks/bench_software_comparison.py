"""Benchmark harness for the paper's §4 hardware-vs-software comparison.

Paper: "for the latency parameters used here, SPAM incurs a latency of under
14 µs for a single broadcast in a 256 node network.  In contrast, the
theoretical lower bound for software-based multicast to d destinations is
⌈log₂(d+1)⌉ [startups], implying a lower bound of 90 µs in this case; a more
than six-fold difference."

The harness measures SPAM's single-multicast latency for several destination
counts in a 256-switch irregular network, compares it against the
``⌈log₂(d+1)⌉ × 10 µs`` lower bound, and additionally *executes* a
binomial-tree unicast-based multicast on the same simulator (on top of
classic up*/down* routing) so the comparison is measured-vs-measured, not
just measured-vs-bound.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.experiments.software_comparison import (
    SoftwareComparisonConfig,
    run_software_comparison,
)


@pytest.mark.benchmark(group="software-comparison")
def test_software_multicast_comparison(benchmark, record_result):
    config = SoftwareComparisonConfig()

    rows = benchmark.pedantic(lambda: run_software_comparison(config), rounds=1, iterations=1)

    header = (
        "SPAM vs software (unicast-based) multicast — 256-switch irregular network\n"
        "software_bound_us = ceil(log2(d+1)) * 10 us startup (lower bound)\n"
        "software_measured_us = binomial-tree unicast multicast executed on the simulator\n"
    )
    record_result("software_comparison", header + format_table(rows))

    by_count = {row["destinations"]: row for row in rows}
    broadcast = by_count[max(by_count)]
    # The paper's headline: a broadcast-sized multicast beats the software
    # lower bound by a large factor (the paper reports > 6x at 256 nodes).
    assert broadcast["software_bound_us"] >= 80.0
    assert broadcast["spam_latency_us"] < 25.0
    assert broadcast["speedup"] > 4.0
    # The executable software baseline can only be slower than its bound.
    if "software_measured_us" in broadcast:
        assert broadcast["software_measured_us"] >= broadcast["software_bound_us"] * 0.95
        assert broadcast["measured_speedup"] >= broadcast["speedup"] * 0.9
    # The advantage grows with the destination count.
    speedups = [by_count[count]["speedup"] for count in sorted(by_count)]
    assert speedups[-1] >= speedups[0]
