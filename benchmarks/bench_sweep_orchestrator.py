"""Benchmark harness for the sweep orchestration subsystem.

Measures the two costs the `repro.sweeps` layer trades between:

* **cold** — a Figure-3 style sweep computed from scratch through
  :func:`repro.sweeps.run_sweep` with a fresh content-addressed store
  (simulation dominates; the store adds per-point checkpoint appends);
* **warm** — the identical sweep re-run against the populated store
  (pure index lookups + JSONL reads; no simulator involvement).

Asserts the subsystem's contract along the way: the warm run computes
nothing, returns bit-identical latencies, and is at least 10x faster than
the cold run (the acceptance floor; in practice it is orders of magnitude).
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.common import current_scale
from repro.experiments.figure3 import Figure3Config, figure3_specs
from repro.sweeps import ResultStore, run_sweep


@pytest.mark.benchmark(group="sweeps")
def test_sweep_cold_vs_warm_cache(benchmark, record_result, tmp_path):
    config = Figure3Config(
        network_size=64,
        multicast_degrees=(8, 16),
        arrival_rates_per_us=(0.005, 0.02),
        scale=current_scale(),
    )
    specs = figure3_specs(config)
    store_dir = tmp_path / "sweep-cache"

    t0 = time.perf_counter()
    cold = run_sweep(specs, store=ResultStore(store_dir))
    cold_seconds = time.perf_counter() - t0

    warm = benchmark.pedantic(
        lambda: run_sweep(specs, store=ResultStore(store_dir)), rounds=1, iterations=1
    )
    warm_seconds = benchmark.stats.stats.mean if benchmark.stats else 0.0

    assert warm.computed == 0 and warm.cache_hits == len(specs)
    assert [r.latencies_us for r in warm.results] == [
        r.latencies_us for r in cold.results
    ], "warm-cache results must be bit-identical to the cold run"
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    assert speedup >= 10.0, f"warm cache only {speedup:.1f}x faster than cold"

    record_result(
        "sweep_orchestrator_cache",
        "Sweep orchestrator — cold compute vs warm content-addressed cache\n"
        f"points={len(specs)}, scale={config.resolved_scale().name}\n"
        f"cold: {cold_seconds:.3f} s ({cold.summary()})\n"
        f"warm: {warm_seconds:.6f} s ({warm.summary()})\n"
        f"speedup: {speedup:.0f}x",
    )
