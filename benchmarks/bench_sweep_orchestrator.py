"""Benchmark harness for the sweep orchestration subsystem.

Measures the two costs the `repro.sweeps` layer trades between:

* **cold** — a Figure-3 style sweep computed from scratch through
  :func:`repro.sweeps.run_sweep` with a fresh content-addressed store
  (simulation dominates; the store adds per-point checkpoint appends);
* **warm** — the identical sweep re-run against the populated store
  (pure index lookups + JSONL reads; no simulator involvement).

Asserts the subsystem's contract along the way: the warm run computes
nothing, returns bit-identical latencies, and is at least 10x faster than
the cold run (the acceptance floor; in practice it is orders of magnitude).
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.common import current_scale
from repro.experiments.figure3 import Figure3Config, figure3_specs
from repro.sweeps import ResultStore, SweepPointSpec, run_sweep


@pytest.mark.benchmark(group="sweeps")
def test_sweep_cold_vs_warm_cache(benchmark, record_result, tmp_path):
    config = Figure3Config(
        network_size=64,
        multicast_degrees=(8, 16),
        arrival_rates_per_us=(0.005, 0.02),
        scale=current_scale(),
    )
    specs = figure3_specs(config)
    store_dir = tmp_path / "sweep-cache"

    t0 = time.perf_counter()
    cold = run_sweep(specs, store=ResultStore(store_dir))
    cold_seconds = time.perf_counter() - t0

    warm = benchmark.pedantic(
        lambda: run_sweep(specs, store=ResultStore(store_dir)), rounds=1, iterations=1
    )
    warm_seconds = benchmark.stats.stats.mean if benchmark.stats else 0.0

    assert warm.computed == 0 and warm.cache_hits == len(specs)
    assert [r.latencies_us for r in warm.results] == [
        r.latencies_us for r in cold.results
    ], "warm-cache results must be bit-identical to the cold run"
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    assert speedup >= 10.0, f"warm cache only {speedup:.1f}x faster than cold"

    record_result(
        "sweep_orchestrator_cache",
        "Sweep orchestrator — cold compute vs warm content-addressed cache\n"
        f"points={len(specs)}, scale={config.resolved_scale().name}\n"
        f"cold: {cold_seconds:.3f} s ({cold.summary()})\n"
        f"warm: {warm_seconds:.6f} s ({warm.summary()})\n"
        f"speedup: {speedup:.0f}x",
    )


@pytest.mark.benchmark(group="sweeps")
def test_batched_replication_throughput(benchmark, record_result, tmp_path):
    """Batched Monte-Carlo backend vs one-task-per-point, replication-heavy.

    The scenario is the regime the batched mode exists for: many Monte-Carlo
    replications of one Figure-3 style mixed-traffic point on a single large
    topology, each replication differing only in its workload/selection
    seeds.  The stateful ``"random"`` selection forces the per-point path to
    rebuild the network, spanning tree, labelling and ancestry for *every*
    replication (sharing a stateful RNG would break the content-addressed
    cache contract), while the batched path builds that skeleton once and
    reseeds only the selection — which is where the ≥5x comes from.

    Asserts bit-identical results (the batched-mode contract) and the ≥5x
    replications/sec acceptance floor from the issue.
    """
    replications = 12
    specs = [
        SweepPointSpec(
            workload_kind="mixed",
            network_size=192,
            topology_seed=7,
            message_length_flits=16,
            workload_params=(
                ("rate_per_us", 0.02),
                ("multicast_destinations", 8),
                ("num_messages", 4),
                ("multicast_fraction", 0.25),
                ("arrival", "poisson"),
            ),
            workload_seed=100 + i,
            selection="random",
            selection_seed=i,
            label="replication",
            x=float(i),
        )
        for i in range(replications)
    ]

    t0 = time.perf_counter()
    per_point = run_sweep(specs, store=ResultStore(tmp_path / "per-point"))
    per_point_seconds = time.perf_counter() - t0

    batched = benchmark.pedantic(
        lambda: run_sweep(
            specs,
            store=ResultStore(tmp_path / "batched"),
            batch_replications=replications,
        ),
        rounds=1,
        iterations=1,
    )
    batched_seconds = benchmark.stats.stats.mean if benchmark.stats else 0.0

    assert batched.results == per_point.results, (
        "batched replications must be bit-identical to the per-point path"
    )
    assert batched.computed == replications and batched.cache_hits == 0
    speedup = per_point_seconds / max(batched_seconds, 1e-9)
    assert speedup >= 5.0, (
        f"batched mode only {speedup:.1f}x faster than per-point"
    )

    per_point_rate = replications / per_point_seconds
    batched_rate = replications / max(batched_seconds, 1e-9)
    record_result(
        "sweep_orchestrator_batched",
        "Sweep orchestrator — batched Monte-Carlo replications vs "
        "one-task-per-point\n"
        f"replications={replications}, network_size=192, "
        "selection=random (stateful: per-point path rebuilds the skeleton "
        "every replication)\n"
        f"per-point: {per_point_seconds:.3f} s "
        f"({per_point_rate:.1f} replications/s)\n"
        f"batched:   {batched_seconds:.3f} s "
        f"({batched_rate:.1f} replications/s)\n"
        f"speedup: {speedup:.1f}x",
    )
