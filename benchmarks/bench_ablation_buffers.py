"""Ablation benchmark: input/output buffer depth (paper §5, future work).

The paper stresses that SPAM's correctness needs only single-flit input
buffers and conjectures that "by using larger input buffers ... message
latency could potentially be further reduced".  This benchmark sweeps the
buffer depth for a Figure-2-style single multicast and records the latency.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.experiments.ablations import AblationConfig, run_buffer_depth_ablation

DEPTHS = (1, 2, 4, 8)


@pytest.mark.benchmark(group="ablations")
def test_buffer_depth_ablation(benchmark, record_result):
    config = AblationConfig()

    rows = benchmark.pedantic(
        lambda: run_buffer_depth_ablation(DEPTHS, config), rounds=1, iterations=1
    )

    header = (
        "Buffer-depth ablation — single multicast latency (us), "
        f"{config.network_size}-switch irregular network, "
        f"{config.num_destinations} destinations\n"
    )
    record_result("ablation_buffer_depth", header + format_table(rows))

    assert [row["buffer_depth"] for row in rows] == list(DEPTHS)
    single_flit = rows[0]["latency_us"]
    deepest = rows[-1]["latency_us"]
    # Single-flit buffers are sufficient (correctness) and deeper buffers
    # never hurt an uncongested multicast (the paper's conjecture is that
    # they can only help).
    assert single_flit > 10.0
    assert deepest <= single_flit + 0.1
