"""Classic up*/down* unicast routing (Schroeder et al., Autonet).

Up*/down* routing is the substrate SPAM generalises: a legal route uses zero
or more up channels followed by zero or more down channels, and never an up
channel after a down channel.  It is deadlock-free on any topology and is
the standard deadlock-free unicast algorithm for irregular switch networks,
which is why the software (unicast-based) multicast baseline runs on top of
it.

Compared with SPAM's unicast rules, classic up*/down* does not distinguish
down tree from down cross channels; feasibility of a down move only requires
that the endpoint can still reach the destination using down channels alone.
"""

from __future__ import annotations

from collections import deque

from ..core.decision import RoutingDecision, one_of
from ..core.interface import MessageLike, RoutingAlgorithm
from ..core.phases import Phase
from ..core.selection import DistanceToTargetSelection, SelectionFunction
from ..core.unicast import RoutingOption
from ..errors import RoutingError
from ..spanning.labeling import ChannelLabeling, label_channels
from ..spanning.roots import select_root
from ..spanning.tree import SpanningTree, bfs_spanning_tree
from ..topology.channels import Channel
from ..topology.network import Network

__all__ = ["UpDownRouting"]


class UpDownRouting(RoutingAlgorithm):
    """Adaptive up*/down* unicast routing.

    Parameters
    ----------
    network:
        The network to route on.
    tree:
        Spanning tree defining the up/down orientation (BFS tree at the
        graph centre by default via :meth:`build`).
    selection:
        Selection function ordering the adaptive choices; defaults to the
        distance-to-target priority so that comparisons against SPAM are not
        confounded by the selection policy.
    """

    name = "updown"
    supports_multicast = False

    def __init__(
        self,
        network: Network,
        tree: SpanningTree,
        selection: SelectionFunction | None = None,
    ) -> None:
        if tree.network is not network:
            raise RoutingError("spanning tree belongs to a different network")
        self.network = network
        self.tree = tree
        self.labeling: ChannelLabeling = label_channels(network, tree)
        self.selection: SelectionFunction = selection or DistanceToTargetSelection(network)
        self._down_reach: list[int] = self._compute_down_reachability()

    @classmethod
    def build(
        cls,
        network: Network,
        root: int | None = None,
        root_strategy: str = "center",
        selection: SelectionFunction | None = None,
        seed: int = 0,
    ) -> "UpDownRouting":
        """Build up*/down* routing with a BFS spanning tree."""
        if root is None:
            root = select_root(network, root_strategy, seed=seed)
        tree = bfs_spanning_tree(network, root)
        return cls(network, tree, selection)

    # ------------------------------------------------------------------
    def _compute_down_reachability(self) -> list[int]:
        """``down_reach[u]`` = bitmask of nodes reachable from ``u`` using only
        down channels (including ``u`` itself).

        Down channels are acyclic (they strictly increase the pair
        ``(tree level, node id)`` lexicographically), so a worklist that
        re-propagates a node's set to its predecessors whenever it grows
        converges quickly.
        """
        network = self.network
        n = network.num_nodes
        reach = [1 << v for v in range(n)]
        predecessors: list[list[int]] = [[] for _ in range(n)]
        for channel in network.channels():
            if not self.labeling.is_up(channel):
                predecessors[channel.dst].append(channel.src)
        queue = deque(range(n))
        queued = [True] * n
        while queue:
            v = queue.popleft()
            queued[v] = False
            mask = reach[v]
            for pred in predecessors[v]:
                merged = reach[pred] | mask
                if merged != reach[pred]:
                    reach[pred] = merged
                    if not queued[pred]:
                        queue.append(pred)
                        queued[pred] = True
        return reach

    def down_reachable(self, from_node: int, to_node: int) -> bool:
        """``True`` if ``to_node`` is reachable from ``from_node`` using only
        down channels."""
        return bool(self._down_reach[from_node] >> to_node & 1)

    # ------------------------------------------------------------------
    def decide(
        self,
        message: MessageLike,
        switch: int,
        in_channel: Channel | None,
    ) -> RoutingDecision:
        """Up*/down* decision: any up channel while ascending, any feasible
        down channel at any time, never up after down."""
        self.validate_destinations(message)
        destination = message.destinations[0]
        phase = Phase.UP
        if in_channel is not None and not self.labeling.is_up(in_channel):
            phase = Phase.DOWN_TREE  # "down" — tree/cross distinction is irrelevant here

        options: list[RoutingOption] = []
        if phase is Phase.UP:
            for channel in self.labeling.up_channels_from(switch):
                options.append(RoutingOption(channel, Phase.UP))
        for channel in self.labeling.down_channels_from(switch):
            if self._down_reach[channel.dst] >> destination & 1:
                options.append(RoutingOption(channel, Phase.DOWN_TREE))
        if not options:
            raise RoutingError(
                f"up*/down* offers no legal channel at switch {switch} towards {destination}"
            )
        ordered = self.selection.order(options, destination)
        return one_of([option.channel for option in ordered])

    def unicast_route(self, source: int, destination: int) -> list[Channel]:
        """Contention-free path from ``source`` to ``destination`` (first
        choice at every hop), starting with the injection channel."""
        if source == destination:
            raise RoutingError("source and destination must differ")
        message = _Probe(source, (destination,))
        injection = self.network.injection_channel(source)
        path = [injection]
        switch = injection.dst
        in_channel: Channel | None = None
        for _ in range(4 * self.network.num_nodes):
            decision = self.decide(message, switch, in_channel)
            channel = decision.channels[0]
            path.append(channel)
            if channel.dst == destination:
                return path
            in_channel = channel
            switch = channel.dst
        raise RoutingError("up*/down* route did not terminate")


class _Probe:
    __slots__ = ("source", "destinations", "routing_data")

    def __init__(self, source: int, destinations: tuple[int, ...]) -> None:
        self.source = source
        self.destinations = destinations
        self.routing_data: dict = {}
