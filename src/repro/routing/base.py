"""Compatibility re-export of the routing-algorithm interface.

The abstract :class:`~repro.core.interface.RoutingAlgorithm` lives in
:mod:`repro.core.interface` (so that the dependency graph between
sub-packages stays acyclic: ``topology → spanning → core → routing →
simulator``).  This module re-exports it under the historically natural
location ``repro.routing.base`` for users who think of the interface as part
of the routing-algorithm collection.
"""

from ..core.interface import MessageLike, RoutingAlgorithm

__all__ = ["MessageLike", "RoutingAlgorithm"]
