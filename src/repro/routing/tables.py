"""Precomputed routing-table dumps.

Hardware routers in switch-based networks (e.g. Autonet, Myrinet switches)
implement routing with per-switch tables rather than by evaluating the
routing function on the fly.  This module materialises SPAM's routing
relation into explicit tables, which serves three purposes:

* it documents exactly what a hardware implementation would need to store;
* it gives the verification utilities a finite enumeration of the routing
  relation to build the channel dependency graph from;
* it allows tests to cross-check the on-the-fly routing function against an
  independently constructed table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.phases import Phase
from ..core.spam import SpamRouting
from ..core.unicast import unicast_options

__all__ = ["RoutingTableEntry", "RoutingTable", "build_unicast_table"]


@dataclass(frozen=True, slots=True)
class RoutingTableEntry:
    """Allowed output channels for one (switch, incoming phase, target) triple."""

    switch: int
    incoming_phase: Phase
    target: int
    channel_ids: tuple[int, ...]


@dataclass
class RoutingTable:
    """A full unicast routing table for one SPAM configuration.

    Entries are indexed by ``(switch, incoming_phase, target)``.  Targets
    include every processor (unicast destinations) and every switch
    (possible LCA targets of multicasts).
    """

    entries: dict[tuple[int, Phase, int], RoutingTableEntry] = field(default_factory=dict)

    def lookup(self, switch: int, incoming_phase: Phase, target: int) -> RoutingTableEntry:
        """Table entry for the given triple (raises ``KeyError`` if absent)."""
        return self.entries[(switch, incoming_phase, target)]

    def channels_for(self, switch: int, incoming_phase: Phase, target: int) -> tuple[int, ...]:
        """Allowed output channel ids, or an empty tuple when none exist."""
        entry = self.entries.get((switch, incoming_phase, target))
        return entry.channel_ids if entry is not None else ()

    @property
    def size(self) -> int:
        """Number of table entries (a proxy for hardware table cost)."""
        return len(self.entries)

    def max_fanout(self) -> int:
        """The largest number of alternatives in any entry (adaptivity degree)."""
        return max((len(e.channel_ids) for e in self.entries.values()), default=0)


def build_unicast_table(routing: SpamRouting, targets: list[int] | None = None) -> RoutingTable:
    """Enumerate SPAM's unicast routing relation into a :class:`RoutingTable`.

    Parameters
    ----------
    routing:
        A configured :class:`~repro.core.spam.SpamRouting` instance.
    targets:
        Restrict the table to these target nodes (defaults to every node of
        the network, i.e. all processors and all potential LCA switches).
    """
    network = routing.network
    labeling = routing.labeling
    ancestry = routing.ancestry
    if targets is None:
        targets = list(network.nodes())
    table = RoutingTable()
    for switch in network.switches():
        for phase in (Phase.UP, Phase.DOWN_CROSS, Phase.DOWN_TREE):
            for target in targets:
                if target == switch:
                    continue
                options = unicast_options(labeling, ancestry, switch, phase, target)
                if not options:
                    continue
                entry = RoutingTableEntry(
                    switch=switch,
                    incoming_phase=phase,
                    target=target,
                    channel_ids=tuple(sorted(option.channel.cid for option in options)),
                )
                table.entries[(switch, phase, target)] = entry
    return table
