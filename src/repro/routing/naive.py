"""Naive minimal routing — a deliberately unprotected baseline.

This algorithm routes every worm along channels that strictly decrease the
hop distance to the destination, with *no* ordering discipline over the
channels.  On topologies with cycles (rings, tori, most irregular networks)
this is the textbook recipe for deadlock: worms can acquire channels around
a cycle and wait for each other forever.

It exists for two reasons:

* the deadlock tests use it to demonstrate that the simulator's deadlock
  detector actually fires (so the absence of deadlocks in the SPAM runs is
  meaningful evidence, not a blind spot);
* the verification utilities use it as the canonical example of a routing
  relation whose channel dependency graph is cyclic.

Never use it for performance experiments.
"""

from __future__ import annotations

from collections import deque

from ..core.decision import RoutingDecision, one_of
from ..core.interface import MessageLike, RoutingAlgorithm
from ..errors import RoutingError
from ..topology.channels import Channel
from ..topology.network import Network

__all__ = ["NaiveMinimalRouting"]


class NaiveMinimalRouting(RoutingAlgorithm):
    """Shortest-path adaptive routing with no deadlock avoidance."""

    name = "naive-minimal"
    supports_multicast = False

    def __init__(self, network: Network) -> None:
        self.network = network
        self._distance_to: dict[int, dict[int, int]] = {}

    def _distances(self, destination: int) -> dict[int, int]:
        """Hop distances from every node to ``destination`` (cached)."""
        cached = self._distance_to.get(destination)
        if cached is not None:
            return cached
        dist = {destination: 0}
        queue = deque([destination])
        while queue:
            u = queue.popleft()
            for v in self.network.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        self._distance_to[destination] = dist
        return dist

    def decide(
        self,
        message: MessageLike,
        switch: int,
        in_channel: Channel | None,
    ) -> RoutingDecision:
        """Offer every channel that strictly reduces the distance to go."""
        self.validate_destinations(message)
        destination = message.destinations[0]
        dist = self._distances(destination)
        here = dist.get(switch)
        if here is None:
            raise RoutingError(f"destination {destination} unreachable from {switch}")
        candidates = [
            channel
            for channel in self.network.channels_from(switch)
            if dist.get(channel.dst, float("inf")) < here
        ]
        if not candidates:
            raise RoutingError(f"no minimal channel from {switch} towards {destination}")
        candidates.sort(key=lambda channel: (dist[channel.dst], channel.cid))
        return one_of(candidates)
