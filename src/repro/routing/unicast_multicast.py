"""Unicast-based (software) multicast — the baseline SPAM is compared against.

Without hardware multicast support, a message is delivered to ``d``
destinations by a sequence of unicast communication *phases*: in every phase
each processor that already holds the message forwards it to one processor
that does not.  The number of phases is therefore at least
``ceil(log2(d + 1))`` (McKinley et al.), and each phase pays the full
communication startup latency — which the paper notes "can be several orders
of magnitude larger than the actual network latency".

This module provides

* :func:`binomial_schedule` — the forwarding schedule of the classic
  binomial-tree software multicast;
* :class:`UnicastMulticastScheduler` — an executable version of the scheme:
  given a delivery callback from the simulator it injects the follow-on
  unicasts, so the baseline's end-to-end latency can be *measured* on the
  same flit-level simulator as SPAM (not just bounded analytically);
* :func:`minimum_phases` — the ``ceil(log2(d+1))`` lower bound used by the
  analytic comparison in :mod:`repro.analysis.bounds`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import WorkloadError

__all__ = [
    "minimum_phases",
    "binomial_schedule",
    "ForwardingStep",
    "UnicastMulticastScheduler",
]


def minimum_phases(num_destinations: int) -> int:
    """Lower bound on the number of unicast phases to reach ``d`` destinations.

    ``ceil(log2(d + 1))`` — in each phase the number of informed processors
    can at most double (McKinley et al., IEEE TPDS 1994).
    """
    if num_destinations < 0:
        raise WorkloadError("number of destinations cannot be negative")
    if num_destinations == 0:
        return 0
    return math.ceil(math.log2(num_destinations + 1))


@dataclass(frozen=True, slots=True)
class ForwardingStep:
    """One unicast of the software multicast schedule.

    Attributes
    ----------
    phase:
        Zero-based communication phase index.
    sender:
        Processor that forwards the message (the source, or a destination
        that received it in an earlier phase).
    recipient:
        Processor that receives the message in this phase.
    """

    phase: int
    sender: int
    recipient: int


def binomial_schedule(source: int, destinations: Sequence[int]) -> list[ForwardingStep]:
    """Binomial-tree forwarding schedule reaching all destinations.

    In phase ``p`` the ``2**p`` processors that hold the message (source plus
    the recipients of earlier phases, in schedule order) each forward to one
    new destination.  The schedule achieves the ``ceil(log2(d+1))`` phase
    lower bound.
    """
    if source in destinations:
        raise WorkloadError("the source cannot appear among the destinations")
    if len(set(destinations)) != len(destinations):
        raise WorkloadError("destinations must be distinct")
    holders = [source]
    remaining = list(destinations)
    steps: list[ForwardingStep] = []
    phase = 0
    while remaining:
        senders = list(holders)
        for sender in senders:
            if not remaining:
                break
            recipient = remaining.pop(0)
            steps.append(ForwardingStep(phase=phase, sender=sender, recipient=recipient))
            holders.append(recipient)
        phase += 1
    return steps


@dataclass
class UnicastMulticastScheduler:
    """Drives a software multicast on top of any unicast-capable simulator.

    The scheduler is deliberately simulator-agnostic: the experiment driver
    registers :meth:`on_delivery` as the simulator's message-delivery
    callback and calls :meth:`initial_sends` to obtain the unicasts the
    source must inject at time zero.  Each subsequent delivery triggers the
    forwarding unicasts of the recipient according to the binomial schedule.

    Attributes
    ----------
    source:
        The multicast source processor.
    destinations:
        The multicast destinations.
    steps:
        The full binomial schedule.
    completed:
        Destinations that have received the payload so far.
    """

    source: int
    destinations: tuple[int, ...]
    steps: list[ForwardingStep] = field(init=False)
    completed: set[int] = field(init=False, default_factory=set)

    def __post_init__(self) -> None:
        self.destinations = tuple(self.destinations)
        self.steps = binomial_schedule(self.source, self.destinations)
        self._sends_by_sender: dict[int, list[ForwardingStep]] = {}
        for step in self.steps:
            self._sends_by_sender.setdefault(step.sender, []).append(step)

    # ------------------------------------------------------------------
    @property
    def num_phases(self) -> int:
        """Number of communication phases in the schedule."""
        return max((step.phase for step in self.steps), default=-1) + 1

    def initial_sends(self) -> list[ForwardingStep]:
        """Unicasts the source itself must inject (one per phase)."""
        return list(self._sends_by_sender.get(self.source, []))

    def on_delivery(self, recipient: int) -> list[ForwardingStep]:
        """Record a delivery and return the unicasts ``recipient`` must now send.

        The simulator (or the experiment driver sitting on top of it) is
        responsible for actually injecting the returned unicasts, applying
        the per-message startup latency exactly as it does for any other
        send.
        """
        if recipient == self.source or recipient in self.completed:
            return []
        if recipient not in self.destinations:
            raise WorkloadError(f"unexpected delivery to {recipient}")
        self.completed.add(recipient)
        return list(self._sends_by_sender.get(recipient, []))

    @property
    def finished(self) -> bool:
        """``True`` once every destination has received the payload."""
        return len(self.completed) == len(self.destinations)
