"""Routing algorithms: the abstract interface consumed by the simulator,
the classic up*/down* unicast baseline, the software (unicast-based)
multicast baseline and routing-table materialisation utilities.

SPAM itself lives in :mod:`repro.core`; this package hosts everything the
paper compares against or builds upon.
"""

from .base import MessageLike, RoutingAlgorithm
from .naive import NaiveMinimalRouting
from .tables import RoutingTable, RoutingTableEntry, build_unicast_table
from .unicast_multicast import (
    ForwardingStep,
    UnicastMulticastScheduler,
    binomial_schedule,
    minimum_phases,
)
from .updown import UpDownRouting

__all__ = [
    "RoutingAlgorithm",
    "MessageLike",
    "UpDownRouting",
    "NaiveMinimalRouting",
    "UnicastMulticastScheduler",
    "ForwardingStep",
    "binomial_schedule",
    "minimum_phases",
    "RoutingTable",
    "RoutingTableEntry",
    "build_unicast_table",
]
