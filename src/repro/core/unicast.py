"""The SPAM unicast routing function (paper §3.1).

A worm is routed through one or more up channels, followed by zero or more
down cross channels, followed by one or more down tree channels.  Routers
compute the set of allowable outgoing channels from the label of the channel
on which the header arrived and the (extended-)ancestor relations:

1. if the incoming header enters the router on an up channel, any outgoing
   up channel may be used;
2. if the incoming header enters on an up channel or a down cross channel,
   any outgoing down cross channel may be used if its endpoint is an
   extended ancestor of the destination;
3. in all cases, a down tree channel may be used if its endpoint is an
   ancestor of the destination.

This module implements the *routing function* only — the enumeration of
allowable channels.  Choosing among them is the job of the selection
functions in :mod:`repro.core.selection`, and acquiring them at run time is
the job of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RoutingError
from ..spanning.ancestry import Ancestry
from ..spanning.labeling import ChannelLabeling
from ..topology.channels import Channel
from .phases import Phase, phase_of_label

__all__ = ["RoutingOption", "unicast_options", "legal_next_channels"]


@dataclass(frozen=True, slots=True)
class RoutingOption:
    """One allowable outgoing channel together with the phase it leads to."""

    channel: Channel
    next_phase: Phase


def unicast_options(
    labeling: ChannelLabeling,
    ancestry: Ancestry,
    node: int,
    incoming_phase: Phase,
    target: int,
) -> list[RoutingOption]:
    """All channels the SPAM routing function permits at ``node``.

    Parameters
    ----------
    labeling:
        Channel labelling of the network.
    ancestry:
        Precomputed ancestor / extended-ancestor relations.
    node:
        The switch currently holding the header.
    incoming_phase:
        Phase implied by the channel on which the header entered ``node``
        (:data:`Phase.UP` for a freshly injected worm, because injection
        channels are up channels).
    target:
        The node the worm is being routed to.  For a unicast message this is
        the destination processor; for the unicast prefix of a multicast it
        is the destination set's least common ancestor.

    Returns
    -------
    list[RoutingOption]
        Unordered list of allowable channels (the selection function imposes
        the order).  The list is guaranteed to be non-empty whenever
        ``node != target`` and the network is connected; an empty result
        indicates an internal inconsistency and is reported by
        :func:`legal_next_channels`.
    """
    options: list[RoutingOption] = []
    target_anc_mask = ancestry.ancestor_mask(target)
    target_ext_mask = ancestry.extended_ancestor_mask(target)

    # Rule 1: up channels are allowed while still in the up phase.
    if incoming_phase is Phase.UP:
        for channel in labeling.up_channels_from(node):
            options.append(RoutingOption(channel, Phase.UP))

    # Rule 2: down cross channels whose endpoint is an extended ancestor of
    # the target are allowed from the up phase or the down-cross phase.
    if incoming_phase is not Phase.DOWN_TREE:
        for channel in labeling.down_cross_channels_from(node):
            if target_ext_mask >> channel.dst & 1:
                options.append(RoutingOption(channel, Phase.DOWN_CROSS))

    # Rule 3: down tree channels whose endpoint is an ancestor of the target
    # are allowed in every phase.
    for channel in labeling.down_tree_channels_from(node):
        if target_anc_mask >> channel.dst & 1:
            options.append(RoutingOption(channel, Phase.DOWN_TREE))

    return options


def legal_next_channels(
    labeling: ChannelLabeling,
    ancestry: Ancestry,
    node: int,
    incoming_phase: Phase,
    target: int,
) -> list[RoutingOption]:
    """Like :func:`unicast_options` but raises when no channel is allowed.

    The SPAM routing function always offers at least one channel while the
    header has not reached its target (up channels exist everywhere except
    the root, and the root is an ancestor of every node), so an empty result
    here indicates a disconnected network or an inconsistent labelling.
    """
    if node == target:
        raise RoutingError(f"header is already at its target {target}")
    options = unicast_options(labeling, ancestry, node, incoming_phase, target)
    if not options:
        raise RoutingError(
            f"SPAM routing function offers no legal channel at node {node} "
            f"(phase {incoming_phase.value}) towards {target}"
        )
    return options


def incoming_phase_from_channel(labeling: ChannelLabeling, channel: Channel | None) -> Phase:
    """Phase implied by the incoming channel (``None`` means freshly injected)."""
    if channel is None:
        return Phase.UP
    return phase_of_label(labeling.label(channel))
