"""The paper's primary contribution: SPAM (Single Phase Adaptive Multicast).

Public entry points
-------------------
* :class:`~repro.core.spam.SpamRouting` — the routing algorithm, built from a
  network (``SpamRouting.build(network)``) and consumed by the simulator.
* :func:`~repro.core.multicast.build_multicast_plan` /
  :class:`~repro.core.multicast.MulticastPlan` — static analysis of one
  multicast's LCA and down-tree distribution structure.
* :mod:`~repro.core.selection` — selection functions (the paper's
  distance-to-LCA priority plus ablation alternatives).
* :mod:`~repro.core.partition` — the destination-partitioning extension from
  the paper's future-work section.
"""

from .decision import DecisionMode, RoutingDecision, all_of, one_of
from .interface import MessageLike, RoutingAlgorithm
from .multicast import (
    MulticastPlan,
    build_multicast_plan,
    downtree_outputs,
    normalize_destinations,
)
from .partition import (
    PARTITION_STRATEGIES,
    partition_by_subtree,
    partition_contiguous,
    partition_destinations,
    partition_random,
)
from .phases import Phase, may_follow, phase_of_label
from .selection import (
    SELECTION_STRATEGIES,
    DistanceToTargetSelection,
    FirstAllowedSelection,
    RandomSelection,
    SelectionFunction,
    make_selection,
)
from .spam import SpamRouting
from .unicast import RoutingOption, legal_next_channels, unicast_options

__all__ = [
    "SpamRouting",
    "RoutingAlgorithm",
    "MessageLike",
    "RoutingDecision",
    "DecisionMode",
    "one_of",
    "all_of",
    "Phase",
    "phase_of_label",
    "may_follow",
    "RoutingOption",
    "unicast_options",
    "legal_next_channels",
    "MulticastPlan",
    "build_multicast_plan",
    "downtree_outputs",
    "normalize_destinations",
    "SelectionFunction",
    "DistanceToTargetSelection",
    "FirstAllowedSelection",
    "RandomSelection",
    "make_selection",
    "SELECTION_STRATEGIES",
    "partition_destinations",
    "partition_contiguous",
    "partition_by_subtree",
    "partition_random",
    "PARTITION_STRATEGIES",
]
