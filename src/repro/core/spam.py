"""The SPAM routing algorithm (Single Phase Adaptive Multicast).

This module ties together the SPAM building blocks — the up*/down* spanning
tree and labelling, the ancestor/extended-ancestor relations, the unicast
routing function, the selection function and the multicast distribution
rule — into a single :class:`SpamRouting` object implementing the
:class:`~repro.routing.base.RoutingAlgorithm` interface consumed by the
flit-level simulator.

Algorithm summary (paper §3)
----------------------------
* **Unicast**: a worm uses one or more up channels, then zero or more down
  cross channels (each ending at an extended ancestor of the destination),
  then one or more down tree channels (each ending at an ancestor of the
  destination).  Routing is partially adaptive; the selection function
  prioritises the allowed channels by the distance of their endpoint to the
  target.
* **Multicast**: the worm is routed to the least common ancestor (LCA) of
  the destination set with the unicast algorithm, then splits along down
  tree channels only, acquiring all required output channels of a switch
  atomically (the simulator's OCRQ mechanism) and replicating flits
  asynchronously onto them.
"""

from __future__ import annotations

from ..errors import RoutingError
from ..spanning.ancestry import Ancestry, node_mask
from ..spanning.labeling import ChannelLabeling, label_channels
from ..spanning.roots import select_root
from ..spanning.tree import SpanningTree, bfs_spanning_tree
from ..topology.channels import Channel
from ..topology.network import Network
from .decision import RoutingDecision, all_of, one_of
from .interface import MessageLike, RoutingAlgorithm
from .multicast import MulticastPlan, build_multicast_plan, downtree_outputs
from .phases import Phase
from .selection import DistanceToTargetSelection, SelectionFunction
from .unicast import legal_next_channels, unicast_options

__all__ = ["SpamRouting"]


class SpamRouting(RoutingAlgorithm):
    """SPAM routing over a given network, spanning tree and selection function.

    Parameters
    ----------
    network:
        The network to route on.
    tree:
        The up*/down* spanning tree.  If omitted, a BFS tree rooted at the
        network's graph centre is used (see
        :func:`repro.spanning.roots.select_root`).
    selection:
        Selection function ordering the adaptive choices; defaults to the
        paper's distance-to-LCA priority.

    Use :meth:`SpamRouting.build` for the common "give me SPAM on this
    network" case.
    """

    name = "spam"
    supports_multicast = True

    def __init__(
        self,
        network: Network,
        tree: SpanningTree,
        selection: SelectionFunction | None = None,
    ) -> None:
        if tree.network is not network:
            raise RoutingError("spanning tree belongs to a different network")
        self.network = network
        self.tree = tree
        self.labeling: ChannelLabeling = label_channels(network, tree)
        self.ancestry: Ancestry = Ancestry(self.labeling)
        self.selection: SelectionFunction = selection or DistanceToTargetSelection(network)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: Network,
        root: int | None = None,
        root_strategy: str = "center",
        selection: SelectionFunction | None = None,
        seed: int = 0,
    ) -> "SpamRouting":
        """Build SPAM with a BFS spanning tree.

        Parameters
        ----------
        network:
            Network to route on.
        root:
            Explicit root switch; overrides ``root_strategy`` when given.
        root_strategy:
            Root-selection heuristic name (``"center"``, ``"max-degree"``,
            ``"first"`` or ``"random"``).
        selection:
            Selection function; defaults to distance-to-LCA priority.
        seed:
            Seed for the ``"random"`` root strategy.
        """
        if root is None:
            root = select_root(network, root_strategy, seed=seed)
        tree = bfs_spanning_tree(network, root)
        return cls(network, tree, selection)

    def with_selection(self, selection: SelectionFunction | None = None) -> "SpamRouting":
        """A new routing sharing this instance's network, tree, labelling and
        ancestry, with ``selection`` swapped in.

        ``__init__`` derives the labelling and ancestry purely from
        ``(network, tree)`` and never consumes selection state, so the
        skeleton is safe to share between instances: two routings built this
        way differ only in their selection function.  The batched
        Monte-Carlo evaluator (:func:`repro.sweeps.spec.evaluate_batch`)
        uses this to give every replication a freshly seeded stateful
        selection without re-deriving the skeleton.
        """
        clone = self.__class__.__new__(self.__class__)
        clone.network = self.network
        clone.tree = self.tree
        clone.labeling = self.labeling
        clone.ancestry = self.ancestry
        clone.selection = selection or DistanceToTargetSelection(self.network)
        return clone

    # ------------------------------------------------------------------
    # RoutingAlgorithm interface
    # ------------------------------------------------------------------
    def prepare(self, message: MessageLike) -> None:
        """Precompute the destination bitmask and the LCA for ``message``."""
        destinations = message.destinations
        if not destinations:
            raise RoutingError("message has no destinations")
        dest_mask = node_mask(destinations)
        lca = self.ancestry.lca(destinations)
        message.routing_data["dest_mask"] = dest_mask
        message.routing_data["lca"] = lca

    def decide(
        self,
        message: MessageLike,
        switch: int,
        in_channel: Channel | None,
    ) -> RoutingDecision:
        """SPAM routing decision at ``switch`` (see module docstring)."""
        data = message.routing_data
        if "lca" not in data:
            self.prepare(message)
        dest_mask: int = data["dest_mask"]
        lca: int = data["lca"]

        incoming_phase = Phase.UP if in_channel is None else self._phase_of(in_channel)

        # Down-tree distribution mode: entered when the header reaches the
        # LCA of the destination set, or as soon as it has used a down tree
        # channel (rule 3: only down tree channels may follow).
        if incoming_phase is Phase.DOWN_TREE or switch == lca:
            outputs = downtree_outputs(self.network, self.ancestry, switch, dest_mask)
            if not outputs:
                raise RoutingError(
                    f"no down-tree outputs at switch {switch} for destinations "
                    f"{message.destinations}"
                )
            return all_of(outputs)

        # Unicast mode towards the LCA (which is the destination processor
        # itself for a unicast message).
        options = legal_next_channels(self.labeling, self.ancestry, switch, incoming_phase, lca)
        ordered = self.selection.order(options, lca)
        return one_of([option.channel for option in ordered])

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def _phase_of(self, channel: Channel) -> Phase:
        label = self.labeling.label(channel)
        if label.is_up:
            return Phase.UP
        if label.is_down_cross:
            return Phase.DOWN_CROSS
        return Phase.DOWN_TREE

    def multicast_plan(self, source: int, destinations) -> MulticastPlan:
        """Static distribution plan (LCA and down-tree structure) for a multicast."""
        return build_multicast_plan(self.network, self.ancestry, source, list(destinations))

    def unicast_route(self, source: int, destination: int) -> list[Channel]:
        """The contention-free path of a unicast from ``source`` to ``destination``.

        The path starts with the injection channel and ends with the
        consumption channel of the destination.  It follows the selection
        function's first choice at every switch, i.e. it is the path a worm
        takes through an idle network.
        """
        if not self.network.is_processor(source):
            raise RoutingError(f"source {source} is not a processor")
        if not self.network.is_processor(destination):
            raise RoutingError(f"destination {destination} is not a processor")
        if source == destination:
            raise RoutingError("source and destination must differ")

        message = _ProbeMessage(source, (destination,))
        self.prepare(message)
        injection = self.network.injection_channel(source)
        path = [injection]
        switch = injection.dst
        in_channel: Channel | None = None
        for _ in range(4 * self.network.num_nodes):
            decision = self.decide(message, switch, in_channel)
            channel = decision.channels[0]
            path.append(channel)
            if channel.dst == destination:
                return path
            in_channel = channel
            switch = channel.dst
        raise RoutingError(
            f"unicast route from {source} to {destination} did not terminate"
        )

    def allowed_options(self, switch: int, incoming_phase: Phase, target: int):
        """Raw routing-function output (used by verification and tests)."""
        return unicast_options(self.labeling, self.ancestry, switch, incoming_phase, target)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpamRouting(network={self.network.name!r}, root={self.tree.root}, "
            f"selection={self.selection.name!r})"
        )


class _ProbeMessage:
    """Minimal :class:`MessageLike` used for static path probing."""

    __slots__ = ("source", "destinations", "routing_data")

    def __init__(self, source: int, destinations: tuple[int, ...]) -> None:
        self.source = source
        self.destinations = destinations
        self.routing_data: dict = {}
