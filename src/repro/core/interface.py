"""Routing-algorithm interface shared by SPAM and the baseline algorithms.

The flit-level simulator is routing-algorithm agnostic: it hands every
arriving header to a :class:`RoutingAlgorithm` and receives a
:class:`~repro.core.decision.RoutingDecision` back.  The algorithm may stash
per-message state (for SPAM: the destination bitmask and the LCA) in the
message's ``routing_data`` dictionary during :meth:`RoutingAlgorithm.prepare`.

Keeping this interface independent of the simulator lets the verification
utilities drive the same algorithms over the static topology (to enumerate
the channel dependency relation) and lets tests exercise routing logic
without running a simulation.
"""

from __future__ import annotations

import abc
from typing import Protocol, Sequence, runtime_checkable

from .decision import RoutingDecision
from ..topology.channels import Channel

__all__ = ["MessageLike", "RoutingAlgorithm"]


@runtime_checkable
class MessageLike(Protocol):
    """The subset of the simulator's message object routing algorithms see."""

    #: Source processor node id.
    source: int
    #: Destination processor node ids (one entry for a unicast).
    destinations: tuple[int, ...]
    #: Scratch space owned by the routing algorithm.
    routing_data: dict


class RoutingAlgorithm(abc.ABC):
    """Abstract wormhole routing algorithm.

    Subclasses must be deterministic given the message and the incoming
    channel (any randomness must come from an explicitly seeded selection
    function) so that simulations are reproducible.
    """

    #: Short machine-readable name used in reports and benchmark labels.
    name: str = "abstract"

    #: Whether the algorithm can deliver a message to several destinations
    #: with a single worm.  Algorithms with ``False`` here are only handed
    #: unicast messages; multi-destination traffic must be decomposed by a
    #: software scheme such as
    #: :class:`repro.routing.unicast_multicast.UnicastMulticastScheduler`.
    supports_multicast: bool = False

    def prepare(self, message: MessageLike) -> None:
        """Attach per-message routing state before injection (optional)."""

    @abc.abstractmethod
    def decide(
        self,
        message: MessageLike,
        switch: int,
        in_channel: Channel | None,
    ) -> RoutingDecision:
        """Routing decision for ``message``'s header arriving at ``switch``.

        Parameters
        ----------
        message:
            The message being routed.
        switch:
            The switch at which the header has just arrived.
        in_channel:
            The channel on which the header arrived, or ``None`` when the
            header is at the source's switch having just been injected
            (the injection channel is implicit; it is always an up channel).

        Returns
        -------
        RoutingDecision
            Either an ordered one-of candidate list or an all-of channel set.
        """

    def validate_destinations(self, message: MessageLike) -> None:
        """Reject messages the algorithm cannot route (default: multicast)."""
        if len(message.destinations) > 1 and not self.supports_multicast:
            raise NotImplementedError(
                f"{self.name} does not support multi-destination messages"
            )

    # ------------------------------------------------------------------
    # Static path enumeration (used by tests, examples and baselines)
    # ------------------------------------------------------------------
    def greedy_unicast_path(
        self,
        message: MessageLike,
        start_switch: int,
        max_hops: int = 10_000,
    ) -> list[Channel]:
        """Follow the algorithm's most-preferred choice hop by hop.

        This produces the path a worm would take through an otherwise idle
        network (no contention): at every switch the first channel of the
        decision is taken.  Useful for path-length analyses and tests; the
        simulator itself never calls this.
        """
        from ..errors import LivelockError  # local import to avoid cycles

        path: list[Channel] = []
        switch = start_switch
        in_channel: Channel | None = None
        for _ in range(max_hops):
            decision = self.decide(message, switch, in_channel)
            channel = decision.channels[0]
            path.append(channel)
            if channel.dst in message.destinations:
                return path
            in_channel = channel
            switch = channel.dst
        raise LivelockError(
            f"{self.name} did not reach {message.destinations} within {max_hops} hops"
        )
