"""Selection functions for SPAM's partially adaptive routing.

The routing function (:mod:`repro.core.unicast`) may offer several allowable
output channels at a router; a *selection function* imposes an order of
preference among them.  The paper's simulations use "a simple selection
policy ... which prioritizes channels according to the distance from the
endpoint of the channel to the LCA node"; that policy is implemented by
:class:`DistanceToTargetSelection` and is the default everywhere in this
repository.  Alternative selection functions are provided for the
selection-function ablation benchmark.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..errors import SelectionError
from ..topology.network import Network
from .unicast import RoutingOption

__all__ = [
    "SelectionFunction",
    "DistanceToTargetSelection",
    "FirstAllowedSelection",
    "RandomSelection",
    "make_selection",
    "SELECTION_CLASSES",
    "SELECTION_STRATEGIES",
]


class SelectionFunction(abc.ABC):
    """Orders the allowable channels at a router by decreasing preference."""

    #: Short machine-readable name used in reports and benchmark labels.
    name: str = "abstract"

    #: Whether :meth:`order` is a pure function of its arguments.  Stateful
    #: selections (e.g. :class:`RandomSelection`, which consumes an RNG per
    #: decision) must set this ``False`` so that callers never share one
    #: instance across simulations that each need reproducible results —
    #: the sweep layer only caches routing built on stateless selections.
    stateless: bool = True

    @abc.abstractmethod
    def order(self, options: Sequence[RoutingOption], target: int) -> list[RoutingOption]:
        """Return ``options`` sorted by decreasing preference.

        Parameters
        ----------
        options:
            The allowable channels produced by the routing function.
        target:
            The node the header is being routed towards (the destination for
            a unicast, the LCA switch for the unicast prefix of a multicast).
        """

    def best(self, options: Sequence[RoutingOption], target: int) -> RoutingOption:
        """The single most-preferred option."""
        ordered = self.order(options, target)
        if not ordered:
            raise SelectionError("selection function received no options")
        return ordered[0]


class DistanceToTargetSelection(SelectionFunction):
    """The paper's selection policy: prefer channels whose endpoint is closest
    to the target node (the LCA for multicasts).

    Distances are unweighted hop counts over the switch sub-graph, computed
    once per network and reused for every message.  Processor endpoints (the
    consumption channel of the target itself) are given distance ``-1`` so
    that delivering directly always wins, and ties are broken by preferring
    down-tree over down-cross over up channels and finally by endpoint id for
    determinism.
    """

    name = "distance-to-lca"

    _PHASE_RANK = {"down-tree": 0, "down-cross": 1, "up": 2}

    def __init__(self, network: Network) -> None:
        self.network = network
        self._distances = network.switch_distance_matrix()

    def _endpoint_distance(self, option: RoutingOption, target: int) -> int:
        endpoint = option.channel.dst
        if endpoint == target:
            return -1
        target_switch = target if self.network.is_switch(target) else self.network.switch_of(target)
        if self.network.is_processor(endpoint):
            # A consumption channel to a processor other than the target can
            # never be on a useful path; rank it last.
            return len(self._distances) + 1
        distance = self._distances.get(endpoint, {}).get(target_switch)
        if distance is None:
            return len(self._distances) + 1
        if self.network.is_processor(target):
            distance += 1
        return distance

    def order(self, options: Sequence[RoutingOption], target: int) -> list[RoutingOption]:
        return sorted(
            options,
            key=lambda option: (
                self._endpoint_distance(option, target),
                self._PHASE_RANK[option.next_phase.value],
                option.channel.dst,
                option.channel.cid,
            ),
        )


class FirstAllowedSelection(SelectionFunction):
    """Deterministic baseline: prefer channels by ascending channel id.

    This ignores the target entirely and therefore tends to produce long
    routes; it exists as the pessimistic end of the selection-function
    ablation.
    """

    name = "first-allowed"

    def order(self, options: Sequence[RoutingOption], target: int) -> list[RoutingOption]:
        return sorted(options, key=lambda option: option.channel.cid)


class RandomSelection(SelectionFunction):
    """Uniformly random preference order (seeded, for reproducibility)."""

    name = "random"
    stateless = False  # every order() call consumes the RNG

    def __init__(self, seed: int | np.random.Generator = 0) -> None:
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

    def order(self, options: Sequence[RoutingOption], target: int) -> list[RoutingOption]:
        options = list(options)
        self._rng.shuffle(options)
        return options


#: Strategy name → implementing class (lets callers inspect class attributes
#: such as ``stateless`` without instantiating, which for the distance-based
#: policy would compute the all-pairs distance matrix).
SELECTION_CLASSES = {
    "distance-to-lca": DistanceToTargetSelection,
    "first-allowed": FirstAllowedSelection,
    "random": RandomSelection,
}

#: Factory registry used by experiment configuration files.
SELECTION_STRATEGIES = tuple(SELECTION_CLASSES)


def make_selection(
    name: str,
    network: Network,
    seed: int = 0,
) -> SelectionFunction:
    """Create a selection function by name.

    Parameters
    ----------
    name:
        One of :data:`SELECTION_STRATEGIES`.
    network:
        The network (required by the distance-based policy).
    seed:
        Seed for the random policy.
    """
    if name == "distance-to-lca":
        return DistanceToTargetSelection(network)
    if name == "first-allowed":
        return FirstAllowedSelection()
    if name == "random":
        return RandomSelection(seed)
    raise SelectionError(f"unknown selection strategy {name!r}; choose from {SELECTION_STRATEGIES}")
