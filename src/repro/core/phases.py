"""Routing phases of a SPAM worm.

A SPAM route uses one or more channels in the up sub-network, followed by
zero or more down cross channels, followed by one or more down tree channels
(paper §3.1).  Once a worm has used a down cross channel it may not use an
up channel again, and once it has used a down tree channel it may use only
down tree channels.

The phase of a worm at a router is fully determined by the label of the
channel on which its header entered the router, so the simulator does not
need to carry any additional per-worm phase state; this module provides the
mapping and the legality relation between phases for documentation,
verification and testing purposes.
"""

from __future__ import annotations

import enum

from ..topology.channels import ChannelLabel

__all__ = ["Phase", "phase_of_label", "may_follow"]


class Phase(enum.Enum):
    """Position of a worm within the up → down-cross → down-tree ordering."""

    #: The worm has used only up channels so far (this is also the phase of a
    #: freshly injected worm, because the injection channel is an up channel).
    UP = "up"
    #: The worm has used at least one down cross channel (and no down tree
    #: channel yet).
    DOWN_CROSS = "down-cross"
    #: The worm has used at least one down tree channel; only down tree
    #: channels may follow.
    DOWN_TREE = "down-tree"


#: Phase ordering used by :func:`may_follow`.
_ORDER = {Phase.UP: 0, Phase.DOWN_CROSS: 1, Phase.DOWN_TREE: 2}


def phase_of_label(label: ChannelLabel) -> Phase:
    """Phase implied by the label of the most recently used channel."""
    if label.is_up:
        return Phase.UP
    if label.is_down_cross:
        return Phase.DOWN_CROSS
    return Phase.DOWN_TREE


def may_follow(current: Phase, nxt: Phase) -> bool:
    """``True`` when a worm in phase ``current`` may continue in phase ``nxt``.

    Phases are monotonically non-decreasing along a legal route; in addition
    a worm may not "skip back", e.g. a worm in the down-tree phase may only
    remain in the down-tree phase.
    """
    return _ORDER[nxt] >= _ORDER[current]
