"""Destination partitioning (the paper's §5 future-work extension).

The paper observes that as the number of destinations grows, the probability
that the worm must pass through the root of the spanning tree grows as well,
creating a potential hot spot.  The proposed mitigation is to "partition the
destinations into groups of contiguous nodes and send separate tree-based
multicasts to each of these groups".

This module implements several partitioning strategies.  The natural notion
of contiguity for a tree-based scheme is adjacency in the depth-first
traversal order of the spanning tree: destinations that are consecutive in
DFS order share deep common ancestors, so each group's LCA sits low in the
tree and the per-group worms avoid the root whenever the group is confined
to one subtree.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, WorkloadError
from ..spanning.tree import SpanningTree

__all__ = [
    "dfs_order",
    "partition_contiguous",
    "partition_by_subtree",
    "partition_random",
    "PARTITION_STRATEGIES",
    "partition_destinations",
]


def dfs_order(tree: SpanningTree) -> dict[int, int]:
    """Position of every node in a deterministic depth-first preorder walk."""
    order: dict[int, int] = {}
    stack = [tree.root]
    index = 0
    while stack:
        node = stack.pop()
        order[node] = index
        index += 1
        # Reversed so that the smallest-id child is visited first.
        stack.extend(reversed(tree.children(node)))
    return order


def partition_contiguous(
    tree: SpanningTree, destinations: Sequence[int], groups: int
) -> list[list[int]]:
    """Split destinations into ``groups`` contiguous chunks of DFS order.

    The destinations are sorted by their DFS-preorder position and cut into
    chunks of (nearly) equal size.  Every chunk is therefore a set of nodes
    that are contiguous in the tree walk — the paper's "groups of contiguous
    nodes".
    """
    _validate(destinations, groups)
    order = dfs_order(tree)
    ranked = sorted(destinations, key=lambda node: order[node])
    return _chunk(ranked, groups)


def partition_by_subtree(
    tree: SpanningTree, destinations: Sequence[int], groups: int
) -> list[list[int]]:
    """Group destinations by the root's child subtree they fall in.

    Destinations under the same depth-1 subtree never need the root to reach
    each other, so this grouping directly targets the root hot-spot.  If the
    number of occupied subtrees exceeds ``groups``, subtree groups are merged
    (smallest first); if it is smaller, the largest groups are split by DFS
    order until ``groups`` groups exist (or no group can be split further).
    """
    _validate(destinations, groups)
    order = dfs_order(tree)
    by_subtree: dict[int, list[int]] = {}
    for dest in destinations:
        path = tree.path_to_root(dest)
        # path[-1] is the root; path[-2] is the depth-1 ancestor (or the node
        # itself when the destination hangs directly off the root).
        anchor = path[-2] if len(path) >= 2 else path[-1]
        by_subtree.setdefault(anchor, []).append(dest)
    groups_list = [sorted(nodes, key=lambda n: order[n]) for _, nodes in sorted(by_subtree.items())]
    # Merge smallest groups while too many.
    while len(groups_list) > groups:
        groups_list.sort(key=len)
        merged = groups_list[0] + groups_list[1]
        groups_list = [sorted(merged, key=lambda n: order[n])] + groups_list[2:]
    # Split largest groups while too few (and splitting is possible).
    while len(groups_list) < groups and any(len(g) > 1 for g in groups_list):
        groups_list.sort(key=len, reverse=True)
        largest = groups_list[0]
        half = len(largest) // 2
        groups_list = [largest[:half], largest[half:]] + groups_list[1:]
    return [g for g in groups_list if g]


def partition_random(
    tree: SpanningTree,
    destinations: Sequence[int],
    groups: int,
    seed: int | np.random.Generator = 0,
) -> list[list[int]]:
    """Random (non-contiguous) partition, as a control for the ablation.

    Seed contract: all randomness flows from ``seed`` and nothing else.
    An integer seed builds a private ``numpy.random.default_rng(seed)``, so
    equal seeds give equal partitions on equal inputs — across processes
    and platforms.  A caller-owned :class:`numpy.random.Generator` is used
    in place and advanced by exactly one ``shuffle`` of the destination
    list, letting callers thread one explicit stream through several draws.
    The *global* ``numpy.random`` state is never read nor written
    (repro-lint R3 polices this module like any other), and
    ``destinations`` is not mutated.
    """
    _validate(destinations, groups)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    shuffled = list(destinations)
    rng.shuffle(shuffled)
    return _chunk(shuffled, groups)


PARTITION_STRATEGIES = ("contiguous", "subtree", "random")


def partition_destinations(
    tree: SpanningTree,
    destinations: Sequence[int],
    groups: int,
    strategy: str = "contiguous",
    seed: int = 0,
) -> list[list[int]]:
    """Partition ``destinations`` into ``groups`` groups by strategy name."""
    if strategy == "contiguous":
        return partition_contiguous(tree, destinations, groups)
    if strategy == "subtree":
        return partition_by_subtree(tree, destinations, groups)
    if strategy == "random":
        return partition_random(tree, destinations, groups, seed)
    raise ConfigurationError(
        f"unknown partition strategy {strategy!r}; choose from {PARTITION_STRATEGIES}"
    )


def _validate(destinations: Sequence[int], groups: int) -> None:
    if groups < 1:
        raise ConfigurationError("number of groups must be positive")
    if not destinations:
        raise WorkloadError("cannot partition an empty destination set")


def _chunk(ordered: list[int], groups: int) -> list[list[int]]:
    groups = min(groups, len(ordered))
    base, extra = divmod(len(ordered), groups)
    chunks: list[list[int]] = []
    start = 0
    for index in range(groups):
        size = base + (1 if index < extra else 0)
        chunks.append(ordered[start : start + size])
        start += size
    return chunks
