"""The SPAM multicast routing function (paper §3.2).

A multicast message is first routed to the least common ancestor (LCA) of
its destination set using the unicast algorithm, after which all routing is
restricted to down tree channels; the worm splits into a multi-head worm at
the LCA (and possibly again further down) so that every destination receives
the message in a single worm.

The functions here are pure with respect to the network/labelling: given a
switch and a destination bitmask they return the set of down tree channels a
header must acquire at that switch.  :class:`MulticastPlan` additionally
materialises the complete distribution tree below the LCA, which is used by
the examples, by tests and by the analysis utilities (e.g. counting the
branch channels a multicast occupies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import RoutingError, WorkloadError
from ..spanning.ancestry import Ancestry, node_mask
from ..topology.channels import Channel
from ..topology.network import Network

__all__ = ["downtree_outputs", "MulticastPlan", "build_multicast_plan", "normalize_destinations"]


def normalize_destinations(
    network: Network, source: int | None, destinations: Iterable[int]
) -> tuple[int, ...]:
    """Validate and normalise a destination collection.

    Duplicates are removed, ordering is normalised to ascending node id and
    every destination must be a processor distinct from the source.
    """
    unique = sorted(set(destinations))
    if not unique:
        raise WorkloadError("a multicast needs at least one destination")
    for dest in unique:
        if not network.is_processor(dest):
            raise WorkloadError(f"destination {dest} is not a processor")
        if source is not None and dest == source:
            raise WorkloadError("the source cannot be one of the destinations")
    return tuple(unique)


def downtree_outputs(
    network: Network,
    ancestry: Ancestry,
    switch: int,
    destination_mask: int,
) -> list[Channel]:
    """Down tree channels a multicast header must acquire at ``switch``.

    One output channel is required per tree child of ``switch`` whose subtree
    contains at least one destination; if the processor attached to
    ``switch`` is itself a destination, its consumption channel is required
    as well (processors are tree children of their switch, so this falls out
    of the same rule).

    The returned list is sorted by channel id for determinism.
    """
    tree = ancestry.tree
    outputs: list[Channel] = []
    for child in tree.children(switch):
        if ancestry.subtree_mask(child) & destination_mask:
            outputs.append(network.channel_between(switch, child))
    outputs.sort(key=lambda channel: channel.cid)
    return outputs


@dataclass(frozen=True)
class MulticastPlan:
    """The static distribution structure of one SPAM multicast.

    Attributes
    ----------
    source:
        Source processor.
    destinations:
        Normalised destination processors.
    lca:
        Least common ancestor of the destinations in the spanning tree.  For
        a single destination this is the destination processor itself and
        the plan degenerates to a unicast.
    branch_outputs:
        Mapping from each switch of the distribution tree (the LCA and every
        switch below it that the worm traverses) to the down tree channels
        acquired there.
    branch_channels:
        Every down tree channel of the distribution tree, in breadth-first
        order from the LCA.
    """

    source: int
    destinations: tuple[int, ...]
    lca: int
    branch_outputs: dict[int, tuple[Channel, ...]] = field(default_factory=dict)
    branch_channels: tuple[Channel, ...] = ()

    @property
    def destination_mask(self) -> int:
        """Bitmask over the destination processors."""
        return node_mask(self.destinations)

    @property
    def is_unicast(self) -> bool:
        """``True`` when the plan has exactly one destination."""
        return len(self.destinations) == 1

    @property
    def split_switches(self) -> list[int]:
        """Switches at which the worm splits into more than one head."""
        return sorted(s for s, outs in self.branch_outputs.items() if len(outs) > 1)

    def outputs_at(self, switch: int) -> tuple[Channel, ...]:
        """Down tree channels acquired at ``switch`` (empty if not on the tree)."""
        return self.branch_outputs.get(switch, ())


def build_multicast_plan(
    network: Network,
    ancestry: Ancestry,
    source: int,
    destinations: Sequence[int],
) -> MulticastPlan:
    """Compute the LCA and the full down-tree distribution structure.

    The unicast prefix (source to LCA) is adaptive and therefore not part of
    the static plan; only the deterministic down-tree portion is enumerated.
    """
    dests = normalize_destinations(network, source, destinations)
    if not network.is_processor(source):
        raise WorkloadError(f"source {source} is not a processor")
    lca = ancestry.lca(dests)
    dest_mask = node_mask(dests)

    branch_outputs: dict[int, tuple[Channel, ...]] = {}
    branch_channels: list[Channel] = []
    if len(dests) == 1:
        # Unicast: no splitting, the "distribution tree" is the tree path
        # from the destination's switch down to the destination, which the
        # simulator derives on the fly; keep the plan minimal.
        return MulticastPlan(source=source, destinations=dests, lca=lca)

    if not network.is_switch(lca):
        raise RoutingError(
            f"LCA {lca} of a multi-destination multicast must be a switch"
        )
    frontier = [lca]
    while frontier:
        switch = frontier.pop(0)
        outputs = downtree_outputs(network, ancestry, switch, dest_mask)
        if not outputs:
            raise RoutingError(
                f"switch {switch} is on the distribution tree but has no outputs"
            )
        branch_outputs[switch] = tuple(outputs)
        for channel in outputs:
            branch_channels.append(channel)
            if network.is_switch(channel.dst):
                frontier.append(channel.dst)
    return MulticastPlan(
        source=source,
        destinations=dests,
        lca=lca,
        branch_outputs=branch_outputs,
        branch_channels=tuple(branch_channels),
    )
