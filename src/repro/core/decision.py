"""Routing decisions returned by routing algorithms to the simulator.

A wormhole router asks the routing algorithm what to do with an incoming
header.  The answer is either

* **one-of** — an ordered list of candidate output channels of which exactly
  one must be acquired (the adaptive unicast portion of a SPAM route, or any
  hop of a plain unicast algorithm), or
* **all-of** — a set of output channels that must *all* be acquired
  atomically before the header may advance (the tree-distribution portion of
  a SPAM multicast, where the worm replicates onto several branches), or
* **deliver-only** — the header has reached a router whose only remaining
  obligation is local delivery; this is expressed as an all-of decision whose
  channel set contains only consumption channels (it is not a separate mode).

Keeping the decision as plain data (rather than having the routing algorithm
manipulate router state directly) keeps the routing algorithms trivially
testable without a simulator and lets the verification utilities enumerate
the full routing relation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import RoutingError
from ..topology.channels import Channel

__all__ = ["DecisionMode", "RoutingDecision", "one_of", "all_of"]


class DecisionMode(enum.Enum):
    """How the listed channels must be interpreted."""

    #: Acquire exactly one of the listed channels; the list is ordered by
    #: decreasing preference (the selection function has already been applied).
    ONE_OF = "one-of"
    #: Acquire all of the listed channels atomically (multi-head replication).
    ALL_OF = "all-of"


@dataclass(frozen=True, slots=True)
class RoutingDecision:
    """A routing decision for one header at one router.

    Attributes
    ----------
    mode:
        :class:`DecisionMode.ONE_OF` or :class:`DecisionMode.ALL_OF`.
    channels:
        The candidate (one-of) or required (all-of) output channels.
    """

    mode: DecisionMode
    channels: tuple[Channel, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.channels:
            raise RoutingError("a routing decision must contain at least one channel")
        if self.mode is DecisionMode.ALL_OF:
            cids = [c.cid for c in self.channels]
            if len(set(cids)) != len(cids):
                raise RoutingError("an all-of decision may not repeat a channel")

    @property
    def is_adaptive(self) -> bool:
        """``True`` for one-of decisions with more than one candidate."""
        return self.mode is DecisionMode.ONE_OF and len(self.channels) > 1

    @property
    def channel_ids(self) -> tuple[int, ...]:
        """The ``cid`` values of the decision's channels, in order."""
        return tuple(c.cid for c in self.channels)

    def __len__(self) -> int:
        return len(self.channels)


def one_of(channels: list[Channel] | tuple[Channel, ...]) -> RoutingDecision:
    """Build a one-of decision from an ordered candidate list."""
    return RoutingDecision(DecisionMode.ONE_OF, tuple(channels))


def all_of(channels: list[Channel] | tuple[Channel, ...]) -> RoutingDecision:
    """Build an all-of decision from a channel set."""
    return RoutingDecision(DecisionMode.ALL_OF, tuple(channels))
