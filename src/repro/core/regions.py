"""Region assignment and message-coupling analysis for region-parallel runs.

The region-parallel executor (:mod:`repro.simulator.regions`) needs two
static facts about a simulation before it starts:

* a partition of the switches into *regions* — contiguous chunks of the
  spanning tree's depth-first order (the same notion of contiguity the
  destination-partitioning extension uses, see
  :mod:`repro.core.partition`), with every processor joining its switch's
  region and the *boundary channels* (switch-to-switch channels whose
  endpoints fall in different regions) identified;
* for every message, the set of regions its worm is expected to touch —
  computed from a channel closure over the routing decision graph.

Two closures are offered, one per coupling mode of :func:`plan_shards`:

``traversable`` (:func:`traversable_channels`)
    A breadth-first walk that, starting from the source's injection
    channel, expands **every** channel the routing algorithm could offer
    at each ``(switch, in_channel)`` state.  Adaptive (``ONE_OF``)
    choices are runtime-dependent, so all candidates are included; the
    closure is a superset of every channel the worm acquires, queues on
    (OCRQ) or pushes bubbles into in *any* execution.  Sound without any
    runtime check — but under a fully adaptive algorithm such as SPAM
    (whose up-phase rule admits *every* up channel) it spans most of the
    network and usually collapses all messages into one shard.

``preferred`` (:func:`preferred_channels`)
    The same walk expanding only the **first** candidate of each adaptive
    choice — exactly the channels the worm uses when it runs *alone* on
    an idle network (the engine's candidate scan picks the first
    acquirable candidate, and on an idle network the first candidate is
    acquirable).  Under contention a live worm can deviate onto channels
    outside this closure, so preferred-mode shards are *optimistic* and
    the region-parallel executor re-validates them at run time against
    the channels each shard **actually** touched
    (:attr:`repro.simulator.engine.WormholeSimulator.touched_cids`),
    merging and re-running shards whose touched sets collide.

Cross-message interaction in the engine flows exclusively through shared
*channels* — link buffers, OCRQs, wire slots, source-NI injection links;
there is no per-switch mutable state — so :func:`plan_shards` couples
messages at channel granularity: messages whose closures share a channel
belong to the same connected component (same-source messages in
particular — they share the injection channel), and the components are
deterministically bin-packed into at most ``region_count`` *shards*, one
event loop each.  Region ownership of channels (the region of a
channel's deeper endpoint, see :class:`RegionAssignment`) is the
*observability* quotient: a message whose closure's channels are all
owned by one region is *confined*, and confined messages of different
regions can never share a channel, so region-confined workloads always
decompose into ``region_count`` shards.  See ``docs/region_parallel.md``
for why shard disjointness makes per-shard execution exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError, RoutingError
from ..spanning.roots import select_root
from ..spanning.tree import SpanningTree, bfs_spanning_tree
from ..topology.network import Network
from .decision import DecisionMode
from .interface import RoutingAlgorithm
from .partition import partition_contiguous

__all__ = [
    "RegionAssignment",
    "ShardPlan",
    "assign_regions",
    "traversable_channels",
    "preferred_channels",
    "plan_shards",
]


@dataclass(frozen=True)
class RegionAssignment:
    """A partition of the network's switches (and their processors) into regions.

    Attributes
    ----------
    regions:
        Per-region tuples of switch ids, in spanning-tree DFS order.
    region_of:
        Node id (switch *or* processor) → region index.  Processors belong
        to the region of the switch they hang off.
    channel_region:
        Channel id → owning region.  A channel belongs to the region of its
        *deeper* endpoint (greater spanning-tree depth; ties broken by node
        id), so the channels converging on a shallow switch — the root in
        the extreme — are owned by the subtree sides they serve.  Worms
        from different regions meeting at a shared shallow switch touch
        *different* channels there, and channel ownership (not switch
        visits) is what decides coupling: the engine keeps no per-switch
        mutable state outside its links.
    boundary_cids:
        Channel ids of switch-to-switch channels whose endpoints lie in
        different regions, ascending.  Injection/consumption channels are
        never boundary channels.
    """

    regions: tuple[tuple[int, ...], ...]
    region_of: dict[int, int]
    channel_region: dict[int, int]
    boundary_cids: tuple[int, ...]

    @property
    def num_regions(self) -> int:
        """Number of (non-empty) regions."""
        return len(self.regions)


def assign_regions(
    network: Network,
    region_count: int,
    tree: SpanningTree | None = None,
) -> RegionAssignment:
    """Partition the switches into ``region_count`` DFS-contiguous regions.

    Parameters
    ----------
    network:
        The network to partition.
    region_count:
        Requested number of regions; clamped to the number of switches
        (asking for more regions than switches degenerates to one switch
        per region).
    tree:
        Spanning tree defining the DFS order.  Pass the routing algorithm's
        own tree (``SpamRouting.tree``) so regions align with the up*/down*
        structure; defaults to a BFS tree rooted at the network's centre —
        deterministically, with no randomness involved.

    Contiguous DFS chunks keep each region a connected piece of the tree,
    so region-local traffic (source and destinations under one chunk)
    tends to stay inside its region — the case region-parallel execution
    speeds up.
    """
    if region_count < 1:
        raise ConfigurationError("region_count must be at least 1")
    if tree is None:
        tree = bfs_spanning_tree(network, select_root(network, "center"))
    switches = network.switches()
    chunks = partition_contiguous(tree, switches, region_count)
    regions = tuple(tuple(chunk) for chunk in chunks if chunk)
    region_of: dict[int, int] = {}
    for index, chunk in enumerate(regions):
        for switch in chunk:
            region_of[switch] = index
            for processor in network.processors_of(switch):
                region_of[processor] = index

    def depth_key(node: int) -> tuple[int, int]:
        # Processors hang one hop below their switch.
        if network.is_processor(node):
            return (tree.depth(network.switch_of(node)) + 1, node)
        return (tree.depth(node), node)

    channel_region = {
        channel.cid: region_of[
            channel.src if depth_key(channel.src) >= depth_key(channel.dst) else channel.dst
        ]
        for channel in network.channels()
    }
    boundary = sorted(
        channel.cid
        for channel in network.switch_channels()
        if region_of[channel.src] != region_of[channel.dst]
    )
    return RegionAssignment(
        regions=regions,
        region_of=region_of,
        channel_region=channel_region,
        boundary_cids=tuple(boundary),
    )


class _ProbeMessage:
    """Minimal ``MessageLike`` for static closure probing (never simulated)."""

    __slots__ = ("source", "destinations", "routing_data")

    def __init__(self, source: int, destinations: tuple[int, ...]) -> None:
        self.source = source
        self.destinations = destinations
        self.routing_data: dict = {}


def _channel_closure(
    network: Network,
    routing: RoutingAlgorithm,
    source: int,
    destinations: Sequence[int],
    expand_all: bool,
) -> frozenset[int]:
    """Walk the routing decision graph from ``source``'s injection channel.

    Consults the routing exactly the way the engine does —
    ``decide(message, switch, in_channel)`` with the incoming channel of
    the hop — and expands either *all* offered candidates of an adaptive
    (``ONE_OF``) decision or only the most-preferred one.  ``ALL_OF``
    decisions (multicast branch replication) always expand every channel:
    the engine acquires them all.

    Requires ``routing.decide`` to be a pure function of its arguments
    (true for every routing algorithm in this repository built on a
    stateless selection function); the walk would otherwise perturb the
    state a later live run depends on.
    """
    probe = _ProbeMessage(source, tuple(destinations))
    routing.prepare(probe)
    injection = network.injection_channel(source)
    closure: set[int] = {injection.cid}
    visited: set[tuple[int, int]] = set()
    frontier = [(injection.dst, injection)]
    while frontier:
        switch, in_channel = frontier.pop()
        state = (switch, in_channel.cid)
        if state in visited:
            continue
        visited.add(state)
        decision = routing.decide(probe, switch, in_channel)
        channels = decision.channels
        if not expand_all and decision.mode is DecisionMode.ONE_OF:
            channels = channels[:1]
        for channel in channels:
            closure.add(channel.cid)
            if network.is_processor(channel.dst):
                continue  # consumption channel: the worm terminates there
            frontier.append((channel.dst, channel))
    return frozenset(closure)


def traversable_channels(
    network: Network,
    routing: RoutingAlgorithm,
    source: int,
    destinations: Sequence[int],
) -> frozenset[int]:
    """Every channel id a worm from ``source`` to ``destinations`` could touch.

    Expands *all* candidates of every adaptive decision, so the result is
    a superset of the channels acquired, OCRQ-queued on or bubbled into in
    **any** execution of the message — the sound-by-construction (but
    usually very coarse) coupling relation.
    """
    return _channel_closure(network, routing, source, destinations, expand_all=True)


def preferred_channels(
    network: Network,
    routing: RoutingAlgorithm,
    source: int,
    destinations: Sequence[int],
) -> frozenset[int]:
    """The channels a worm from ``source`` uses when it runs uncontended.

    Expands only the most-preferred candidate of each adaptive decision.
    The engine's candidate scan takes the first *acquirable* candidate; on
    an idle network every candidate is acquirable (a unicast worm's own
    flits only ever hold channels behind its head, and multicast branch
    replication is ``ALL_OF``, which this walk expands fully), so this
    closure is exactly the channel set of a solo run.  Under contention a
    live worm can deviate outside it — which is why preferred-mode shard
    plans must be validated against the actually-touched channel sets
    (see :mod:`repro.simulator.regions`).
    """
    return _channel_closure(network, routing, source, destinations, expand_all=False)


@dataclass(frozen=True)
class ShardPlan:
    """Grouping of a workload's messages into channel-disjoint shards.

    Attributes
    ----------
    shards:
        Per-shard tuples of message indices (positions in the submitted
        workload), each ascending; shards ordered by their smallest index.
        Each shard packs one or more closure-connected components, so two
        messages in *different* shards never share a closure channel (the
        converse does not hold: bin-packing may co-locate unrelated
        components to respect the ``region_count`` parallelism bound).
    message_regions:
        Per-message sorted tuples of region indices owning the channels of
        its closure.
    confined_messages:
        Messages whose closure channels are all owned by a single region.
    """

    shards: tuple[tuple[int, ...], ...]
    message_regions: tuple[tuple[int, ...], ...]
    confined_messages: int

    @property
    def coupled_messages(self) -> int:
        """Messages whose closure spans two or more regions."""
        return len(self.message_regions) - self.confined_messages


def plan_shards(
    network: Network,
    routing: RoutingAlgorithm,
    assignment: RegionAssignment,
    submissions: Sequence[tuple[int, Sequence[int]]],
    coupling: str = "preferred",
) -> ShardPlan:
    """Group ``submissions`` (``(source, destinations)`` pairs) into shards.

    Messages whose closures share any channel land in the same
    closure-connected component (messages from the same source share the
    injection channel in particular), and the components are bin-packed —
    largest first, onto the currently-lightest shard, ties to the lowest
    index; all deterministic — into at most ``assignment.num_regions``
    shards, so ``region_count`` bounds the number of parallel event loops
    without ever splitting genuinely coupled messages.

    ``coupling`` selects the closure: ``"preferred"`` (default) uses
    :func:`preferred_channels` — the optimistic plan the region-parallel
    executor validates and repairs at run time — and ``"traversable"``
    uses :func:`traversable_channels`, which is sound without validation
    but collapses to one shard under fully adaptive routing.
    """
    try:
        closure_fn = {
            "preferred": preferred_channels,
            "traversable": traversable_channels,
        }[coupling]
    except KeyError:
        raise ConfigurationError(
            f"unknown shard coupling {coupling!r}; use 'preferred' or 'traversable'"
        ) from None
    channel_region = assignment.channel_region
    # Union-find over message indices, keyed by the first message to claim
    # each closure channel: shared channels connect messages.
    parent = list(range(len(submissions)))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    message_regions: list[tuple[int, ...]] = []
    claimed: dict[int, int] = {}
    for index, (source, destinations) in enumerate(submissions):
        closure = closure_fn(network, routing, source, destinations)
        if not closure:
            raise RoutingError(f"message from {source} has an empty closure")
        message_regions.append(tuple(sorted({channel_region[cid] for cid in closure})))
        for cid in closure:
            holder = claimed.setdefault(cid, index)
            if holder != index:
                parent[find(index)] = find(holder)

    components: dict[int, list[int]] = {}
    for index in range(len(submissions)):
        components.setdefault(find(index), []).append(index)
    # Bin-pack the components into at most num_regions shards: biggest
    # component first onto the lightest shard (by message count), ties to
    # the lowest shard index — deterministic, and a reasonable load spread
    # under the proxy that simulation cost scales with message count.
    shard_count = min(assignment.num_regions, len(components))
    bins: list[list[int]] = [[] for _ in range(shard_count)]
    ordered = sorted(components.values(), key=lambda ms: (-len(ms), ms[0]))
    for members in ordered:
        lightest = min(range(shard_count), key=lambda b: (len(bins[b]), b))
        bins[lightest].extend(members)
    shards = tuple(
        sorted((tuple(sorted(members)) for members in bins if members), key=lambda s: s[0])
    )
    confined = sum(1 for regions in message_regions if len(regions) == 1)
    return ShardPlan(
        shards=shards,
        message_regions=tuple(message_regions),
        confined_messages=confined,
    )
