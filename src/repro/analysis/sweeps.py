"""Parameter-sweep result containers.

Each figure of the paper is a sweep over one parameter (number of
destinations, arrival rate) producing one latency summary per parameter
value and per series (network size, multicast degree).  The classes here
hold those results in a structure that the report formatter and the
benchmark harnesses can both consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .stats import SampleSummary, summarize_samples

__all__ = [
    "SweepPoint",
    "SweepSeries",
    "SweepResult",
    "SweepCoverage",
    "sweep_result_from_points",
    "sweep_coverage",
]


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One (x, summary) point of a sweep."""

    x: float
    summary: SampleSummary

    @property
    def mean(self) -> float:
        """Mean observation at this point."""
        return self.summary.mean

    def as_dict(self) -> dict:
        """JSON-serialisable view: the x coordinate plus the summary."""
        return {"x": self.x, **self.summary.as_dict()}


@dataclass
class SweepSeries:
    """One labelled curve of a figure."""

    label: str
    points: list[SweepPoint] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def add(self, x: float, values: Sequence[float]) -> SweepPoint:
        """Summarise ``values`` and append the point at ``x``."""
        point = SweepPoint(x=x, summary=summarize_samples(list(values)))
        self.points.append(point)
        return point

    def xs(self) -> list[float]:
        """X coordinates in insertion order."""
        return [point.x for point in self.points]

    def means(self) -> list[float]:
        """Mean values in insertion order."""
        return [point.mean for point in self.points]

    def spread(self) -> float:
        """Max minus min of the means (used to check Figure 2's flatness)."""
        values = self.means()
        if not values:
            return 0.0
        return max(values) - min(values)

    def max_mean(self) -> float:
        """Largest mean over the series."""
        return max(self.means()) if self.points else float("nan")

    def as_dict(self) -> dict:
        """JSON-serialisable view of the series."""
        return {
            "label": self.label,
            "metadata": dict(self.metadata),
            "points": [point.as_dict() for point in self.points],
        }


@dataclass
class SweepResult:
    """A complete figure: several series over a common x-axis."""

    name: str
    x_label: str
    y_label: str
    series: list[SweepSeries] = field(default_factory=list)
    parameters: dict = field(default_factory=dict)

    def add_series(self, label: str, **metadata) -> SweepSeries:
        """Create, register and return a new series."""
        series = SweepSeries(label=label, metadata=dict(metadata))
        self.series.append(series)
        return series

    def get_series(self, label: str) -> SweepSeries:
        """Series with the given label (raises ``KeyError`` if missing)."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r} in sweep {self.name!r}")

    def labels(self) -> list[str]:
        """Labels of every series."""
        return [series.label for series in self.series]

    def rows(self) -> Iterable[dict]:
        """Flat row view (one row per point) for tabular reports."""
        for series in self.series:
            for point in series.points:
                row = {
                    "series": series.label,
                    self.x_label: point.x,
                    self.y_label: point.summary.mean,
                    "ci_low": point.summary.ci_low,
                    "ci_high": point.summary.ci_high,
                    "samples": point.summary.count,
                }
                yield row

    def as_dict(self) -> dict:
        """JSON-serialisable view of the whole figure.

        The output is a pure function of the sweep data (no timestamps, no
        environment), so two runs with identical latencies export
        byte-identical JSON — the property the sweep cache's bit-identity
        checks rely on.
        """
        return {
            "name": self.name,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "parameters": dict(self.parameters),
            "series": [series.as_dict() for series in self.series],
        }


@dataclass(frozen=True)
class SweepCoverage:
    """Which figure points a partial result set covers.

    Sharded sweeps (and stores mid-merge) legitimately hold only a subset
    of a figure's points; this is the accounting a caller needs to label a
    partial figure honestly instead of presenting it as the whole — the
    ``(series label, x)`` pairs present and missing, in the spec list's
    order.
    """

    present: tuple[tuple[str, float], ...]
    missing: tuple[tuple[str, float], ...]

    @property
    def total(self) -> int:
        return len(self.present) + len(self.missing)

    @property
    def complete(self) -> bool:
        return not self.missing

    def summary(self) -> str:
        """One-line accounting string for CLI/log output."""
        if self.complete:
            return f"all {self.total} figure points present"
        head = ", ".join(f"{label!r}@{x:g}" for label, x in self.missing[:4])
        if len(self.missing) > 4:
            head += ", …"
        return (
            f"{len(self.present)} of {self.total} figure points present "
            f"(partial figure; missing: {head})"
        )


def sweep_coverage(specs: Iterable, points: Iterable) -> SweepCoverage:
    """Coverage of ``points`` against the full spec list of a figure.

    ``specs`` is any iterable of objects exposing ``.label`` and ``.x``
    (``SweepPointSpec`` instances in practice); ``points`` exposes
    ``.spec`` the same way (``SweepPointResult``, fresh or store-loaded).
    Duplicate (label, x) pairs count once.
    """
    have = {(point.spec.label, point.spec.x) for point in points}
    present: list[tuple[str, float]] = []
    missing: list[tuple[str, float]] = []
    seen: set[tuple[str, float]] = set()
    for spec in specs:
        pair = (spec.label, spec.x)
        if pair in seen:
            continue
        seen.add(pair)
        (present if pair in have else missing).append(pair)
    return SweepCoverage(present=tuple(present), missing=tuple(missing))


def sweep_result_from_points(
    name: str,
    x_label: str,
    y_label: str,
    points: Iterable,
    parameters: dict | None = None,
    series_metadata: dict | None = None,
) -> SweepResult:
    """Reassemble a figure from sweep point results.

    ``points`` is any iterable of objects exposing ``.spec.label`` (the
    series the point belongs to), ``.spec.x`` and ``.latencies_us`` — in
    practice :class:`repro.sweeps.spec.SweepPointResult` instances, fresh
    from the scheduler or loaded back out of the result store.  Series are
    created in first-appearance order and points keep their input order, so
    a spec list built series-by-series reproduces the figure exactly.

    ``series_metadata`` optionally maps series labels to metadata dicts
    (e.g. ``{"128-switch network": {"num_switches": 128}}``).
    """
    result = SweepResult(
        name=name,
        x_label=x_label,
        y_label=y_label,
        parameters=dict(parameters or {}),
    )
    series_metadata = series_metadata or {}
    by_label: dict[str, SweepSeries] = {}
    for point in points:
        label = point.spec.label
        series = by_label.get(label)
        if series is None:
            series = result.add_series(label, **dict(series_metadata.get(label, {})))
            by_label[label] = series
        series.add(point.spec.x, list(point.latencies_us))
    return result
