"""Parameter-sweep result containers.

Each figure of the paper is a sweep over one parameter (number of
destinations, arrival rate) producing one latency summary per parameter
value and per series (network size, multicast degree).  The classes here
hold those results in a structure that the report formatter and the
benchmark harnesses can both consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .stats import SampleSummary, summarize_samples

__all__ = ["SweepPoint", "SweepSeries", "SweepResult"]


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One (x, summary) point of a sweep."""

    x: float
    summary: SampleSummary

    @property
    def mean(self) -> float:
        """Mean observation at this point."""
        return self.summary.mean


@dataclass
class SweepSeries:
    """One labelled curve of a figure."""

    label: str
    points: list[SweepPoint] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def add(self, x: float, values: Sequence[float]) -> SweepPoint:
        """Summarise ``values`` and append the point at ``x``."""
        point = SweepPoint(x=x, summary=summarize_samples(list(values)))
        self.points.append(point)
        return point

    def xs(self) -> list[float]:
        """X coordinates in insertion order."""
        return [point.x for point in self.points]

    def means(self) -> list[float]:
        """Mean values in insertion order."""
        return [point.mean for point in self.points]

    def spread(self) -> float:
        """Max minus min of the means (used to check Figure 2's flatness)."""
        values = self.means()
        if not values:
            return 0.0
        return max(values) - min(values)

    def max_mean(self) -> float:
        """Largest mean over the series."""
        return max(self.means()) if self.points else float("nan")


@dataclass
class SweepResult:
    """A complete figure: several series over a common x-axis."""

    name: str
    x_label: str
    y_label: str
    series: list[SweepSeries] = field(default_factory=list)
    parameters: dict = field(default_factory=dict)

    def add_series(self, label: str, **metadata) -> SweepSeries:
        """Create, register and return a new series."""
        series = SweepSeries(label=label, metadata=dict(metadata))
        self.series.append(series)
        return series

    def get_series(self, label: str) -> SweepSeries:
        """Series with the given label (raises ``KeyError`` if missing)."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r} in sweep {self.name!r}")

    def labels(self) -> list[str]:
        """Labels of every series."""
        return [series.label for series in self.series]

    def rows(self) -> Iterable[dict]:
        """Flat row view (one row per point) for tabular reports."""
        for series in self.series:
            for point in series.points:
                row = {
                    "series": series.label,
                    self.x_label: point.x,
                    self.y_label: point.summary.mean,
                    "ci_low": point.summary.ci_low,
                    "ci_high": point.summary.ci_high,
                    "samples": point.summary.count,
                }
                yield row
