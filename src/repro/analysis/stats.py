"""Sample statistics: means, confidence intervals, batch summaries.

The paper reports that "each data point in our experiments is within 1% of
the mean or better, using 95% confidence intervals".  The helpers here
compute exactly that quantity (the relative half-width of the 95 % CI) so
that experiment drivers can report how tight their — usually smaller —
sample sets are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats

__all__ = ["SampleSummary", "summarize_samples", "confidence_interval", "relative_half_width"]


@dataclass(frozen=True, slots=True)
class SampleSummary:
    """Summary statistics of one sample of observations.

    Attributes
    ----------
    count:
        Number of observations.
    mean:
        Sample mean.
    std:
        Sample standard deviation (ddof=1; 0 for a single observation).
    ci_low, ci_high:
        Bounds of the confidence interval of the mean.
    confidence:
        Confidence level of the interval (default 0.95).
    """

    count: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float = 0.95

    @property
    def half_width(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0

    @property
    def relative_half_width(self) -> float:
        """CI half-width divided by the mean (the paper's "within 1 %")."""
        if self.mean == 0:
            return 0.0
        return abs(self.half_width / self.mean)

    def as_dict(self) -> dict[str, float | int]:
        """Plain-dict view for report tables."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "rel_half_width": self.relative_half_width,
        }


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Student-t confidence interval of the mean of ``values``.

    For a single observation the interval degenerates to the observation
    itself (there is no dispersion information).
    """
    if not values:
        raise ValueError("cannot compute a confidence interval of no observations")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return (mean, mean)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(variance / n)
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return (mean - t_crit * sem, mean + t_crit * sem)


def summarize_samples(values: Sequence[float], confidence: float = 0.95) -> SampleSummary:
    """Build a :class:`SampleSummary` from raw observations."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        std = math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))
    else:
        std = 0.0
    low, high = confidence_interval(values, confidence)
    return SampleSummary(
        count=n, mean=mean, std=std, ci_low=low, ci_high=high, confidence=confidence
    )


def relative_half_width(values: Sequence[float], confidence: float = 0.95) -> float:
    """Relative CI half-width of ``values`` (the paper's precision metric)."""
    return summarize_samples(values, confidence).relative_half_width
