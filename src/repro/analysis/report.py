"""Plain-text and Markdown report formatting.

The benchmark harnesses print the same rows/series the paper's figures show;
these helpers render them as aligned text tables (for terminal output and
for ``EXPERIMENTS.md``) without pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .sweeps import SweepResult

__all__ = ["format_table", "format_sweep", "format_markdown_table", "series_side_by_side"]


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render dictionaries as an aligned fixed-width text table."""
    rows = list(rows)
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: len(col) for col in columns}
    rendered_rows = []
    for row in rows:
        rendered = {col: _stringify(row.get(col, "")) for col in columns}
        rendered_rows.append(rendered)
        for col in columns:
            widths[col] = max(widths[col], len(rendered[col]))
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    separator = "  ".join("-" * widths[col] for col in columns)
    lines = [header, separator]
    for rendered in rendered_rows:
        lines.append("  ".join(rendered[col].ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Render dictionaries as a GitHub-flavoured Markdown table."""
    rows = list(rows)
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    lines = ["| " + " | ".join(columns) + " |", "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(row.get(col, "")) for col in columns) + " |")
    return "\n".join(lines)


def format_sweep(result: SweepResult) -> str:
    """Render a sweep result as a text table preceded by a title line."""
    title = f"{result.name}   ({result.x_label} vs {result.y_label})"
    table = format_table(list(result.rows()))
    return f"{title}\n{table}"


def series_side_by_side(result: SweepResult, precision: int = 2) -> str:
    """Render a sweep with one column per series (matches the figure layout).

    The rows are the union of every series' x values (sorted); a series
    without a point at a given x leaves that cell blank.
    """
    if not result.series:
        return "(no data)"
    xs = sorted({x for series in result.series for x in series.xs()})
    columns = [result.x_label] + result.labels()
    rows: list[dict[str, object]] = []
    for x in xs:
        row: dict[str, object] = {result.x_label: x}
        for series in result.series:
            value = ""
            for point in series.points:
                if point.x == x:
                    value = round(point.summary.mean, precision)
                    break
            row[series.label] = value
        rows.append(row)
    return format_table(rows, columns)
