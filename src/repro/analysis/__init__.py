"""Analysis utilities: sample statistics, sweep containers, software-multicast
bounds and report formatting."""

from .hotspot import HotspotReport, analyze_multicast_load, root_traversal_probability
from .bounds import (
    SoftwareBoundComparison,
    compare_against_bound,
    software_multicast_latency_model,
    software_multicast_lower_bound_us,
)
from .report import format_markdown_table, format_sweep, format_table, series_side_by_side
from .stats import SampleSummary, confidence_interval, relative_half_width, summarize_samples
from .sweeps import SweepPoint, SweepResult, SweepSeries, sweep_result_from_points

__all__ = [
    "SampleSummary",
    "summarize_samples",
    "confidence_interval",
    "relative_half_width",
    "SweepPoint",
    "SweepSeries",
    "SweepResult",
    "sweep_result_from_points",
    "software_multicast_lower_bound_us",
    "software_multicast_latency_model",
    "SoftwareBoundComparison",
    "compare_against_bound",
    "HotspotReport",
    "analyze_multicast_load",
    "root_traversal_probability",
    "format_table",
    "format_markdown_table",
    "format_sweep",
    "series_side_by_side",
]
