"""Static hot-spot analysis of multicast distribution trees.

The paper's §5 observes that "as the number of destinations increases, the
probability that the worm must pass through the root of the underlying
spanning tree increases, resulting in potential hot-spot effects at the root
... an inherent feature of the up*/down* routing algorithm".

This module quantifies that effect *statically* (without running the
simulator): given a routing configuration and a collection of multicasts, it
counts how many distribution trees cross each channel and each switch, and
how often the spanning-tree root is involved.  The static view complements
the simulator's measured channel-utilisation statistics and is what the
destination-partitioning extension is evaluated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..core.multicast import build_multicast_plan
from ..core.spam import SpamRouting
from ..traffic.patterns import uniform_destinations, uniform_source

__all__ = ["HotspotReport", "analyze_multicast_load", "root_traversal_probability"]


@dataclass
class HotspotReport:
    """Static load statistics over a set of multicast distribution trees.

    Attributes
    ----------
    multicasts:
        Number of multicasts analysed.
    channel_load:
        Mapping ``cid -> number of distribution trees using that channel``.
    switch_load:
        Mapping ``switch -> number of distribution trees splitting or
        forwarding at that switch`` (the LCA and every switch below it).
    root_traversals:
        Number of multicasts whose distribution tree includes the spanning
        tree root (i.e. whose LCA *is* the root).
    """

    multicasts: int = 0
    channel_load: dict[int, int] = field(default_factory=dict)
    switch_load: dict[int, int] = field(default_factory=dict)
    root_traversals: int = 0

    @property
    def root_traversal_fraction(self) -> float:
        """Fraction of multicasts whose LCA is the spanning-tree root."""
        if self.multicasts == 0:
            return 0.0
        return self.root_traversals / self.multicasts

    def hottest_channels(self, count: int = 5) -> list[tuple[int, int]]:
        """The ``count`` most-used channels as ``(cid, load)`` pairs."""
        ranked = sorted(self.channel_load.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:count]

    def hottest_switches(self, count: int = 5) -> list[tuple[int, int]]:
        """The ``count`` most-used switches as ``(switch, load)`` pairs."""
        ranked = sorted(self.switch_load.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:count]

    def load_imbalance(self) -> float:
        """Max-to-mean ratio of the per-channel load (1.0 = perfectly even)."""
        if not self.channel_load:
            return 0.0
        loads = list(self.channel_load.values())
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 0.0


def analyze_multicast_load(
    routing: SpamRouting,
    multicasts: Iterable[tuple[int, Sequence[int]]],
) -> HotspotReport:
    """Accumulate distribution-tree load over ``(source, destinations)`` pairs."""
    report = HotspotReport()
    root = routing.tree.root
    for source, destinations in multicasts:
        plan = build_multicast_plan(routing.network, routing.ancestry, source, list(destinations))
        report.multicasts += 1
        if plan.lca == root:
            report.root_traversals += 1
        for switch in plan.branch_outputs:
            report.switch_load[switch] = report.switch_load.get(switch, 0) + 1
        for channel in plan.branch_channels:
            report.channel_load[channel.cid] = report.channel_load.get(channel.cid, 0) + 1
    return report


def root_traversal_probability(
    routing: SpamRouting,
    num_destinations: int,
    samples: int = 200,
    seed: int = 0,
) -> float:
    """Estimate the probability that a random multicast's LCA is the root.

    This is the quantity behind the paper's §5 hot-spot concern: it grows
    quickly with the number of destinations (for a broadcast it is 1 by
    definition unless the root has a single child).
    """
    rng = np.random.default_rng(seed)
    network = routing.network
    pairs = []
    for _ in range(samples):
        source = uniform_source(network, rng)
        destinations = uniform_destinations(
            network, source, min(num_destinations, network.num_processors - 1), rng
        )
        pairs.append((source, destinations))
    report = analyze_multicast_load(routing, pairs)
    return report.root_traversal_fraction
