"""Analytic models and bounds for software (unicast-based) multicast.

The paper's headline comparison (§4) is against the *theoretical lower
bound* for software-based multicast: delivering a message to ``d``
destinations needs at least ``ceil(log2(d + 1))`` unicast phases, so
accounting for startup latency alone the latency is at least
``ceil(log2(d + 1)) * t_startup``.  With the paper's 10 µs startup and a 255
destination broadcast that bound is 80 µs; the paper quotes 90 µs for the
256-node network (rounding the destination count up to the node count) and
measures SPAM under 14 µs — "a more than six-fold difference".

Besides the pure lower bound, :func:`software_multicast_latency_model` adds
an optional per-phase network term so that the executable binomial-tree
baseline (measured on the simulator) can be sanity-checked against a simple
closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..routing.unicast_multicast import minimum_phases

__all__ = [
    "software_multicast_lower_bound_us",
    "software_multicast_latency_model",
    "SoftwareBoundComparison",
    "compare_against_bound",
]


def software_multicast_lower_bound_us(
    num_destinations: int, startup_latency_us: float = 10.0
) -> float:
    """Startup-only lower bound for software multicast latency (microseconds)."""
    return minimum_phases(num_destinations) * startup_latency_us


def software_multicast_latency_model(
    num_destinations: int,
    startup_latency_us: float = 10.0,
    per_phase_network_us: float = 0.0,
) -> float:
    """Simple closed-form software multicast latency model.

    ``phases * (startup + per_phase_network)`` — the per-phase network term
    models the wormhole transmission time of each phase's unicasts (the
    paper's bound sets it to zero, which is what makes it a lower bound).
    """
    phases = minimum_phases(num_destinations)
    return phases * (startup_latency_us + per_phase_network_us)


@dataclass(frozen=True, slots=True)
class SoftwareBoundComparison:
    """Measured hardware-multicast latency versus the software lower bound."""

    num_destinations: int
    measured_spam_latency_us: float
    software_lower_bound_us: float

    @property
    def speedup(self) -> float:
        """How many times faster SPAM is than the software lower bound."""
        if self.measured_spam_latency_us <= 0:
            return float("inf")
        return self.software_lower_bound_us / self.measured_spam_latency_us

    def as_dict(self) -> dict[str, float | int]:
        """Plain-dict view for report tables."""
        return {
            "destinations": self.num_destinations,
            "spam_latency_us": self.measured_spam_latency_us,
            "software_bound_us": self.software_lower_bound_us,
            "speedup": self.speedup,
        }


def compare_against_bound(
    num_destinations: int,
    measured_spam_latency_us: float,
    startup_latency_us: float = 10.0,
) -> SoftwareBoundComparison:
    """Build the SPAM-vs-software-bound comparison for one measurement."""
    return SoftwareBoundComparison(
        num_destinations=num_destinations,
        measured_spam_latency_us=measured_spam_latency_us,
        software_lower_bound_us=software_multicast_lower_bound_us(
            num_destinations, startup_latency_us
        ),
    )
