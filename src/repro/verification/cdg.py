"""Channel dependency graphs (CDGs) and acyclicity checking.

Dally and Seitz's classic result states that a wormhole routing function is
deadlock-free if its channel dependency graph — the directed graph whose
vertices are the network's channels and whose edges connect a channel to
every channel the routing function may request while holding it — is
acyclic.  The paper's Theorem 1 (deadlock freedom of SPAM) is proven in the
companion technical report; this module provides the empirical counterpart:
it enumerates the dependency relation induced by SPAM's routing rules (or by
classic up*/down*, or by the naive minimal baseline) and checks it for
cycles on any concrete topology.

For tree-based multicast the CDG acyclicity argument alone is not sufficient
(atomic multi-channel acquisition also matters), but it is necessary: every
dependency a multicast worm can create between two channels is also created
by some unicast (the distribution tree only uses down tree channels, whose
pairwise dependencies rule 3 already induces).  The simulation-level
verification harness covers the remaining argument empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..core.phases import Phase
from ..core.spam import SpamRouting
from ..core.unicast import unicast_options
from ..routing.naive import NaiveMinimalRouting
from ..routing.updown import UpDownRouting
from ..topology.network import Network

__all__ = ["ChannelDependencyGraph", "build_spam_cdg", "build_updown_cdg", "build_naive_cdg"]


@dataclass
class ChannelDependencyGraph:
    """A channel dependency graph plus convenience queries."""

    graph: nx.DiGraph
    algorithm: str
    network_name: str
    metadata: dict = field(default_factory=dict)

    @property
    def num_channels(self) -> int:
        """Number of channels (vertices)."""
        return self.graph.number_of_nodes()

    @property
    def num_dependencies(self) -> int:
        """Number of dependency edges."""
        return self.graph.number_of_edges()

    def is_acyclic(self) -> bool:
        """``True`` when the dependency graph has no directed cycle."""
        return nx.is_directed_acyclic_graph(self.graph)

    def find_cycle(self) -> list[tuple[int, int]] | None:
        """One dependency cycle as a list of edges, or ``None`` if acyclic."""
        try:
            edges = nx.find_cycle(self.graph)
        except nx.NetworkXNoCycle:
            return None
        return [(int(edge[0]), int(edge[1])) for edge in edges]

    def summary(self) -> dict[str, object]:
        """Compact description for reports and tests."""
        return {
            "algorithm": self.algorithm,
            "network": self.network_name,
            "channels": self.num_channels,
            "dependencies": self.num_dependencies,
            "acyclic": self.is_acyclic(),
        }


def _incoming_phase(labeling, channel) -> Phase:
    label = labeling.label(channel)
    if label.is_up:
        return Phase.UP
    if label.is_down_cross:
        return Phase.DOWN_CROSS
    return Phase.DOWN_TREE


def build_spam_cdg(routing: SpamRouting) -> ChannelDependencyGraph:
    """Channel dependency graph induced by SPAM's routing rules.

    For every channel ``c`` entering switch ``s`` and every possible target
    node ``t`` (any processor as a unicast destination, any switch as a
    multicast LCA), an edge is added from ``c`` to every channel SPAM may
    request at ``s`` for a worm that arrived on ``c`` heading for ``t``.
    Dependencies of the multicast distribution phase are the down-tree →
    down-tree dependencies, which are induced by targets in the subtree and
    are therefore already covered by the same enumeration.
    """
    network = routing.network
    labeling = routing.labeling
    ancestry = routing.ancestry
    graph = nx.DiGraph()
    for channel in network.channels():
        graph.add_node(channel.cid)
    for in_channel in network.channels():
        switch = in_channel.dst
        if not network.is_switch(switch):
            continue
        phase = _incoming_phase(labeling, in_channel)
        for target in network.nodes():
            if target == switch:
                continue
            for option in unicast_options(labeling, ancestry, switch, phase, target):
                graph.add_edge(in_channel.cid, option.channel.cid)
    return ChannelDependencyGraph(
        graph=graph, algorithm=routing.name, network_name=network.name
    )


def build_updown_cdg(routing: UpDownRouting) -> ChannelDependencyGraph:
    """Channel dependency graph induced by classic up*/down* routing."""
    network = routing.network
    labeling = routing.labeling
    graph = nx.DiGraph()
    for channel in network.channels():
        graph.add_node(channel.cid)
    for in_channel in network.channels():
        switch = in_channel.dst
        if not network.is_switch(switch):
            continue
        arrived_up = labeling.is_up(in_channel)
        for destination in network.processors():
            if destination == switch:
                continue
            if arrived_up:
                for channel in labeling.up_channels_from(switch):
                    graph.add_edge(in_channel.cid, channel.cid)
            for channel in labeling.down_channels_from(switch):
                if routing.down_reachable(channel.dst, destination):
                    graph.add_edge(in_channel.cid, channel.cid)
    return ChannelDependencyGraph(
        graph=graph, algorithm=routing.name, network_name=network.name
    )


def build_naive_cdg(routing: NaiveMinimalRouting) -> ChannelDependencyGraph:
    """Channel dependency graph induced by naive minimal routing.

    On any topology containing a cycle of switches this graph is cyclic,
    which is exactly why the algorithm can deadlock.
    """
    network = routing.network
    graph = nx.DiGraph()
    for channel in network.channels():
        graph.add_node(channel.cid)
    for in_channel in network.channels():
        switch = in_channel.dst
        if not network.is_switch(switch):
            continue
        for destination in network.processors():
            dist = routing._distances(destination)
            here = dist.get(switch)
            if here is None or here == 0:
                continue
            for channel in network.channels_from(switch):
                if dist.get(channel.dst, float("inf")) < here:
                    graph.add_edge(in_channel.cid, channel.cid)
    return ChannelDependencyGraph(
        graph=graph, algorithm=routing.name, network_name=network.name
    )
