"""Simulation-level verification harnesses.

The structural checks (:mod:`repro.verification.cdg`,
:mod:`repro.verification.reachability`) argue about the routing *function*;
the harnesses here exercise the full run-time protocol — OCRQs, atomic
multi-channel acquisition, asynchronous replication — by running stress
workloads on the flit-level simulator and asserting that every message is
delivered.  They are used by the integration tests and by the
``deadlock_verification`` example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.interface import RoutingAlgorithm
from ..errors import DeadlockError
from ..simulator.config import SimulationConfig
from ..simulator.engine import WormholeSimulator
from ..topology.network import Network
from ..traffic.workload import Workload, mixed_traffic_workload

__all__ = ["StressResult", "run_workload", "stress_test_deadlock_freedom"]


@dataclass
class StressResult:
    """Outcome of one verification run."""

    messages_submitted: int
    messages_completed: int
    deadlocked: bool
    deadlock_description: str = ""
    end_time_ns: int = 0
    mean_latency_us: float = float("nan")
    details: dict = field(default_factory=dict)

    @property
    def all_delivered(self) -> bool:
        """``True`` when every submitted message completed."""
        return not self.deadlocked and self.messages_completed == self.messages_submitted


def run_workload(
    network: Network,
    routing: RoutingAlgorithm,
    workload: Workload,
    config: SimulationConfig | None = None,
) -> StressResult:
    """Run ``workload`` on a fresh simulator and report delivery/deadlock status.

    Unlike :meth:`WormholeSimulator.run`, a detected deadlock is *captured*
    rather than raised, so callers (tests, examples) can assert on it either
    way.
    """
    config = config or SimulationConfig()
    simulator = WormholeSimulator(network, routing, config)
    workload.submit_to(simulator)
    deadlocked = False
    description = ""
    try:
        simulator.run()
    except DeadlockError as error:
        deadlocked = True
        description = str(error)
    stats = simulator.stats
    return StressResult(
        messages_submitted=stats.messages_submitted,
        messages_completed=stats.messages_completed,
        deadlocked=deadlocked,
        deadlock_description=description,
        end_time_ns=simulator.now,
        mean_latency_us=stats.mean_latency_us(),
        details={"workload": workload.name, "routing": routing.name},
    )


def stress_test_deadlock_freedom(
    network: Network,
    routing: RoutingAlgorithm,
    rounds: int = 3,
    messages_per_round: int = 60,
    rate_per_us: float = 0.05,
    multicast_destinations: int | None = None,
    message_length_flits: int = 16,
    seed: int = 0,
) -> list[StressResult]:
    """Run several heavy mixed-traffic rounds and report delivery status.

    The load is intentionally pushed towards saturation (high rate, several
    rounds with different seeds) because deadlocks in wormhole networks only
    appear under contention.  Short messages are used so that many worms are
    simultaneously in flight relative to the run length.
    """
    if multicast_destinations is None:
        multicast_destinations = max(2, min(8, network.num_processors - 1))
    config = SimulationConfig(
        message_length_flits=message_length_flits,
        deadlock_detection=True,
    )
    results = []
    rng = np.random.default_rng(seed)
    for round_index in range(rounds):
        workload = mixed_traffic_workload(
            network,
            rate_per_us=rate_per_us,
            multicast_destinations=multicast_destinations,
            num_messages=messages_per_round,
            multicast_fraction=0.1 if routing.supports_multicast else 0.0,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        results.append(run_workload(network, routing, workload, config))
    return results
