"""Empirical verification of the paper's theorems.

* **Theorem 1 (deadlock freedom)** — :mod:`repro.verification.cdg` checks
  that the channel dependency graph induced by SPAM's routing rules is
  acyclic on any concrete topology, and
  :mod:`repro.verification.harness` stress-tests the full run-time protocol
  (OCRQs, atomic acquisition, asynchronous replication) on the flit-level
  simulator.
* **Theorem 2 (livelock freedom)** — :mod:`repro.verification.reachability`
  checks exhaustively that every worm reaches its target with monotone phase
  progression and bounded route length.
"""

from .cdg import ChannelDependencyGraph, build_naive_cdg, build_spam_cdg, build_updown_cdg
from .harness import StressResult, run_workload, stress_test_deadlock_freedom
from .reachability import (
    ReachabilityReport,
    check_multicast_coverage,
    check_routing_function_totality,
    check_unicast_reachability,
)

__all__ = [
    "ChannelDependencyGraph",
    "build_spam_cdg",
    "build_updown_cdg",
    "build_naive_cdg",
    "ReachabilityReport",
    "check_unicast_reachability",
    "check_multicast_coverage",
    "check_routing_function_totality",
    "StressResult",
    "run_workload",
    "stress_test_deadlock_freedom",
]
