"""Routing-function reachability and progress checks (livelock freedom).

The paper's Theorem 2 states that SPAM is livelock-free.  The structural
argument is that the up sub-network, the down-cross relation and the
down-tree relation are each acyclic and a route moves through them in a
fixed order, so every route is finite; and the routing function always
offers at least one legal channel until the target is reached, so every
worm eventually arrives.  These helpers check both halves of that argument
exhaustively on a concrete topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.phases import Phase
from ..core.spam import SpamRouting
from ..core.unicast import unicast_options
from ..errors import VerificationError

__all__ = ["ReachabilityReport", "check_unicast_reachability", "check_multicast_coverage"]


@dataclass
class ReachabilityReport:
    """Outcome of the exhaustive reachability check."""

    pairs_checked: int = 0
    max_route_length: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` when every pair was routable within the hop bound."""
        return not self.failures

    def raise_if_failed(self) -> None:
        """Raise :class:`VerificationError` summarising any failures."""
        if self.failures:
            raise VerificationError("; ".join(self.failures[:10]))


def check_unicast_reachability(
    routing: SpamRouting, max_hops: int | None = None, sample_pairs: int | None = None
) -> ReachabilityReport:
    """Check that SPAM routes every source to every destination.

    Follows the selection function's first choice from every source processor
    to every destination processor (or a deterministic subsample of pairs
    when ``sample_pairs`` is given) and verifies termination within
    ``max_hops`` switches as well as monotone phase progression.
    """
    network = routing.network
    processors = network.processors()
    limit = max_hops if max_hops is not None else 4 * network.num_nodes
    report = ReachabilityReport()

    pairs = [(s, d) for s in processors for d in processors if s != d]
    if sample_pairs is not None and sample_pairs < len(pairs):
        stride = max(1, len(pairs) // sample_pairs)
        pairs = pairs[::stride][:sample_pairs]

    phase_rank = {Phase.UP: 0, Phase.DOWN_CROSS: 1, Phase.DOWN_TREE: 2}
    for source, destination in pairs:
        report.pairs_checked += 1
        try:
            path = routing.unicast_route(source, destination)
        except Exception as exc:  # pragma: no cover - failure path
            report.failures.append(f"{source}->{destination}: {exc}")
            continue
        if len(path) > limit:
            report.failures.append(
                f"{source}->{destination}: route of {len(path)} hops exceeds limit {limit}"
            )
        if path[-1].dst != destination:
            report.failures.append(f"{source}->{destination}: route ends at {path[-1].dst}")
        # Phase monotonicity along the concrete path.
        previous_rank = -1
        for channel in path:
            label = routing.labeling.label(channel)
            if label.is_up:
                rank = 0
            elif label.is_down_cross:
                rank = 1
            else:
                rank = 2
            if rank < previous_rank:
                report.failures.append(
                    f"{source}->{destination}: phase order violated at channel "
                    f"{channel.src}->{channel.dst}"
                )
                break
            previous_rank = max(previous_rank, rank)
        report.max_route_length = max(report.max_route_length, len(path))
    return report


def check_multicast_coverage(
    routing: SpamRouting, destination_sets: list[list[int]], source: int
) -> ReachabilityReport:
    """Check that multicast plans cover exactly their destination sets."""
    report = ReachabilityReport()
    for destinations in destination_sets:
        report.pairs_checked += 1
        plan = routing.multicast_plan(source, destinations)
        covered = {
            channel.dst
            for channel in plan.branch_channels
            if routing.network.is_processor(channel.dst)
        }
        expected = set(plan.destinations)
        if plan.is_unicast:
            # Unicast plans carry no branch channels; the reachability of the
            # single destination is covered by check_unicast_reachability.
            continue
        if covered != expected:
            report.failures.append(
                f"multicast from {source} to {sorted(expected)} covers {sorted(covered)}"
            )
    return report


def check_routing_function_totality(routing: SpamRouting) -> ReachabilityReport:
    """Check that the routing function never strands a worm.

    For every switch, every incoming phase and every target, if the switch is
    not the target then at least one legal output channel must exist.
    """
    network = routing.network
    report = ReachabilityReport()
    for switch in network.switches():
        for phase in (Phase.UP, Phase.DOWN_CROSS, Phase.DOWN_TREE):
            for target in network.nodes():
                if target == switch:
                    continue
                report.pairs_checked += 1
                options = unicast_options(
                    routing.labeling, routing.ancestry, switch, phase, target
                )
                if phase is Phase.UP and not options:
                    report.failures.append(
                        f"no legal channel at switch {switch} (phase {phase.value}) "
                        f"towards {target}"
                    )
    return report
