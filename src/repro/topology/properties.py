"""Graph-theoretic properties of networks.

These helpers are used by root-selection heuristics (eccentricity / centre),
by the experiment reports (diameter, average distance, degree statistics) and
by the topology validators.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from statistics import mean

from .network import Network

__all__ = [
    "switch_eccentricities",
    "switch_diameter",
    "graph_center_switches",
    "degree_histogram",
    "average_switch_distance",
    "TopologySummary",
    "summarize",
]


def _switch_bfs_distances(network: Network, source: int, switch_set: set[int]) -> dict[int, int]:
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in network.neighbors(u):
            if v in switch_set and v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def switch_eccentricities(network: Network) -> dict[int, int]:
    """Eccentricity of every switch over the switch-only subgraph.

    The eccentricity of a switch is its maximum distance to any other switch.
    Raises no error for disconnected switch graphs; unreachable switches are
    simply ignored (callers that need connectivity should call
    :meth:`Network.require_connected` first).
    """
    switch_set = set(network.switches())
    ecc: dict[int, int] = {}
    # Sorted so the returned dict's insertion order (a public, observable
    # property) never depends on the salted set-hash order.
    for s in sorted(switch_set):
        dist = _switch_bfs_distances(network, s, switch_set)
        ecc[s] = max(dist.values()) if dist else 0
    return ecc


def switch_diameter(network: Network) -> int:
    """Diameter of the switch-only subgraph."""
    ecc = switch_eccentricities(network)
    return max(ecc.values()) if ecc else 0


def graph_center_switches(network: Network) -> list[int]:
    """Switches with minimum eccentricity (the graph centre), sorted by id."""
    ecc = switch_eccentricities(network)
    if not ecc:
        return []
    minimum = min(ecc.values())
    return sorted(s for s, e in ecc.items() if e == minimum)


def degree_histogram(network: Network, switches_only: bool = True) -> dict[int, int]:
    """Histogram mapping degree -> number of nodes with that degree."""
    nodes = network.switches() if switches_only else list(network.nodes())
    histogram: dict[int, int] = {}
    for node in nodes:
        d = network.degree(node)
        histogram[d] = histogram.get(d, 0) + 1
    return dict(sorted(histogram.items()))


def average_switch_distance(network: Network) -> float:
    """Mean pairwise distance between distinct switches."""
    switch_set = set(network.switches())
    if len(switch_set) < 2:
        return 0.0
    total = 0
    count = 0
    for s in sorted(switch_set):
        dist = _switch_bfs_distances(network, s, switch_set)
        for t, d in dist.items():
            if t != s:
                total += d
                count += 1
    return total / count if count else 0.0


@dataclass(frozen=True, slots=True)
class TopologySummary:
    """Summary statistics of a network, suitable for experiment reports."""

    name: str
    num_switches: int
    num_processors: int
    num_bidirectional_links: int
    switch_diameter: int
    average_switch_distance: float
    min_switch_degree: int
    max_switch_degree: int
    mean_switch_degree: float

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for tabular reports."""
        return {
            "name": self.name,
            "switches": self.num_switches,
            "processors": self.num_processors,
            "links": self.num_bidirectional_links,
            "diameter": self.switch_diameter,
            "avg_distance": round(self.average_switch_distance, 3),
            "degree_min": self.min_switch_degree,
            "degree_max": self.max_switch_degree,
            "degree_mean": round(self.mean_switch_degree, 3),
        }


def summarize(network: Network) -> TopologySummary:
    """Compute a :class:`TopologySummary` for ``network``."""
    switches = network.switches()
    degrees = [network.degree(s) for s in switches]
    return TopologySummary(
        name=network.name,
        num_switches=network.num_switches,
        num_processors=network.num_processors,
        num_bidirectional_links=network.num_channels // 2,
        switch_diameter=switch_diameter(network),
        average_switch_distance=average_switch_distance(network),
        min_switch_degree=min(degrees) if degrees else 0,
        max_switch_degree=max(degrees) if degrees else 0,
        mean_switch_degree=mean(degrees) if degrees else 0.0,
    )
