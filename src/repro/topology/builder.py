"""Fluent construction helpers for :class:`~repro.topology.network.Network`.

The generators in :mod:`repro.topology.irregular` and
:mod:`repro.topology.regular` produce fully-formed networks; this module
supports hand-built topologies (tests, examples, and users porting their own
switch fabric descriptions).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..errors import TopologyError
from .network import Network

__all__ = ["NetworkBuilder", "network_from_edges"]


class NetworkBuilder:
    """Incrementally build a :class:`Network` with labelled nodes.

    Example
    -------
    >>> builder = NetworkBuilder(ports_per_switch=8)
    >>> builder.switches("A", "B", "C")
    >>> builder.link("A", "B").link("B", "C")
    >>> builder.processor("pA", on="A")
    >>> net = builder.build()
    """

    def __init__(self, ports_per_switch: int | None = 8, name: str = "network") -> None:
        self._network = Network(ports_per_switch=ports_per_switch, name=name)
        self._built = False

    def _check_not_built(self) -> None:
        if self._built:
            raise TopologyError("builder has already produced its network")

    def switch(self, label: str) -> "NetworkBuilder":
        """Add one switch with the given label."""
        self._check_not_built()
        self._network.add_switch(label)
        return self

    def switches(self, *labels: str) -> "NetworkBuilder":
        """Add several switches at once."""
        for label in labels:
            self.switch(label)
        return self

    def processor(self, label: str, on: str) -> "NetworkBuilder":
        """Add a processor attached to the switch labelled ``on``."""
        self._check_not_built()
        switch = self._network.node_by_label(on)
        self._network.add_processor(switch, label)
        return self

    def processors_everywhere(self, prefix: str = "p_") -> "NetworkBuilder":
        """Attach exactly one processor to every switch.

        The processor attached to switch ``X`` is labelled ``prefix + X``.
        This matches the paper's experimental configuration of one
        workstation per switch.
        """
        self._check_not_built()
        for switch in list(self._network.switches()):
            self._network.add_processor(switch, f"{prefix}{self._network.label(switch)}")
        return self

    def link(self, a: str, b: str) -> "NetworkBuilder":
        """Add a bidirectional switch-to-switch channel."""
        self._check_not_built()
        na = self._network.node_by_label(a)
        nb = self._network.node_by_label(b)
        self._network.connect(na, nb)
        return self

    def links(self, pairs: Iterable[tuple[str, str]]) -> "NetworkBuilder":
        """Add several bidirectional links."""
        for a, b in pairs:
            self.link(a, b)
        return self

    def build(self, require_connected: bool = True) -> Network:
        """Finish construction and return the network."""
        self._check_not_built()
        self._built = True
        if require_connected:
            self._network.require_connected()
        return self._network


def network_from_edges(
    switch_labels: Sequence[str],
    edges: Iterable[tuple[str, str]],
    processors: Mapping[str, str] | None = None,
    ports_per_switch: int | None = 8,
    name: str = "network",
    attach_processor_per_switch: bool = False,
) -> Network:
    """Build a network from a flat edge list.

    Parameters
    ----------
    switch_labels:
        Labels of the switches, added in order (the order determines the
        node ids and therefore the same-level cross-channel orientation
        tie-break).
    edges:
        Undirected switch-to-switch links as label pairs.
    processors:
        Optional mapping ``processor_label -> switch_label``.
    ports_per_switch:
        Port budget per switch, or ``None`` to disable the check.
    attach_processor_per_switch:
        If ``True``, additionally attach one processor per switch (labelled
        ``"p_" + switch_label``), after any explicitly listed processors.
    """
    builder = NetworkBuilder(ports_per_switch=ports_per_switch, name=name)
    builder.switches(*switch_labels)
    builder.links(edges)
    if processors:
        for proc_label, switch_label in processors.items():
            builder.processor(proc_label, on=switch_label)
    if attach_processor_per_switch:
        builder.processors_everywhere()
    return builder.build()
