"""Example and fixture topologies, including the paper's Figure 1 network.

The Figure 1 network is used throughout the test suite as a ground-truth
fixture because the paper walks through the SPAM multicast from node 5 to
destinations {8, 9, 10, 11} on it in detail (§3.2): the least common
ancestor of the destinations is node 4, one legal unicast prefix is
``5 → 2 → 3 → 4`` (an up channel followed by two down cross channels), the
worm splits at node 4 towards nodes 6 and 7, splits again at node 6 towards
8, 9 and 10, and node 7 forwards to node 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from .builder import NetworkBuilder
from .network import Network

__all__ = ["Figure1Fixture", "figure1_network", "two_switch_network", "line_network"]


@dataclass(frozen=True)
class Figure1Fixture:
    """The Figure 1 network plus the node-id mapping for the paper labels.

    Attributes
    ----------
    network:
        The constructed :class:`Network`.
    nodes:
        Mapping from the paper's integer vertex labels (1..11) to node ids.
    root_label:
        The paper's root vertex (1).
    source_label:
        The example's multicast source (5).
    destination_labels:
        The example's multicast destinations (8, 9, 10, 11).
    """

    network: Network
    nodes: dict[int, int]
    root_label: int = 1
    source_label: int = 5
    destination_labels: tuple[int, ...] = (8, 9, 10, 11)

    @property
    def root(self) -> int:
        """Node id of the spanning-tree root (paper vertex 1)."""
        return self.nodes[self.root_label]

    @property
    def source(self) -> int:
        """Node id of the example's multicast source (paper vertex 5)."""
        return self.nodes[self.source_label]

    @property
    def destinations(self) -> list[int]:
        """Node ids of the example's multicast destinations."""
        return [self.nodes[label] for label in self.destination_labels]

    @property
    def lca(self) -> int:
        """Node id of the destinations' least common ancestor (paper vertex 4)."""
        return self.nodes[4]


def figure1_network() -> Figure1Fixture:
    """Build the network of the paper's Figure 1.

    Vertices 1, 2, 3, 4, 6 and 7 are switches; vertices 5, 8, 9, 10 and 11
    are processors (they have degree one and are leaves of the tree).  Tree
    edges (solid lines in the figure) are 1–2, 1–3, 1–4, 2–5, 4–6, 4–7, 6–8,
    6–9, 6–10 and 7–11.  Cross edges (dashed lines) are 2–3 and 3–4; these
    are exactly the cross edges required by the paper's walk-through of the
    route ``5 → 2 → 3 → 4``.

    The nodes are added in increasing label order so that the internal node
    ids preserve the paper's ID ordering; consequently a breadth-first
    spanning tree rooted at vertex 1 reproduces the paper's tree and the
    same-level cross channels 2→3 and 3→4 are *down* channels (the channel
    from the smaller ID to the larger ID is a down channel).
    """
    builder = NetworkBuilder(ports_per_switch=8, name="figure1")
    # Switches in label order (1, 2, 3, 4, 6, 7).
    for label in (1, 2, 3, 4):
        builder.switch(str(label))
    # Vertex 5 is a processor attached to switch 2; add it next to keep the
    # paper's label order aligned with the internal node ids.
    builder.processor("5", on="2")
    for label in (6, 7):
        builder.switch(str(label))
    for label in (8, 9, 10):
        builder.processor(str(label), on="6")
    builder.processor("11", on="7")
    # Tree links between switches.
    builder.link("1", "2").link("1", "3").link("1", "4")
    builder.link("4", "6").link("4", "7")
    # Cross links.
    builder.link("2", "3").link("3", "4")
    network = builder.build()
    nodes = {label: network.node_by_label(str(label)) for label in range(1, 12)}
    return Figure1Fixture(network=network, nodes=nodes)


def two_switch_network() -> Network:
    """Smallest interesting network: two switches, one processor each."""
    builder = NetworkBuilder(ports_per_switch=8, name="two-switch")
    builder.switches("A", "B").link("A", "B")
    builder.processor("pA", on="A").processor("pB", on="B")
    return builder.build()


def line_network(length: int) -> Network:
    """A line of ``length`` switches with one processor per switch."""
    builder = NetworkBuilder(ports_per_switch=8, name=f"line-{length}")
    labels = [f"s{i}" for i in range(length)]
    builder.switches(*labels)
    for a, b in zip(labels, labels[1:]):
        builder.link(a, b)
    builder.processors_everywhere()
    return builder.build()
