"""Validation of network topologies against the paper's model rules.

The checks here catch malformed hand-built networks early, before they reach
the routing substrate or the simulator, where a violation would surface as a
confusing downstream failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TopologyError
from .channels import LinkRole, NodeKind
from .network import Network

__all__ = ["ValidationReport", "validate_network"]


@dataclass(slots=True)
class ValidationReport:
    """Outcome of :func:`validate_network`.

    Attributes
    ----------
    ok:
        ``True`` when no violations were found.
    violations:
        Human-readable descriptions of every violated rule.
    warnings:
        Non-fatal observations (e.g. switches without processors, which is
        legal but means those switches can never be sources or destinations).
    """

    ok: bool = True
    violations: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def add_violation(self, message: str) -> None:
        self.ok = False
        self.violations.append(message)

    def add_warning(self, message: str) -> None:
        self.warnings.append(message)

    def raise_if_invalid(self) -> None:
        """Raise :class:`TopologyError` summarising all violations."""
        if not self.ok:
            raise TopologyError("; ".join(self.violations))


def validate_network(network: Network, require_processors: bool = True) -> ValidationReport:
    """Check a network against the paper's structural rules.

    Rules checked
    -------------
    * the network is connected;
    * every processor has degree exactly one and is attached to a switch;
    * no two processors are directly connected (enforced at construction but
      re-verified here for networks deserialised from other sources);
    * switch degrees respect the port budget when one is configured;
    * channel bookkeeping is consistent (reverse channel pairs agree).

    Parameters
    ----------
    network:
        Network to validate.
    require_processors:
        When ``True`` (default) a network with no processors at all is
        reported as a violation, because such a network cannot carry any
        traffic.
    """
    report = ValidationReport()

    if network.num_nodes == 0:
        report.add_violation("network has no nodes")
        return report

    if not network.is_connected():
        report.add_violation("network is not connected")

    if require_processors and network.num_processors == 0:
        report.add_violation("network has no processors; no traffic can be generated")

    for processor in network.processors():
        if network.degree(processor) != 1:
            report.add_violation(
                f"processor {processor} has degree {network.degree(processor)}, expected 1"
            )
            continue
        neighbor = network.neighbors(processor)[0]
        if network.kind(neighbor) is not NodeKind.SWITCH:
            report.add_violation(f"processor {processor} is attached to a non-switch node")

    if network.ports_per_switch is not None:
        for switch in network.switches():
            if network.degree(switch) > network.ports_per_switch:
                report.add_violation(
                    f"switch {switch} has degree {network.degree(switch)} "
                    f"> port budget {network.ports_per_switch}"
                )

    for switch in network.switches():
        if not network.processors_of(switch):
            report.add_warning(f"switch {switch} has no attached processor")

    for channel in network.channels():
        reverse = network.channel(channel.reverse_cid)
        if reverse.src != channel.dst or reverse.dst != channel.src:
            report.add_violation(
                f"channel {channel.cid} and its reverse {reverse.cid} are inconsistent"
            )
        if channel.role is LinkRole.INTERNAL and (
            network.kind(channel.src) is not NodeKind.SWITCH
            or network.kind(channel.dst) is not NodeKind.SWITCH
        ):
            report.add_violation(f"internal channel {channel.cid} touches a processor")

    return report
