"""Topology serialisation.

The paper's experiments depend on *unpublished* random topologies, which is
one of the reasons absolute latency numbers cannot be reproduced exactly.  To
make every result in this repository auditable, networks can be saved to (and
reloaded from) a small JSON document that records the switches, processors,
links and port budget.  The format is deliberately plain so that instances
can be shared, diffed and regenerated from other tools.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import TopologyError
from .network import Network

__all__ = ["network_to_dict", "network_from_dict", "save_network", "load_network"]

#: Format identifier embedded in every serialised document.
FORMAT = "repro-network"
#: Current format version; bump when the schema changes.
VERSION = 1


def network_to_dict(network: Network) -> dict[str, Any]:
    """Serialise a network to a JSON-compatible dictionary.

    The document records node labels (in node-id order, so ids are implied),
    the switch/processor split, every undirected link once, and the port
    budget.  Channel ids are *not* stored: they are deterministically
    re-derived on load because links are recorded in channel-creation order.
    """
    switches = []
    processors = []
    for node in network.nodes():
        entry = {"id": node, "label": network.label(node)}
        if network.is_switch(node):
            switches.append(entry)
        else:
            entry["switch"] = network.switch_of(node)
            processors.append(entry)
    links = [
        {"a": a, "b": b}
        for a, b in network.iter_bidirectional_links()
        if network.is_switch(a) and network.is_switch(b)
    ]
    return {
        "format": FORMAT,
        "version": VERSION,
        "name": network.name,
        "ports_per_switch": network.ports_per_switch,
        "switches": switches,
        "processors": processors,
        "switch_links": links,
    }


def network_from_dict(document: dict[str, Any]) -> Network:
    """Rebuild a :class:`Network` from :func:`network_to_dict` output.

    Nodes are re-created in their original id order so that node ids, channel
    ids and therefore the same-level cross-channel tie-breaks are identical to
    the original network's.
    """
    if document.get("format") != FORMAT:
        raise TopologyError("document is not a serialised repro network")
    if document.get("version") != VERSION:
        raise TopologyError(
            f"unsupported network format version {document.get('version')!r}"
        )
    network = Network(
        ports_per_switch=document.get("ports_per_switch"),
        name=document.get("name", "network"),
    )
    nodes = sorted(
        [(entry["id"], "switch", entry) for entry in document["switches"]]
        + [(entry["id"], "processor", entry) for entry in document["processors"]]
    )
    expected = 0
    switch_links = {(link["a"], link["b"]) for link in document["switch_links"]}
    # Recreate nodes in id order; processor links are created when the
    # processor is added, switch links as soon as both endpoints exist (this
    # reproduces the original channel-creation order for lattice/builder
    # networks, and any order is functionally equivalent otherwise).
    pending_links = sorted(switch_links)
    created: set[int] = set()
    for node_id, kind, entry in nodes:
        if node_id != expected:
            raise TopologyError("node ids must be dense and start at zero")
        expected += 1
        if kind == "switch":
            network.add_switch(entry["label"])
        else:
            network.add_processor(entry["switch"], entry["label"])
        created.add(node_id)
        for a, b in list(pending_links):
            if a in created and b in created:
                network.connect(a, b)
                pending_links.remove((a, b))
    if pending_links:
        raise TopologyError(f"links reference unknown switches: {pending_links}")
    return network


def save_network(network: Network, path: str | Path) -> Path:
    """Write a network to ``path`` as JSON and return the path."""
    path = Path(path)
    path.write_text(json.dumps(network_to_dict(network), indent=2, sort_keys=True) + "\n")
    return path


def load_network(path: str | Path) -> Network:
    """Load a network previously written by :func:`save_network`."""
    document = json.loads(Path(path).read_text())
    return network_from_dict(document)
