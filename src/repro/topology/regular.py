"""Regular topology generators (meshes, tori, hypercubes).

The paper's algorithm applies to *any* direct network; its future-work
section (§5) observes that "for regular topologies such as meshes and
n-cubes, judicious selection of spanning trees for the underlying routing
algorithm may have significant effects on performance".  These generators
make it possible to run SPAM (and the ablation benchmarks on spanning-tree
root selection) on regular topologies as well as on irregular ones.

All generators follow the switch-based model of the paper: each network
position is a switch, and one processor is attached to every switch.
"""

from __future__ import annotations

from itertools import product

from ..errors import ConfigurationError
from .network import Network

__all__ = ["mesh_network", "torus_network", "hypercube_network", "star_network", "ring_network"]


def _attach_processors(network: Network, per_switch: int = 1) -> None:
    for switch in list(network.switches()):
        for p in range(per_switch):
            suffix = "" if per_switch == 1 else f"_{p}"
            network.add_processor(switch, f"p{switch}{suffix}")


def mesh_network(rows: int, cols: int, processors_per_switch: int = 1) -> Network:
    """A ``rows x cols`` 2-D mesh of switches, one processor per switch.

    Switch ``(r, c)`` is labelled ``"s{r}_{c}"`` and has node id
    ``r * cols + c``.
    """
    if rows < 1 or cols < 1:
        raise ConfigurationError("mesh dimensions must be positive")
    ports = 4 + processors_per_switch
    network = Network(ports_per_switch=ports, name=f"mesh-{rows}x{cols}")
    ids: dict[tuple[int, int], int] = {}
    for r, c in product(range(rows), range(cols)):
        ids[(r, c)] = network.add_switch(f"s{r}_{c}")
    for r, c in product(range(rows), range(cols)):
        if c + 1 < cols:
            network.connect(ids[(r, c)], ids[(r, c + 1)])
        if r + 1 < rows:
            network.connect(ids[(r, c)], ids[(r + 1, c)])
    _attach_processors(network, processors_per_switch)
    return network


def torus_network(rows: int, cols: int, processors_per_switch: int = 1) -> Network:
    """A ``rows x cols`` 2-D torus (mesh with wrap-around links)."""
    if rows < 3 or cols < 3:
        raise ConfigurationError("torus dimensions must be at least 3 to avoid parallel links")
    ports = 4 + processors_per_switch
    network = Network(ports_per_switch=ports, name=f"torus-{rows}x{cols}")
    ids: dict[tuple[int, int], int] = {}
    for r, c in product(range(rows), range(cols)):
        ids[(r, c)] = network.add_switch(f"s{r}_{c}")
    for r, c in product(range(rows), range(cols)):
        right = ids[(r, (c + 1) % cols)]
        down = ids[((r + 1) % rows, c)]
        if not network.has_channel(ids[(r, c)], right):
            network.connect(ids[(r, c)], right)
        if not network.has_channel(ids[(r, c)], down):
            network.connect(ids[(r, c)], down)
    _attach_processors(network, processors_per_switch)
    return network


def hypercube_network(dimension: int, processors_per_switch: int = 1) -> Network:
    """An ``n``-dimensional binary hypercube of switches."""
    if dimension < 1:
        raise ConfigurationError("hypercube dimension must be positive")
    if dimension > 12:
        raise ConfigurationError("hypercube dimension above 12 is unreasonably large")
    ports = dimension + processors_per_switch
    network = Network(ports_per_switch=ports, name=f"hypercube-{dimension}")
    count = 1 << dimension
    for i in range(count):
        network.add_switch(f"s{i:0{dimension}b}")
    for i in range(count):
        for bit in range(dimension):
            j = i ^ (1 << bit)
            if j > i:
                network.connect(i, j)
    _attach_processors(network, processors_per_switch)
    return network


def star_network(leaves: int, processors_per_switch: int = 1) -> Network:
    """A star: one hub switch connected to ``leaves`` leaf switches.

    Useful as a worst-case topology for root hot-spot studies: the hub is on
    every path.
    """
    if leaves < 1:
        raise ConfigurationError("star needs at least one leaf")
    network = Network(ports_per_switch=leaves + processors_per_switch, name=f"star-{leaves}")
    hub = network.add_switch("hub")
    for i in range(leaves):
        leaf = network.add_switch(f"leaf{i}")
        network.connect(hub, leaf)
    _attach_processors(network, processors_per_switch)
    return network


def ring_network(size: int, processors_per_switch: int = 1) -> Network:
    """A unidirectional-cycle-free bidirectional ring of ``size`` switches."""
    if size < 3:
        raise ConfigurationError("ring needs at least three switches")
    network = Network(ports_per_switch=2 + processors_per_switch, name=f"ring-{size}")
    for i in range(size):
        network.add_switch(f"s{i}")
    for i in range(size):
        a, b = i, (i + 1) % size
        if not network.has_channel(a, b):
            network.connect(a, b)
    _attach_processors(network, processors_per_switch)
    return network
