"""The switch-based direct network model.

The paper (§3.1) models a network of workstations as an undirected graph
``G = (V, E)`` with ``V = V1 ∪ V2`` where ``V1`` is the set of switches and
``V2`` the set of processors.  Every processor is connected to exactly one
switch by a bidirectional channel, and switches may be connected to each
other by bidirectional channels.  A switch with ``k`` ports has degree at
most ``k``.

:class:`Network` implements this model with dense integer node ids and dense
integer channel ids so that the routing substrate and the flit-level
simulator can use flat arrays and integer bitmasks in their hot paths.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

import networkx as nx

from ..errors import ConnectivityError, TopologyError
from .channels import Channel, LinkRole, NodeKind

__all__ = ["Network"]


class Network:
    """A switch-based direct network with processors attached to switches.

    Parameters
    ----------
    ports_per_switch:
        Maximum number of bidirectional channels a switch may have
        (processor links count against this budget).  The paper's
        experiments use 8-port switches.  Use ``None`` to disable the check.
    name:
        Optional human-readable name used in reports.
    """

    def __init__(self, ports_per_switch: int | None = 8, name: str = "network") -> None:
        if ports_per_switch is not None and ports_per_switch < 1:
            raise TopologyError("ports_per_switch must be positive or None")
        self.ports_per_switch = ports_per_switch
        self.name = name
        self._kinds: list[NodeKind] = []
        self._labels: list[str] = []
        self._adjacency: list[dict[int, int]] = []  # node -> {neighbor: cid of self->neighbor}
        self._channels: list[Channel] = []
        self._label_to_node: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_switch(self, label: str | None = None) -> int:
        """Add a switch vertex and return its node id."""
        return self._add_node(NodeKind.SWITCH, label)

    def add_processor(self, switch: int, label: str | None = None) -> int:
        """Add a processor vertex attached to ``switch`` and return its node id.

        The bidirectional processor/switch channel is created immediately
        because a processor must have degree exactly one.
        """
        self._require_switch(switch)
        node = self._add_node(NodeKind.PROCESSOR, label)
        self._connect_nodes(node, switch)
        return node

    def connect(self, a: int, b: int) -> tuple[int, int]:
        """Create a bidirectional channel between switches ``a`` and ``b``.

        Returns the pair of channel ids ``(cid_ab, cid_ba)``.
        """
        self._require_switch(a)
        self._require_switch(b)
        if a == b:
            raise TopologyError("self-loop channels are not allowed")
        if b in self._adjacency[a]:
            raise TopologyError(f"nodes {a} and {b} are already connected")
        return self._connect_nodes(a, b)

    def _add_node(self, kind: NodeKind, label: str | None) -> int:
        node = len(self._kinds)
        if label is None:
            prefix = "s" if kind is NodeKind.SWITCH else "p"
            label = f"{prefix}{node}"
        if label in self._label_to_node:
            raise TopologyError(f"duplicate node label {label!r}")
        self._kinds.append(kind)
        self._labels.append(label)
        self._adjacency.append({})
        self._label_to_node[label] = node
        return node

    def _connect_nodes(self, a: int, b: int) -> tuple[int, int]:
        self._check_port_budget(a)
        self._check_port_budget(b)
        role_ab, role_ba = self._link_roles(a, b)
        cid_ab = len(self._channels)
        cid_ba = cid_ab + 1
        self._channels.append(Channel(cid_ab, a, b, role_ab, cid_ba))
        self._channels.append(Channel(cid_ba, b, a, role_ba, cid_ab))
        self._adjacency[a][b] = cid_ab
        self._adjacency[b][a] = cid_ba
        return cid_ab, cid_ba

    def _link_roles(self, a: int, b: int) -> tuple[LinkRole, LinkRole]:
        ka, kb = self._kinds[a], self._kinds[b]
        if ka is NodeKind.PROCESSOR and kb is NodeKind.SWITCH:
            return LinkRole.INJECTION, LinkRole.CONSUMPTION
        if ka is NodeKind.SWITCH and kb is NodeKind.PROCESSOR:
            return LinkRole.CONSUMPTION, LinkRole.INJECTION
        if ka is NodeKind.SWITCH and kb is NodeKind.SWITCH:
            return LinkRole.INTERNAL, LinkRole.INTERNAL
        raise TopologyError("processors may not be connected to each other")

    def _check_port_budget(self, node: int) -> None:
        if self._kinds[node] is NodeKind.PROCESSOR:
            if self._adjacency[node]:
                raise TopologyError(f"processor {node} already has its single channel")
            return
        if self.ports_per_switch is not None and len(self._adjacency[node]) >= self.ports_per_switch:
            raise TopologyError(
                f"switch {node} already uses all {self.ports_per_switch} ports"
            )

    def _require_switch(self, node: int) -> None:
        self._require_node(node)
        if self._kinds[node] is not NodeKind.SWITCH:
            raise TopologyError(f"node {node} is not a switch")

    def _require_node(self, node: int) -> None:
        if not 0 <= node < len(self._kinds):
            raise TopologyError(f"node {node} does not exist")

    # ------------------------------------------------------------------
    # Node queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of vertices (switches plus processors)."""
        return len(self._kinds)

    @property
    def num_switches(self) -> int:
        """Number of switch vertices."""
        return sum(1 for k in self._kinds if k is NodeKind.SWITCH)

    @property
    def num_processors(self) -> int:
        """Number of processor vertices."""
        return sum(1 for k in self._kinds if k is NodeKind.PROCESSOR)

    @property
    def num_channels(self) -> int:
        """Number of unidirectional channels."""
        return len(self._channels)

    def nodes(self) -> range:
        """All node ids."""
        return range(len(self._kinds))

    def switches(self) -> list[int]:
        """Node ids of every switch, in creation order."""
        return [n for n, k in enumerate(self._kinds) if k is NodeKind.SWITCH]

    def processors(self) -> list[int]:
        """Node ids of every processor, in creation order."""
        return [n for n, k in enumerate(self._kinds) if k is NodeKind.PROCESSOR]

    def kind(self, node: int) -> NodeKind:
        """Kind (switch/processor) of ``node``."""
        self._require_node(node)
        return self._kinds[node]

    def is_switch(self, node: int) -> bool:
        """``True`` if ``node`` is a switch."""
        return self.kind(node) is NodeKind.SWITCH

    def is_processor(self, node: int) -> bool:
        """``True`` if ``node`` is a processor."""
        return self.kind(node) is NodeKind.PROCESSOR

    def label(self, node: int) -> str:
        """Human-readable label of ``node``."""
        self._require_node(node)
        return self._labels[node]

    def node_by_label(self, label: str) -> int:
        """Node id for a label assigned at construction time."""
        try:
            return self._label_to_node[label]
        except KeyError as exc:
            raise TopologyError(f"no node labelled {label!r}") from exc

    def degree(self, node: int) -> int:
        """Number of bidirectional channels incident to ``node``."""
        self._require_node(node)
        return len(self._adjacency[node])

    def neighbors(self, node: int) -> list[int]:
        """Neighbouring node ids of ``node`` (sorted for determinism)."""
        self._require_node(node)
        return sorted(self._adjacency[node])

    def switch_of(self, processor: int) -> int:
        """The unique switch a processor is attached to."""
        self._require_node(processor)
        if self._kinds[processor] is not NodeKind.PROCESSOR:
            raise TopologyError(f"node {processor} is not a processor")
        (switch,) = self._adjacency[processor].keys()
        return switch

    def processors_of(self, switch: int) -> list[int]:
        """Processors attached to ``switch`` (sorted)."""
        self._require_switch(switch)
        return sorted(
            n for n in self._adjacency[switch] if self._kinds[n] is NodeKind.PROCESSOR
        )

    def attached_processor(self, switch: int) -> int | None:
        """The single attached processor, or ``None``.

        Convenience accessor for the paper's configuration of exactly one
        processor per switch; raises if more than one is attached.
        """
        procs = self.processors_of(switch)
        if not procs:
            return None
        if len(procs) > 1:
            raise TopologyError(f"switch {switch} has {len(procs)} processors attached")
        return procs[0]

    # ------------------------------------------------------------------
    # Channel queries
    # ------------------------------------------------------------------
    def channels(self) -> Sequence[Channel]:
        """All unidirectional channels, indexed by ``cid``."""
        return self._channels

    def channel(self, cid: int) -> Channel:
        """Channel with identifier ``cid``."""
        if not 0 <= cid < len(self._channels):
            raise TopologyError(f"channel {cid} does not exist")
        return self._channels[cid]

    def channel_between(self, src: int, dst: int) -> Channel:
        """The unidirectional channel from ``src`` to ``dst``."""
        self._require_node(src)
        self._require_node(dst)
        try:
            return self._channels[self._adjacency[src][dst]]
        except KeyError as exc:
            raise TopologyError(f"no channel from {src} to {dst}") from exc

    def has_channel(self, src: int, dst: int) -> bool:
        """``True`` if a unidirectional channel from ``src`` to ``dst`` exists."""
        self._require_node(src)
        self._require_node(dst)
        return dst in self._adjacency[src]

    def channels_from(self, node: int) -> list[Channel]:
        """Outgoing channels of ``node``, sorted by destination id."""
        self._require_node(node)
        return [self._channels[self._adjacency[node][nbr]] for nbr in sorted(self._adjacency[node])]

    def channels_into(self, node: int) -> list[Channel]:
        """Incoming channels of ``node``, sorted by source id."""
        self._require_node(node)
        return [
            self._channels[self._channels[self._adjacency[node][nbr]].reverse_cid]
            for nbr in sorted(self._adjacency[node])
        ]

    def injection_channel(self, processor: int) -> Channel:
        """The processor-to-switch channel of ``processor``."""
        switch = self.switch_of(processor)
        return self.channel_between(processor, switch)

    def consumption_channel(self, processor: int) -> Channel:
        """The switch-to-processor channel of ``processor``."""
        switch = self.switch_of(processor)
        return self.channel_between(switch, processor)

    def switch_channels(self) -> list[Channel]:
        """All switch-to-switch channels."""
        return [c for c in self._channels if c.role is LinkRole.INTERNAL]

    # ------------------------------------------------------------------
    # Graph-level queries
    # ------------------------------------------------------------------
    def switch_adjacency(self) -> dict[int, list[int]]:
        """Adjacency restricted to switches (sorted neighbour lists)."""
        adj: dict[int, list[int]] = {}
        for s in self.switches():
            adj[s] = [n for n in sorted(self._adjacency[s]) if self._kinds[n] is NodeKind.SWITCH]
        return adj

    def is_connected(self) -> bool:
        """``True`` if the full graph (switches and processors) is connected."""
        if self.num_nodes == 0:
            return True
        seen = {0}
        queue = deque([0])
        while queue:
            u = queue.popleft()
            for v in self._adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return len(seen) == self.num_nodes

    def require_connected(self) -> None:
        """Raise :class:`ConnectivityError` if the network is disconnected."""
        if not self.is_connected():
            raise ConnectivityError(f"network {self.name!r} is not connected")

    def shortest_distances_from(self, source: int) -> dict[int, int]:
        """Unweighted shortest hop distance from ``source`` to every node."""
        self._require_node(source)
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adjacency[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def switch_distance_matrix(self) -> dict[int, dict[int, int]]:
        """All-pairs unweighted distances over the switch-only subgraph.

        Used by the paper's selection function (priority by distance from
        a channel endpoint to the LCA).
        """
        switch_set = set(self.switches())
        matrix: dict[int, dict[int, int]] = {}
        for s in self.switches():
            dist = {s: 0}
            queue = deque([s])
            while queue:
                u = queue.popleft()
                for v in self._adjacency[u]:
                    if v in switch_set and v not in dist:
                        dist[v] = dist[u] + 1
                        queue.append(v)
            matrix[s] = dist
        return matrix

    def to_networkx(self) -> nx.Graph:
        """Export the undirected topology as a :class:`networkx.Graph`.

        Node attributes: ``kind`` and ``label``.  Edge attribute: ``cids``
        with the pair of unidirectional channel ids.
        """
        graph = nx.Graph(name=self.name)
        for node in self.nodes():
            graph.add_node(node, kind=self._kinds[node].value, label=self._labels[node])
        seen: set[tuple[int, int]] = set()
        for chan in self._channels:
            key = (min(chan.src, chan.dst), max(chan.src, chan.dst))
            if key in seen:
                continue
            seen.add(key)
            graph.add_edge(chan.src, chan.dst, cids=(chan.cid, chan.reverse_cid))
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(name={self.name!r}, switches={self.num_switches}, "
            f"processors={self.num_processors}, channels={self.num_channels})"
        )

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------
    def iter_bidirectional_links(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected link once as an ``(a, b)`` pair with ``a < b``."""
        for chan in self._channels:
            if chan.src < chan.dst:
                yield chan.src, chan.dst

    def subgraph_switch_edges(self) -> Iterable[tuple[int, int]]:
        """Yield each switch-to-switch undirected link once."""
        for a, b in self.iter_bidirectional_links():
            if self._kinds[a] is NodeKind.SWITCH and self._kinds[b] is NodeKind.SWITCH:
                yield a, b
