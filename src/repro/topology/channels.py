"""Channel-level vocabulary for switch-based direct networks.

The paper models a network as an undirected graph whose edges are
*bidirectional channels*, i.e. pairs of unidirectional channels.  The
up*/down* partition (and SPAM's refinement of it) assigns every
unidirectional channel an **orientation** (up or down) and a **kind**
(tree or cross).  This module defines those vocabularies plus the
:class:`Channel` record used throughout the library.

Processor links are a special case: every processor is a leaf attached to
exactly one switch, so the processor-to-switch channel is always an *up
tree* channel (it is the first channel of every route) and the
switch-to-processor channel is always a *down tree* channel (it is the last
channel of every route).  The :class:`LinkRole` enum distinguishes these
injection/consumption links from ordinary switch-to-switch links.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class NodeKind(enum.Enum):
    """Kind of a vertex in the network graph.

    ``SWITCH`` vertices form the set :math:`V_1` of the paper and may have
    degree up to the switch's port count.  ``PROCESSOR`` vertices form
    :math:`V_2`, always have degree one and are leaves of every spanning
    tree.
    """

    SWITCH = "switch"
    PROCESSOR = "processor"


class LinkRole(enum.Enum):
    """Functional role of a unidirectional channel."""

    #: Switch-to-switch channel (may be a tree or a cross channel).
    INTERNAL = "internal"
    #: Processor-to-switch channel; always the first hop of a route.
    INJECTION = "injection"
    #: Switch-to-processor channel; always the last hop of a route.
    CONSUMPTION = "consumption"


class Orientation(enum.Enum):
    """Up/down orientation of a unidirectional channel.

    A channel is *up* when it is directed towards the root of the spanning
    tree (or, for same-level cross channels, from the higher-ID endpoint to
    the lower-ID endpoint) and *down* otherwise.
    """

    UP = "up"
    DOWN = "down"

    def opposite(self) -> "Orientation":
        """Return the other orientation."""
        return Orientation.DOWN if self is Orientation.UP else Orientation.UP


class ChannelKind(enum.Enum):
    """Tree/cross kind of a unidirectional channel.

    Tree channels correspond to edges of the spanning tree; cross channels
    are all remaining switch-to-switch channels.  SPAM distinguishes *down
    tree* from *down cross* channels; no distinction is needed among up
    channels, but the labelling retains the kind for analysis purposes.
    """

    TREE = "tree"
    CROSS = "cross"


@dataclass(frozen=True, slots=True)
class ChannelLabel:
    """The SPAM-relevant label of a unidirectional channel.

    Attributes
    ----------
    orientation:
        :class:`Orientation.UP` or :class:`Orientation.DOWN`.
    kind:
        :class:`ChannelKind.TREE` or :class:`ChannelKind.CROSS`.
    """

    orientation: Orientation
    kind: ChannelKind

    @property
    def is_up(self) -> bool:
        """``True`` for up channels (tree or cross)."""
        return self.orientation is Orientation.UP

    @property
    def is_down_tree(self) -> bool:
        """``True`` for down tree channels."""
        return self.orientation is Orientation.DOWN and self.kind is ChannelKind.TREE

    @property
    def is_down_cross(self) -> bool:
        """``True`` for down cross channels."""
        return self.orientation is Orientation.DOWN and self.kind is ChannelKind.CROSS

    def short(self) -> str:
        """Compact human-readable form such as ``"up-tree"``."""
        return f"{self.orientation.value}-{self.kind.value}"


#: Convenience constants for the four possible labels.
UP_TREE = ChannelLabel(Orientation.UP, ChannelKind.TREE)
UP_CROSS = ChannelLabel(Orientation.UP, ChannelKind.CROSS)
DOWN_TREE = ChannelLabel(Orientation.DOWN, ChannelKind.TREE)
DOWN_CROSS = ChannelLabel(Orientation.DOWN, ChannelKind.CROSS)


@dataclass(frozen=True, slots=True)
class Channel:
    """A unidirectional channel of the network.

    Every undirected edge of the network graph is represented by two
    :class:`Channel` objects, one per direction.  Channels are identified by
    a dense integer ``cid`` assigned by the :class:`~repro.topology.network.Network`
    in creation order; the simulator and the verification utilities index
    arrays and bitmasks by ``cid``.

    Attributes
    ----------
    cid:
        Dense integer identifier, unique within a network.
    src:
        Node id of the transmitting endpoint.
    dst:
        Node id of the receiving endpoint.
    role:
        Whether this is a switch-to-switch, injection or consumption channel.
    reverse_cid:
        ``cid`` of the channel in the opposite direction of the same
        bidirectional link.
    """

    cid: int
    src: int
    dst: int
    role: LinkRole
    reverse_cid: int

    @property
    def endpoints(self) -> tuple[int, int]:
        """``(src, dst)`` pair."""
        return (self.src, self.dst)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Channel#{self.cid}({self.src}->{self.dst},{self.role.value})"
