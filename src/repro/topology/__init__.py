"""Network topology substrate: the switch-based direct-network model,
channel vocabulary, generators for irregular and regular topologies, and
validation / property helpers.

Public entry points
-------------------
* :class:`~repro.topology.network.Network` — the graph model.
* :class:`~repro.topology.builder.NetworkBuilder` and
  :func:`~repro.topology.builder.network_from_edges` — hand construction.
* :func:`~repro.topology.irregular.lattice_irregular_network` — the paper's
  random-lattice irregular networks.
* :func:`~repro.topology.regular.mesh_network`,
  :func:`~repro.topology.regular.torus_network`,
  :func:`~repro.topology.regular.hypercube_network` — regular topologies.
* :func:`~repro.topology.examples.figure1_network` — the paper's Figure 1.
"""

from .builder import NetworkBuilder, network_from_edges
from .channels import (
    DOWN_CROSS,
    DOWN_TREE,
    UP_CROSS,
    UP_TREE,
    Channel,
    ChannelKind,
    ChannelLabel,
    LinkRole,
    NodeKind,
    Orientation,
)
from .examples import Figure1Fixture, figure1_network, line_network, two_switch_network
from .irregular import (
    IrregularLatticeGenerator,
    lattice_irregular_network,
    random_irregular_network,
)
from .network import Network
from .properties import (
    TopologySummary,
    average_switch_distance,
    degree_histogram,
    graph_center_switches,
    summarize,
    switch_diameter,
    switch_eccentricities,
)
from .regular import hypercube_network, mesh_network, ring_network, star_network, torus_network
from .serialization import load_network, network_from_dict, network_to_dict, save_network
from .validate import ValidationReport, validate_network

__all__ = [
    "Channel",
    "ChannelKind",
    "ChannelLabel",
    "LinkRole",
    "NodeKind",
    "Orientation",
    "UP_TREE",
    "UP_CROSS",
    "DOWN_TREE",
    "DOWN_CROSS",
    "Network",
    "NetworkBuilder",
    "network_from_edges",
    "Figure1Fixture",
    "figure1_network",
    "two_switch_network",
    "line_network",
    "IrregularLatticeGenerator",
    "lattice_irregular_network",
    "random_irregular_network",
    "mesh_network",
    "torus_network",
    "hypercube_network",
    "star_network",
    "ring_network",
    "TopologySummary",
    "summarize",
    "switch_diameter",
    "switch_eccentricities",
    "graph_center_switches",
    "degree_histogram",
    "average_switch_distance",
    "ValidationReport",
    "validate_network",
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
]
