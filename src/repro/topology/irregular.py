"""Random irregular topology generators.

The paper's experiments (§4) use irregular switch-based networks generated as
follows:

* each switch has 8 ports;
* "in order to simulate physical proximity of connected switches, switches
  were randomly selected from points on an integer lattice and connected only
  to adjacent lattice points.  Thus, at most 4 ports per switch were used for
  connections to other switches";
* "in order to maximize the probability of contention between messages, each
  switch was connected to only one processor".

:class:`IrregularLatticeGenerator` reproduces that recipe.  Because the
authors' concrete random instances were never published, the generator takes
an explicit seed so that every experiment in this repository is exactly
reproducible.  A second generator, :func:`random_irregular_network`, produces
irregular networks from a random-graph model (useful for property-based tests
that want more varied degree distributions than the lattice model allows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .network import Network

__all__ = [
    "IrregularLatticeGenerator",
    "lattice_irregular_network",
    "random_irregular_network",
]


@dataclass(slots=True)
class IrregularLatticeGenerator:
    """Generate irregular networks following the paper's lattice recipe.

    Parameters
    ----------
    num_switches:
        Number of switches (the paper uses 128 and 256).
    ports_per_switch:
        Port budget per switch; the paper uses 8.
    max_interswitch_ports:
        Maximum number of ports used for switch-to-switch links (the lattice
        has 4 neighbours, hence the paper's "at most 4").
    processors_per_switch:
        Number of processors attached to each switch; the paper uses 1.
    occupancy:
        Fraction of lattice points that carry a switch.  Lower occupancy
        produces sparser, more irregular networks.  The lattice side length
        is derived from ``num_switches`` and ``occupancy``.
    """

    num_switches: int
    ports_per_switch: int = 8
    max_interswitch_ports: int = 4
    processors_per_switch: int = 1
    occupancy: float = 0.66

    def __post_init__(self) -> None:
        if self.num_switches < 2:
            raise ConfigurationError("need at least two switches")
        if not 0.05 < self.occupancy <= 1.0:
            raise ConfigurationError("occupancy must be in (0.05, 1.0]")
        if self.max_interswitch_ports < 2:
            raise ConfigurationError("max_interswitch_ports must be at least 2")
        if self.ports_per_switch < self.max_interswitch_ports + self.processors_per_switch:
            raise ConfigurationError(
                "ports_per_switch must accommodate inter-switch links and processors"
            )

    # ------------------------------------------------------------------
    def generate(self, seed: int | np.random.Generator = 0) -> Network:
        """Generate one random irregular network.

        The construction places switches on random distinct points of a
        square integer lattice, links lattice-adjacent switches (respecting
        the inter-switch port budget) and finally adds a minimal number of
        extra links between nearest points of distinct connected components
        so that the result is always connected.
        """
        rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
        side = max(2, math.ceil(math.sqrt(self.num_switches / self.occupancy)))
        points = self._sample_points(rng, side)
        network = Network(
            ports_per_switch=self.ports_per_switch,
            name=f"irregular-lattice-{self.num_switches}",
        )
        coord_to_switch: dict[tuple[int, int], int] = {}
        for index, (x, y) in enumerate(points):
            switch = network.add_switch(f"s{index}")
            coord_to_switch[(x, y)] = switch

        interswitch_degree = [0] * self.num_switches
        self._link_lattice_neighbours(network, coord_to_switch, interswitch_degree, rng)
        self._stitch_components(network, points, coord_to_switch, interswitch_degree)

        for switch in list(network.switches()):
            for p in range(self.processors_per_switch):
                suffix = "" if self.processors_per_switch == 1 else f"_{p}"
                network.add_processor(switch, f"p{switch}{suffix}")
        network.require_connected()
        return network

    # ------------------------------------------------------------------
    def _sample_points(self, rng: np.random.Generator, side: int) -> list[tuple[int, int]]:
        total = side * side
        if total < self.num_switches:
            side = math.ceil(math.sqrt(self.num_switches))
            total = side * side
        chosen = rng.choice(total, size=self.num_switches, replace=False)
        return [(int(c % side), int(c // side)) for c in chosen]

    def _link_lattice_neighbours(
        self,
        network: Network,
        coord_to_switch: dict[tuple[int, int], int],
        interswitch_degree: list[int],
        rng: np.random.Generator,
    ) -> None:
        coords = list(coord_to_switch)
        order = rng.permutation(len(coords))
        for idx in order:
            x, y = coords[idx]
            a = coord_to_switch[(x, y)]
            for dx, dy in ((1, 0), (0, 1)):
                nbr = (x + dx, y + dy)
                if nbr not in coord_to_switch:
                    continue
                b = coord_to_switch[nbr]
                if interswitch_degree[a] >= self.max_interswitch_ports:
                    break
                if interswitch_degree[b] >= self.max_interswitch_ports:
                    continue
                network.connect(a, b)
                interswitch_degree[a] += 1
                interswitch_degree[b] += 1

    def _stitch_components(
        self,
        network: Network,
        points: list[tuple[int, int]],
        coord_to_switch: dict[tuple[int, int], int],
        interswitch_degree: list[int],
    ) -> None:
        """Join disconnected switch components with nearest-point links.

        The paper does not describe how disconnected instances were handled;
        joining components with the geometrically shortest extra link is the
        most conservative completion (it preserves the "physical proximity"
        property the lattice placement is meant to model).
        """
        components = self._switch_components(network)
        while len(components) > 1:
            base = components[0]
            best: tuple[float, int, int] | None = None
            for other in components[1:]:
                for a in base:
                    ax, ay = points[a]
                    for b in other:
                        bx, by = points[b]
                        if (
                            interswitch_degree[a] >= self.max_interswitch_ports
                            or interswitch_degree[b] >= self.max_interswitch_ports
                        ):
                            continue
                        d = (ax - bx) ** 2 + (ay - by) ** 2
                        if best is None or d < best[0]:
                            best = (d, a, b)
            if best is None:
                # All port budgets exhausted at the frontier; relax the
                # inter-switch limit for the stitching link only.
                a = min(base)
                b = min(components[1])
            else:
                _, a, b = best
            network.connect(a, b)
            interswitch_degree[a] += 1
            interswitch_degree[b] += 1
            components = self._switch_components(network)

    @staticmethod
    def _switch_components(network: Network) -> list[list[int]]:
        remaining = set(network.switches())
        components: list[list[int]] = []
        while remaining:
            start = min(remaining)  # repro-lint: disable=R1 -- min over a set of ints is order-independent
            stack = [start]
            comp = {start}
            while stack:
                u = stack.pop()
                for v in network.neighbors(u):
                    if v in remaining and v in network.switches() and v not in comp:
                        comp.add(v)
                        stack.append(v)
            comp_sorted = sorted(comp)
            components.append(comp_sorted)
            remaining -= comp
        return components


def lattice_irregular_network(
    num_switches: int,
    seed: int = 0,
    ports_per_switch: int = 8,
    occupancy: float = 0.66,
) -> Network:
    """Convenience wrapper building one paper-style irregular network."""
    generator = IrregularLatticeGenerator(
        num_switches=num_switches,
        ports_per_switch=ports_per_switch,
        occupancy=occupancy,
    )
    return generator.generate(seed)


def random_irregular_network(
    num_switches: int,
    extra_links: int = 0,
    seed: int = 0,
    ports_per_switch: int | None = None,
    processors_per_switch: int = 1,
) -> Network:
    """Generate a connected random irregular network (random-tree-plus-chords).

    The construction first builds a random spanning tree over the switches
    (guaranteeing connectivity), then adds ``extra_links`` random chords,
    then attaches ``processors_per_switch`` processors to every switch.
    This model is not the paper's lattice model; it exists for unit and
    property-based tests that need small, highly varied irregular topologies.
    """
    if num_switches < 1:
        raise ConfigurationError("need at least one switch")
    rng = np.random.default_rng(seed)
    network = Network(ports_per_switch=ports_per_switch, name=f"random-irregular-{num_switches}")
    for i in range(num_switches):
        network.add_switch(f"s{i}")
    switches = network.switches()
    # Random spanning tree: connect node i to a uniformly random earlier node.
    for i in range(1, num_switches):
        j = int(rng.integers(0, i))
        network.connect(switches[i], switches[j])
    # Random chords.
    attempts = 0
    added = 0
    while added < extra_links and attempts < 50 * max(1, extra_links):
        attempts += 1
        a, b = rng.choice(num_switches, size=2, replace=False)
        a, b = int(a), int(b)
        if network.has_channel(switches[a], switches[b]):
            continue
        if ports_per_switch is not None and (
            network.degree(switches[a]) >= ports_per_switch
            or network.degree(switches[b]) >= ports_per_switch
        ):
            continue
        network.connect(switches[a], switches[b])
        added += 1
    for switch in switches:
        for p in range(processors_per_switch):
            suffix = "" if processors_per_switch == 1 else f"_{p}"
            network.add_processor(switch, f"p{switch}{suffix}")
    return network
