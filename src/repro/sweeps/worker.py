"""Coordinator worker: the client half of the fleet protocol.

A worker is any process that can reach the coordinator's JSON-over-HTTP
endpoint (:class:`~repro.sweeps.coordinator.CoordinatorServer`).  It loops:
request a lease, evaluate the leased specs through the same
:func:`~repro.sweeps.spec.evaluate_spec` path every other execution mode
uses, submit the rows, repeat until the coordinator reports the sweep
complete.  Workers hold no durable state — the lease protocol plus the
store's content-addressed idempotence mean a worker can die at any point
(before, during or after evaluation) and the fleet still converges.

:class:`WorkerClient` speaks the wire protocol (stdlib ``urllib``);
:func:`run_worker` is the full loop, used by ``repro-spam sweep work`` and
by the fault-injection harness (``tools/coordinator_fault_check.py``,
``tests/test_coordinator.py``).

Fault injection
---------------
``run_worker(..., fault=...)`` scripts the failure modes the coordinator
must absorb.  Faults fire on the worker's *first* lease, then the worker
exits, so a harness pairs one faulty worker with healthy ones and asserts
convergence:

``"stall"``
    Acquire a lease, announce it on stdout (``lease N acquired; stalling``)
    and block forever — the harness SIGKILLs the process mid-lease and the
    coordinator must expire the lease and re-queue its points.
``"die-before-submit"``
    Evaluate the lease fully, then exit without submitting (a worker dying
    at the last instant; indistinguishable from a crash to the coordinator).
``"partial-submit"``
    Submit only the first half of the lease's rows: the coordinator must
    complete those and immediately re-queue the rest.
``"foreign-salt"``
    Submit every row under a wrong code salt (a worker running mismatched
    code): the coordinator must reject all rows and keep the points owed.
``"duplicate-submit"``
    Submit the same rows twice (retry storms): the second submission must
    be absorbed idempotently.  The worker then continues healthily.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..errors import SweepError
from .spec import SweepPointSpec, evaluate_spec, spec_from_dict
from .store import default_code_salt, result_row

__all__ = ["WorkerClient", "WorkerReport", "run_worker", "WORKER_FAULTS"]

#: Fault modes :func:`run_worker` can script (see module docstring).
WORKER_FAULTS = (
    "none",
    "stall",
    "die-before-submit",
    "partial-submit",
    "foreign-salt",
    "duplicate-submit",
)


class WorkerClient:
    """JSON-over-HTTP client for the coordinator protocol.

    Methods raise :class:`~repro.errors.SweepError` on protocol-level
    errors (a 4xx response carries an ``{"error": ...}`` body) and let
    connection failures (``urllib.error.URLError``) propagate — a worker
    losing its coordinator has no useful local recovery.
    """

    def __init__(self, url: str, worker_id: str = "worker", timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.worker_id = worker_id
        self.timeout = timeout

    def _request(self, path: str, payload: dict[str, Any] | None = None) -> dict[str, Any]:
        if payload is None:
            request = urllib.request.Request(self.url + path, method="GET")
        else:
            body = json.dumps(payload).encode("utf-8")
            request = urllib.request.Request(
                self.url + path,
                data=body,
                method="POST",
                headers={"Content-Type": "application/json"},
            )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                document = json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                document = json.loads(exc.read())
                message = document.get("error", str(exc))
            except (json.JSONDecodeError, AttributeError):
                message = str(exc)
            raise SweepError(f"coordinator rejected {path}: {message}") from None
        if not isinstance(document, dict):
            raise SweepError(f"coordinator returned a non-object response for {path}")
        return document

    def lease(self, max_points: int | None = None) -> dict[str, Any]:
        """Request a lease: ``{"lease": {...} | None, "complete": bool,
        "retry_after": float}``."""
        payload: dict[str, Any] = {"worker": self.worker_id}
        if max_points is not None:
            payload["max_points"] = int(max_points)
        return self._request("/api/lease", payload)

    def renew(self, lease_id: int) -> dict[str, Any]:
        """Extend a lease's deadline by the coordinator's TTL."""
        return self._request("/api/renew", {"lease": int(lease_id)})

    def submit_rows(self, lease_id: int | None, rows: Sequence[dict]) -> dict[str, Any]:
        """Submit store rows for a lease (``None``: unsolicited rows, e.g.
        recovered from a previous worker's local store)."""
        return self._request(
            "/api/submit",
            {"lease": None if lease_id is None else int(lease_id), "rows": list(rows)},
        )

    def status(self) -> dict[str, Any]:
        """The coordinator's current accounting."""
        return self._request("/api/status")

    def shutdown(self) -> dict[str, Any]:
        """Ask the coordinator process to stop serving."""
        return self._request("/api/shutdown", {})


@dataclass
class WorkerReport:
    """What one :func:`run_worker` loop did."""

    worker_id: str
    leases: int = 0
    points_evaluated: int = 0
    rows_submitted: int = 0
    faults_injected: int = 0
    #: Why the loop ended: ``"complete"`` (coordinator reported the sweep
    #: done), ``"fault"`` (a scripted one-shot fault ended the worker) or
    #: ``"lease-limit"`` (``max_leases`` reached).
    stopped: str = "complete"

    def summary(self) -> str:
        return (
            f"worker {self.worker_id}: {self.leases} leases, "
            f"{self.points_evaluated} points evaluated, "
            f"{self.rows_submitted} rows submitted ({self.stopped})"
        )


def run_worker(
    url: str,
    worker_id: str = "worker",
    max_points: int | None = None,
    poll_interval: float = 0.25,
    max_leases: int | None = None,
    fault: str = "none",
    evaluate: Callable[[SweepPointSpec], Any] = evaluate_spec,
    announce: Callable[[str], None] | None = None,
) -> WorkerReport:
    """Drain leases from the coordinator at ``url`` until the sweep is done.

    Each lease's specs are evaluated with ``evaluate`` (the library's
    :func:`~repro.sweeps.spec.evaluate_spec` by default) and the rows are
    submitted in one request.  ``fault`` scripts a one-shot failure mode on
    the first lease (see the module docstring); ``announce`` receives
    progress lines (the CLI passes ``print``).  The worker refuses to start
    against a coordinator running a different code salt — its rows would
    all be rejected as foreign.
    """
    if fault not in WORKER_FAULTS:
        raise ValueError(f"unknown fault {fault!r}; pick one of {WORKER_FAULTS}")
    client = WorkerClient(url, worker_id)
    report = WorkerReport(worker_id=worker_id)
    say = announce if announce is not None else (lambda line: None)
    first_lease = True
    while True:
        if max_leases is not None and report.leases >= max_leases:
            report.stopped = "lease-limit"
            return report
        response = client.lease(max_points)
        lease = response.get("lease")
        if lease is None:
            if response.get("complete"):
                report.stopped = "complete"
                return report
            # Every owed point is covered by someone else's active lease:
            # poll until one completes or expires.
            time.sleep(poll_interval)
            continue
        lease_id = int(lease["id"])
        salt = str(lease["salt"])
        if salt != default_code_salt() and fault != "foreign-salt":
            raise SweepError(
                f"coordinator runs code salt {salt!r} but this worker has "
                f"{default_code_salt()!r}; every submission would be rejected "
                f"— align the code versions"
            )
        report.leases += 1
        say(f"lease {lease_id} acquired ({len(lease['specs'])} points)")
        active_fault = fault if first_lease and fault != "none" else "none"
        first_lease = False
        if active_fault == "stall":
            report.faults_injected += 1
            say(f"lease {lease_id} stalling")
            while True:  # the harness kills the process here
                time.sleep(poll_interval)
        rows = []
        for spec_data in lease["specs"]:
            spec = spec_from_dict(spec_data)
            result = evaluate(spec)
            rows.append(result_row(result))
            report.points_evaluated += 1
        if active_fault == "die-before-submit":
            report.faults_injected += 1
            report.stopped = "fault"
            say(f"lease {lease_id} dying before submit")
            return report
        if active_fault == "foreign-salt":
            report.faults_injected += 1
            rows = [dict(row, salt="foreign-salt/injected-by-harness") for row in rows]
        if active_fault == "partial-submit":
            report.faults_injected += 1
            rows = rows[: max(1, len(rows) // 2)]
        outcome = client.submit_rows(lease_id, rows)
        report.rows_submitted += len(rows)
        say(
            f"lease {lease_id} submitted: {outcome.get('accepted', 0)} accepted, "
            f"{outcome.get('foreign_salt', 0)} foreign, "
            f"{len(outcome.get('requeued', ()))} requeued"
        )
        if active_fault == "duplicate-submit":
            # Lease is closed now; the retry arrives lease-less and must be
            # absorbed idempotently.
            client.submit_rows(None, rows)
            report.rows_submitted += len(rows)
        if active_fault in ("foreign-salt", "partial-submit"):
            report.stopped = "fault"
            return report
        if outcome.get("complete"):
            report.stopped = "complete"
            return report
