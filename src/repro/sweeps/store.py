"""Content-addressed sweep result store.

Results are stored under a cache directory (default ``.sweep-cache/``,
overridable via ``REPRO_SWEEP_CACHE``) in two files:

``results.jsonl``
    Append-only JSON Lines; one row per completed sweep point::

        {"key": <sha256>, "salt": <code salt>, "spec": {...},
         "latencies_us": [...], "metrics": {...}}

    Appending (never rewriting) is what makes the scheduler's per-point
    checkpointing crash-safe: a killed run leaves a valid prefix plus at
    most one truncated trailing line, which the next open detects and
    drops.  When a key is appended twice the *last* row wins.

``index.json``
    Acceleration structure: ``{"size": <bytes indexed>, "offsets":
    {key: byte offset into results.jsonl}}``.  The index is advisory —
    whenever its recorded size differs from the data file's actual size
    (a killed run, a hand-edited store, a merge performed by another
    process) the data file is rescanned and the index rebuilt, so deleting
    ``index.json`` is always safe.  The same staleness check is applied to
    the in-memory index on every access, so a store instance notices when
    the data file changed underneath it (e.g. :func:`merge_stores` into a
    root another instance had open, or after :meth:`ResultStore.clear`).

``manifest.json``
    Per-shard completion manifest: ``{"schema": 1, "salt": <code salt>,
    "shard": [index, count] | null, "expected": [<sha256>, ...]}`` — the
    spec keys a sweep was *asked* to produce, independent of what has been
    computed so far.  ``done``/``missing`` are derived by intersecting
    ``expected`` with the data file, so a coordinator can report which
    shards still owe points (:meth:`ResultStore.manifest_status`).
    Re-recording unions the expected keys while the salt matches; a salt
    change (code upgrade) resets the manifest.

Hashing contract
----------------
The key of a row is ``sha256(canonical-json({"salt": ..., "spec":
spec.as_dict()}))``: every field of :class:`~repro.sweeps.spec.SweepPointSpec`
participates, so any parameter change produces a different key, and the
*code salt* folds the library version plus a store schema version in, so
results computed by older code are never silently reused after an upgrade
(bump :data:`STORE_SCHEMA_VERSION` when changing what the simulator's
observable behaviour or the row format means).  Identity of results is
content-addressed; nothing depends on file order or timestamps.

The store is single-writer: one orchestrator process appends (worker
processes return results over the pool, they never touch the store).
Multi-host sweeps therefore use one store *per shard* and combine them
afterwards with :func:`merge_stores` — content-addressed keys make the
merge conflict-free (last row wins), and rows computed under a different
code salt are rejected rather than silently mixed in.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..errors import SweepError
from .spec import SweepPointResult, SweepPointSpec, spec_from_dict

__all__ = [
    "DEFAULT_STORE_DIR",
    "STORE_SCHEMA_VERSION",
    "ManifestStatus",
    "MergeReport",
    "ResultStore",
    "default_code_salt",
    "merge_stores",
    "result_row",
    "spec_key",
]

#: Default cache directory (relative to the working directory).
DEFAULT_STORE_DIR = ".sweep-cache"

#: Bump when the meaning of stored rows changes (simulator behaviour,
#: spec semantics, row format): all previously stored rows become misses.
STORE_SCHEMA_VERSION = 1


def default_code_salt() -> str:
    """The default code-version salt: library version + store schema."""
    from .. import __version__

    return f"repro-{__version__}/sweep-schema-{STORE_SCHEMA_VERSION}"


def spec_key(spec: SweepPointSpec, code_salt: str | None = None) -> str:
    """Stable content hash of ``spec`` under ``code_salt``.

    Canonical JSON (sorted keys, no whitespace) of the spec dict plus the
    salt, hashed with SHA-256.  Two specs share a key iff every field is
    equal and they were produced under the same salt.
    """
    payload = {
        "salt": default_code_salt() if code_salt is None else code_salt,
        "spec": spec.as_dict(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def result_row(result: SweepPointResult, code_salt: str | None = None) -> dict:
    """The raw store-row form of ``result`` under ``code_salt``.

    This is the wire format of the whole sweep layer: what
    :meth:`ResultStore.put` appends, what :func:`merge_stores` transplants,
    and what a coordinator worker submits over the fleet protocol
    (:mod:`repro.sweeps.worker`) — a worker can build valid rows without
    ever opening a store of its own.
    """
    salt = default_code_salt() if code_salt is None else code_salt
    return {
        "key": spec_key(result.spec, salt),
        "salt": salt,
        "spec": result.spec.as_dict(),
        "latencies_us": list(result.latencies_us),
        # Pair list, not an object: metric order is part of the result
        # (report tables use it for column order) and canonical-JSON key
        # sorting must not scramble it.
        "metrics": [[k, v] for k, v in result.metrics],
    }


#: Bump when the manifest layout changes meaning.
_MANIFEST_SCHEMA = 1


@dataclass(frozen=True)
class ManifestStatus:
    """Completion accounting of a store against its recorded manifest."""

    #: ``(index, count)`` of the shard the manifest was recorded for
    #: (0-based index), or ``None`` for an unsharded / merged store.
    shard: tuple[int, int] | None
    #: Every spec key the sweep was asked to produce (sorted).
    expected: tuple[str, ...]
    #: The expected keys present in ``results.jsonl``.
    done: tuple[str, ...]
    #: The expected keys still absent.
    missing: tuple[str, ...]

    @property
    def complete(self) -> bool:
        return not self.missing

    def describe(self) -> str:
        """One-line accounting string for CLI/log output."""
        label = "store" if self.shard is None else (
            f"shard {self.shard[0] + 1}/{self.shard[1]}"
        )
        return (
            f"{label}: {len(self.done)}/{len(self.expected)} expected points done"
            + ("" if self.complete else f", {len(self.missing)} missing")
        )


class ResultStore:
    """Content-addressed store of :class:`SweepPointResult` rows.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``$REPRO_SWEEP_CACHE`` or
        ``.sweep-cache``.  Created on first write.
    code_salt:
        Override the code-version salt (tests use this to exercise
        invalidation; everything else should keep the default).
    """

    def __init__(self, root: str | os.PathLike | None = None, code_salt: str | None = None):
        if root is None:
            root = os.environ.get("REPRO_SWEEP_CACHE", DEFAULT_STORE_DIR)  # repro-lint: disable=R4 -- cache location knob; stored results are content-addressed so the path cannot change values
        self.root = Path(root)
        self.results_path = self.root / "results.jsonl"
        self.index_path = self.root / "index.json"
        self.manifest_path = self.root / "manifest.json"
        self.code_salt = default_code_salt() if code_salt is None else code_salt
        self._offsets: dict[str, int] | None = None
        #: Data-file size the in-memory index covers; ``None`` means "no
        #: in-memory index yet".  Checked against the actual file size on
        #: every access so external writes (a merge, a clear) are noticed.
        self._indexed_size: int | None = None

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _data_size(self) -> int:
        try:
            return self.results_path.stat().st_size
        except FileNotFoundError:
            return 0

    def _ensure_index(self) -> dict[str, int]:
        """Load the key → offset map, rescanning ``results.jsonl`` when the
        persisted *or in-memory* index is missing or stale.

        Staleness is judged by data-file size, for both indexes: an
        in-memory map built before another writer appended (or before the
        store was cleared and re-populated by a merge) is as untrustworthy
        as an out-of-date ``index.json``.
        """
        size = self._data_size()
        if self._offsets is not None and self._indexed_size == size:
            return self._offsets
        if self.index_path.exists():
            try:
                persisted = json.loads(self.index_path.read_text())
            except (OSError, json.JSONDecodeError):
                persisted = None
            if (
                isinstance(persisted, dict)
                and persisted.get("size") == size
                and isinstance(persisted.get("offsets"), dict)
            ):
                self._offsets = {str(k): int(v) for k, v in persisted["offsets"].items()}
                self._indexed_size = size
                return self._offsets
        self._offsets = self._scan()
        # _scan may have cut a truncated tail off, shrinking the file.
        self._indexed_size = self._data_size()
        return self._offsets

    def _scan(self) -> dict[str, int]:
        """Rebuild the offset map from the data file.

        A truncated trailing line (a run killed mid-append) is cut off so
        subsequent appends produce a valid file again; corruption anywhere
        else raises :class:`~repro.errors.SweepError`.
        """
        offsets: dict[str, int] = {}
        if not self.results_path.exists():
            return offsets
        with open(self.results_path, "rb") as handle:
            data = handle.read()
        position = 0
        valid_until = 0
        while position < len(data):
            newline = data.find(b"\n", position)
            line = data[position : len(data) if newline < 0 else newline]
            try:
                row = json.loads(line)
                key = row["key"]
            except (json.JSONDecodeError, KeyError, TypeError):
                if newline < 0:
                    break  # truncated tail from a killed run: drop it below
                raise SweepError(
                    f"corrupt sweep store row at byte {position} of "
                    f"{self.results_path}; delete the store to recover"
                )
            if newline < 0:
                break  # complete JSON but no newline: treat as truncated too
            offsets[str(key)] = position
            position = newline + 1
            valid_until = position
        if valid_until < len(data):
            with open(self.results_path, "r+b") as handle:
                handle.truncate(valid_until)
        return offsets

    def flush_index(self) -> None:
        """Persist the offset map so the next open skips the full rescan.

        The recorded size is the size the in-memory map actually covers,
        *not* a fresh ``stat`` of the data file: if another writer appended
        since this instance last looked, re-statting would persist a
        size-matching index with missing offsets — a poisoned index that
        later opens would trust.  Recording the covered size instead makes
        such an index merely stale, which the next open detects and repairs
        by rescanning.
        """
        if self._offsets is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"size": self._indexed_size, "offsets": self._offsets}
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(self.index_path)

    # ------------------------------------------------------------------
    # Content-addressed access
    # ------------------------------------------------------------------
    def key(self, spec: SweepPointSpec) -> str:
        """The content hash of ``spec`` under this store's code salt."""
        return spec_key(spec, self.code_salt)

    def __contains__(self, spec: SweepPointSpec) -> bool:
        return self.key(spec) in self._ensure_index()

    def __len__(self) -> int:
        return len(self._ensure_index())

    def get(self, spec: SweepPointSpec) -> SweepPointResult | None:
        """The stored result of ``spec``, or ``None`` on a cache miss."""
        offset = self._ensure_index().get(self.key(spec))
        if offset is None:
            return None
        row = self._read_row(offset)
        return SweepPointResult(
            spec=spec,
            latencies_us=tuple(row["latencies_us"]),
            metrics=tuple((k, v) for k, v in row.get("metrics", ())),
        )

    def _row(self, result: SweepPointResult) -> dict:
        return result_row(result, self.code_salt)

    def put(self, result: SweepPointResult) -> str:
        """Append ``result`` (checkpoint) and return its key."""
        return self.put_many([result])[0]

    def put_many(self, results: Sequence[SweepPointResult]) -> list[str]:
        """Append ``results`` under one file handle; returns their keys.

        The batched scheduler checkpoints a whole replication batch with one
        call so the open/append/close round-trip is paid per batch, not per
        replication.  Each result still lands under its own content-addressed
        spec key — warm-cache lookups and merges cannot tell (and do not
        care) whether a row was written singly or as part of a batch.
        """
        rows = [self._row(result) for result in results]
        self.append_rows(rows)
        return [str(row["key"]) for row in rows]

    def append_row(self, row: dict) -> str:
        """Append a raw store row (last row wins on lookup); returns its key.

        The merge path uses this to transplant rows between stores verbatim
        — the row's ``key`` field is trusted, so only rows that came out of
        a store under the same salt should ever be re-appended.
        """
        self.append_rows([row])
        return str(row["key"])

    def append_rows(self, rows: Sequence[dict]) -> None:
        """Append raw rows under one file handle (the bulk half of
        :meth:`append_row`; merges use it so row count does not translate
        into open/close round-trips)."""
        if not rows:
            return
        offsets = self._ensure_index()
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.results_path, "ab") as handle:
            end = handle.tell()
            for row in rows:
                offset = end
                data = (
                    json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
                ).encode("utf-8")
                handle.write(data)
                offsets[str(row["key"])] = offset
                end = offset + len(data)
        self._indexed_size = end

    def _read_row(self, offset: int) -> dict:
        with open(self.results_path, "rb") as handle:
            handle.seek(offset)
            line = handle.readline()
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise SweepError(
                f"corrupt sweep store row at byte {offset} of {self.results_path}"
            ) from exc

    def iter_results(self):
        """Yield every stored :class:`SweepPointResult` (any salt), rebuilding
        specs from the stored rows — the loader path for reassembling figures
        without re-running anything."""
        for offset in self._ensure_index().values():
            row = self._read_row(offset)
            yield SweepPointResult(
                spec=spec_from_dict(row["spec"]),
                latencies_us=tuple(row["latencies_us"]),
                metrics=tuple((k, v) for k, v in row.get("metrics", ())),
            )

    def get_row(self, key: str) -> dict | None:
        """The raw (winning) store row under ``key``, or ``None``."""
        offset = self._ensure_index().get(key)
        if offset is None:
            return None
        return self._read_row(offset)

    def iter_raw_rows(self) -> Iterator[tuple[str, dict]]:
        """Yield ``(key, row)`` for every key's *winning* raw row, in
        first-appearance order — the transplant path for merges (duplicate
        superseded rows are skipped, any salt included)."""
        for key, offset in self._ensure_index().items():
            yield key, self._read_row(offset)

    # ------------------------------------------------------------------
    # Completion manifest
    # ------------------------------------------------------------------
    def read_manifest(self) -> dict | None:
        """The raw ``manifest.json`` payload, or ``None`` when absent or
        unreadable (a manifest is advisory, like the index)."""
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or not isinstance(payload.get("expected"), list):
            return None
        return payload

    def _write_manifest(self, expected: Iterable[str], shard: tuple[int, int] | None) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": _MANIFEST_SCHEMA,
            "salt": self.code_salt,
            "shard": None if shard is None else [int(shard[0]), int(shard[1])],
            "expected": sorted(set(expected)),
        }
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        tmp.replace(self.manifest_path)

    def record_expected(
        self,
        specs: Sequence[SweepPointSpec],
        shard: tuple[int, int] | None = None,
    ) -> None:
        """Record ``specs`` (under this store's salt) as expected points.

        Expected keys accumulate across runs while the salt matches —
        several experiments can share one store and the manifest covers
        their union — and reset on a salt change (a code upgrade makes old
        expectations unreachable anyway).  ``shard`` tags the manifest with
        the 0-based ``(index, count)`` the sweep was restricted to; when
        runs with *different* shard designators accumulate into one store,
        the tag drops to ``None`` — the expected set then spans several
        shards and labelling it with the latest one would mis-attribute
        the others' owed points.
        """
        expected = {self.key(spec) for spec in specs}
        existing = self.read_manifest()
        if existing is not None and existing.get("salt") == self.code_salt:
            expected.update(str(key) for key in existing["expected"])
            if existing["expected"]:
                previous = existing.get("shard")
                same_tag = (
                    previous is None
                    and shard is None
                ) or (
                    previous is not None
                    and shard is not None
                    and [int(s) for s in previous] == [int(s) for s in shard]
                )
                if not same_tag:
                    shard = None
        self._write_manifest(expected, shard)

    def manifest_status(self) -> ManifestStatus | None:
        """Completion accounting against the recorded manifest (``None``
        when the store has no manifest)."""
        manifest = self.read_manifest()
        if manifest is None:
            return None
        offsets = self._ensure_index()
        expected = tuple(sorted(str(key) for key in manifest["expected"]))
        done = tuple(key for key in expected if key in offsets)
        missing = tuple(key for key in expected if key not in offsets)
        shard = manifest.get("shard")
        return ManifestStatus(
            shard=None if shard is None else (int(shard[0]), int(shard[1])),
            expected=expected,
            done=done,
            missing=missing,
        )

    def clear(self) -> None:
        """Delete every stored row, the index and the manifest."""
        for path in (self.results_path, self.index_path, self.manifest_path):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        self._offsets = None
        self._indexed_size = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore(root={str(self.root)!r}, rows={len(self)})"


# ----------------------------------------------------------------------
# Conflict-free store merge
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MergeReport:
    """What :func:`merge_stores` did."""

    #: Source store roots, in merge order.
    sources: tuple[str, ...]
    #: Rows whose key was new to the destination.
    appended: int
    #: Rows that superseded a destination row with different content
    #: (last-row-wins: the source row now wins lookups).
    replaced: int
    #: Rows already present with byte-identical content (skipped, which is
    #: what makes the merge idempotent at the file level).
    unchanged: int
    #: Distinct keys in the destination after the merge.
    total_rows: int
    #: Expected-but-absent keys after the merge (from the merged manifests).
    missing: tuple[str, ...]

    def summary(self) -> str:
        """One-line accounting string for CLI/log output."""
        return (
            f"merged {len(self.sources)} store(s): {self.appended} appended, "
            f"{self.replaced} replaced, {self.unchanged} unchanged; "
            f"{self.total_rows} rows total"
            + ("" if not self.missing else f", {len(self.missing)} expected points still missing")
        )


def merge_stores(
    dst: ResultStore | str | os.PathLike,
    *srcs: ResultStore | str | os.PathLike,
) -> MergeReport:
    """Merge shard stores ``srcs`` into ``dst``, conflict-free.

    Content-addressed keys make the merge a concatenation with dedup:

    * a key new to ``dst`` is appended verbatim;
    * a key already present with *identical* content is skipped — merging
      is idempotent (byte-for-byte: re-merging the same sources leaves
      ``results.jsonl`` unchanged) and order-insensitive for disjoint
      sources;
    * a key present with *different* content is superseded: the source row
      is appended and, per the store's last-row-wins rule, wins lookups.
      Later sources therefore override earlier ones on collisions;
    * a row whose ``salt`` differs from the destination's code salt is
      **rejected** with :class:`~repro.errors.SweepError` — results
      computed by a different code version must be recomputed, never mixed.

    Sources are opened with the store's usual crash recovery, so a shard
    store with a truncated trailing line (a host killed mid-append) merges
    its valid prefix.  Manifests are merged too: expected keys from every
    salt-matching manifest (destination included) plus every merged row are
    unioned into the destination's manifest, so a coordinator can ask the
    merged store which points are still owed (`manifest_status`).  The
    destination's index is rebuilt and flushed from the merged data —
    never trusted stale (see :meth:`ResultStore.clear`).
    """
    dst_store = dst if isinstance(dst, ResultStore) else ResultStore(dst)
    if not srcs:
        raise ValueError("merge_stores needs at least one source store")
    dst_root = dst_store.root.resolve()
    appended = replaced = unchanged = 0
    expected: set[str] = set()
    dst_manifest = dst_store.read_manifest()
    if dst_manifest is not None and dst_manifest.get("salt") == dst_store.code_salt:
        expected.update(str(key) for key in dst_manifest["expected"])
    source_roots: list[str] = []
    for src in srcs:
        src_store = src if isinstance(src, ResultStore) else ResultStore(src)
        source_roots.append(str(src_store.root))
        if not src_store.root.is_dir():
            # A nonexistent source must not pass as an empty store: a
            # typo'd shard path would "merge" successfully with 0 rows and
            # the operator would re-run a shard that actually completed.
            raise SweepError(
                f"source store {src_store.root} does not exist "
                f"(no such directory); check the shard store paths"
            )
        if src_store.root.resolve() == dst_root:
            raise ValueError(f"cannot merge store {src_store.root} into itself")
        to_append: list[dict] = []
        for key, row in src_store.iter_raw_rows():
            salt = row.get("salt")
            if salt != dst_store.code_salt:
                raise SweepError(
                    f"cannot merge {src_store.results_path}: row {key[:12]}… was "
                    f"computed under code salt {salt!r} but the destination "
                    f"store expects {dst_store.code_salt!r}; recompute the "
                    f"source under the current code version (or merge into a "
                    f"store opened with the matching salt)"
                )
            existing = dst_store.get_row(key)
            if existing == row:
                unchanged += 1
                continue
            if existing is None:
                appended += 1
            else:
                replaced += 1
            to_append.append(row)
        # One write handle per source (a source's keys are unique, so its
        # rows cannot collide with each other; the index update must land
        # before the next source is compared against the destination).
        dst_store.append_rows(to_append)
        src_manifest = src_store.read_manifest()
        if src_manifest is not None and src_manifest.get("salt") == dst_store.code_salt:
            expected.update(str(key) for key in src_manifest["expected"])
    # Every row now present is, by construction, an expected point of the
    # merged whole — covers shard stores that never recorded a manifest.
    expected.update(dst_store._ensure_index())
    dst_store._write_manifest(expected, shard=None)
    dst_store.flush_index()
    status = dst_store.manifest_status()
    return MergeReport(
        sources=tuple(source_roots),
        appended=appended,
        replaced=replaced,
        unchanged=unchanged,
        total_rows=len(dst_store),
        missing=() if status is None else status.missing,
    )
