"""Content-addressed sweep result store.

Results are stored under a cache directory (default ``.sweep-cache/``,
overridable via ``REPRO_SWEEP_CACHE``) in two files:

``results.jsonl``
    Append-only JSON Lines; one row per completed sweep point::

        {"key": <sha256>, "salt": <code salt>, "spec": {...},
         "latencies_us": [...], "metrics": {...}}

    Appending (never rewriting) is what makes the scheduler's per-point
    checkpointing crash-safe: a killed run leaves a valid prefix plus at
    most one truncated trailing line, which the next open detects and
    drops.  When a key is appended twice the *last* row wins.

``index.json``
    Acceleration structure: ``{"size": <bytes indexed>, "offsets":
    {key: byte offset into results.jsonl}}``.  The index is advisory —
    whenever its recorded size differs from the data file's actual size
    (a killed run, a hand-edited store) the data file is rescanned and the
    index rebuilt, so deleting ``index.json`` is always safe.

Hashing contract
----------------
The key of a row is ``sha256(canonical-json({"salt": ..., "spec":
spec.as_dict()}))``: every field of :class:`~repro.sweeps.spec.SweepPointSpec`
participates, so any parameter change produces a different key, and the
*code salt* folds the library version plus a store schema version in, so
results computed by older code are never silently reused after an upgrade
(bump :data:`STORE_SCHEMA_VERSION` when changing what the simulator's
observable behaviour or the row format means).  Identity of results is
content-addressed; nothing depends on file order or timestamps.

The store is single-writer: one orchestrator process appends (worker
processes return results over the pool, they never touch the store).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..errors import SweepError
from .spec import SweepPointResult, SweepPointSpec, spec_from_dict

__all__ = [
    "DEFAULT_STORE_DIR",
    "STORE_SCHEMA_VERSION",
    "ResultStore",
    "default_code_salt",
    "spec_key",
]

#: Default cache directory (relative to the working directory).
DEFAULT_STORE_DIR = ".sweep-cache"

#: Bump when the meaning of stored rows changes (simulator behaviour,
#: spec semantics, row format): all previously stored rows become misses.
STORE_SCHEMA_VERSION = 1


def default_code_salt() -> str:
    """The default code-version salt: library version + store schema."""
    from .. import __version__

    return f"repro-{__version__}/sweep-schema-{STORE_SCHEMA_VERSION}"


def spec_key(spec: SweepPointSpec, code_salt: str | None = None) -> str:
    """Stable content hash of ``spec`` under ``code_salt``.

    Canonical JSON (sorted keys, no whitespace) of the spec dict plus the
    salt, hashed with SHA-256.  Two specs share a key iff every field is
    equal and they were produced under the same salt.
    """
    payload = {
        "salt": default_code_salt() if code_salt is None else code_salt,
        "spec": spec.as_dict(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultStore:
    """Content-addressed store of :class:`SweepPointResult` rows.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``$REPRO_SWEEP_CACHE`` or
        ``.sweep-cache``.  Created on first write.
    code_salt:
        Override the code-version salt (tests use this to exercise
        invalidation; everything else should keep the default).
    """

    def __init__(self, root: str | os.PathLike | None = None, code_salt: str | None = None):
        if root is None:
            root = os.environ.get("REPRO_SWEEP_CACHE", DEFAULT_STORE_DIR)
        self.root = Path(root)
        self.results_path = self.root / "results.jsonl"
        self.index_path = self.root / "index.json"
        self.code_salt = default_code_salt() if code_salt is None else code_salt
        self._offsets: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _data_size(self) -> int:
        try:
            return self.results_path.stat().st_size
        except FileNotFoundError:
            return 0

    def _ensure_index(self) -> dict[str, int]:
        """Load the key → offset map, rescanning ``results.jsonl`` when the
        persisted index is missing or stale."""
        if self._offsets is not None:
            return self._offsets
        size = self._data_size()
        if self.index_path.exists():
            try:
                persisted = json.loads(self.index_path.read_text())
            except (OSError, json.JSONDecodeError):
                persisted = None
            if (
                isinstance(persisted, dict)
                and persisted.get("size") == size
                and isinstance(persisted.get("offsets"), dict)
            ):
                self._offsets = {str(k): int(v) for k, v in persisted["offsets"].items()}
                return self._offsets
        self._offsets = self._scan()
        return self._offsets

    def _scan(self) -> dict[str, int]:
        """Rebuild the offset map from the data file.

        A truncated trailing line (a run killed mid-append) is cut off so
        subsequent appends produce a valid file again; corruption anywhere
        else raises :class:`~repro.errors.SweepError`.
        """
        offsets: dict[str, int] = {}
        if not self.results_path.exists():
            return offsets
        with open(self.results_path, "rb") as handle:
            data = handle.read()
        position = 0
        valid_until = 0
        while position < len(data):
            newline = data.find(b"\n", position)
            line = data[position : len(data) if newline < 0 else newline]
            try:
                row = json.loads(line)
                key = row["key"]
            except (json.JSONDecodeError, KeyError, TypeError):
                if newline < 0:
                    break  # truncated tail from a killed run: drop it below
                raise SweepError(
                    f"corrupt sweep store row at byte {position} of "
                    f"{self.results_path}; delete the store to recover"
                )
            if newline < 0:
                break  # complete JSON but no newline: treat as truncated too
            offsets[str(key)] = position
            position = newline + 1
            valid_until = position
        if valid_until < len(data):
            with open(self.results_path, "r+b") as handle:
                handle.truncate(valid_until)
        return offsets

    def flush_index(self) -> None:
        """Persist the offset map so the next open skips the full rescan."""
        if self._offsets is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"size": self._data_size(), "offsets": self._offsets}
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(self.index_path)

    # ------------------------------------------------------------------
    # Content-addressed access
    # ------------------------------------------------------------------
    def key(self, spec: SweepPointSpec) -> str:
        """The content hash of ``spec`` under this store's code salt."""
        return spec_key(spec, self.code_salt)

    def __contains__(self, spec: SweepPointSpec) -> bool:
        return self.key(spec) in self._ensure_index()

    def __len__(self) -> int:
        return len(self._ensure_index())

    def get(self, spec: SweepPointSpec) -> SweepPointResult | None:
        """The stored result of ``spec``, or ``None`` on a cache miss."""
        offset = self._ensure_index().get(self.key(spec))
        if offset is None:
            return None
        row = self._read_row(offset)
        return SweepPointResult(
            spec=spec,
            latencies_us=tuple(row["latencies_us"]),
            metrics=tuple((k, v) for k, v in row.get("metrics", ())),
        )

    def put(self, result: SweepPointResult) -> str:
        """Append ``result`` (checkpoint) and return its key."""
        offsets = self._ensure_index()
        key = self.key(result.spec)
        row = {
            "key": key,
            "salt": self.code_salt,
            "spec": result.spec.as_dict(),
            "latencies_us": list(result.latencies_us),
            # Pair list, not an object: metric order is part of the result
            # (report tables use it for column order) and canonical-JSON key
            # sorting must not scramble it.
            "metrics": [[k, v] for k, v in result.metrics],
        }
        line = json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.results_path, "ab") as handle:
            offset = handle.tell()
            handle.write(line.encode("utf-8"))
        offsets[key] = offset
        return key

    def _read_row(self, offset: int) -> dict:
        with open(self.results_path, "rb") as handle:
            handle.seek(offset)
            line = handle.readline()
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise SweepError(
                f"corrupt sweep store row at byte {offset} of {self.results_path}"
            ) from exc

    def iter_results(self):
        """Yield every stored :class:`SweepPointResult` (any salt), rebuilding
        specs from the stored rows — the loader path for reassembling figures
        without re-running anything."""
        for offset in self._ensure_index().values():
            row = self._read_row(offset)
            yield SweepPointResult(
                spec=spec_from_dict(row["spec"]),
                latencies_us=tuple(row["latencies_us"]),
                metrics=tuple((k, v) for k, v in row.get("metrics", ())),
            )

    def clear(self) -> None:
        """Delete every stored row and the index."""
        for path in (self.results_path, self.index_path):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        self._offsets = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore(root={str(self.root)!r}, rows={len(self)})"
