"""Sweep orchestration: the execution layer between the simulator and the
figures.

Every experiment of the reproduction — Figures 2 and 3, the §4 software
comparison, the ablations — is a *sweep*: a list of independent simulation
points.  This package turns those sweeps into cached, resumable, parallel
runs:

* :mod:`repro.sweeps.spec` — :class:`SweepPointSpec`, a frozen, picklable,
  hashable description of one point, :func:`evaluate_spec`, the single
  evaluation path every workload kind shares, and :func:`shard_specs`, the
  deterministic content-addressed partitioner behind multi-host sharding;
* :mod:`repro.sweeps.store` — :class:`ResultStore`, a content-addressed
  JSONL + index store keyed by a stable hash of spec + code-version salt,
  plus :func:`merge_stores`, which combines per-shard stores conflict-free
  and tracks completion through per-store ``manifest.json`` files;
* :mod:`repro.sweeps.scheduler` — :func:`run_sweep`, chunked process-pool
  dispatch with per-point checkpointing, deterministic ordering, a resume
  path that completes a partially finished sweep from the store, a
  ``shard=(index, count)`` restriction for splitting a sweep across hosts,
  and a ``batch_replications`` mode that groups skeleton-sharing points
  into :class:`ReplicationBatchSpec` batches (:func:`evaluate_batch`) for
  replication-heavy statistics.

* :mod:`repro.sweeps.coordinator` / :mod:`repro.sweeps.worker` — the fleet
  layer: :class:`Coordinator`, a long-lived service owning a spec universe
  (shard leases, owed-point re-queue, crash-safe journal, continuously
  merged store) behind a JSON-over-HTTP front end
  (:class:`CoordinatorServer`), and :func:`run_worker`/:class:`WorkerClient`,
  the worker loop that drains leases through :func:`evaluate_spec`.

The experiment drivers in :mod:`repro.experiments` build specs and route
through :func:`run_sweep`; ``repro-spam sweep`` exposes the same machinery
on the command line (including ``--shard I/N``, ``sweep merge`` and the
fleet verbs ``sweep serve | work | lease | submit | status``).
``docs/sweeps.md`` documents the store layout, the hashing contract, the
resume semantics, the sharding workflow and the fleet-coordination
protocol.
"""

from .coordinator import (
    Coordinator,
    CoordinatorServer,
    CoordinatorState,
    CoordinatorStatus,
    IngestReport,
    Lease,
    LeaseError,
)
from .scheduler import SweepOutcome, resolve_workers, run_sweep
from .spec import (
    ReplicationBatchSpec,
    SweepPointResult,
    SweepPointSpec,
    WORKLOAD_KINDS,
    build_network_and_routing,
    evaluate_batch,
    evaluate_spec,
    group_replications,
    iter_evaluate_batch,
    parse_shard,
    run_software_multicast_once,
    shard_specs,
    spec_from_dict,
)
from .store import (
    DEFAULT_STORE_DIR,
    STORE_SCHEMA_VERSION,
    ManifestStatus,
    MergeReport,
    ResultStore,
    default_code_salt,
    merge_stores,
    result_row,
    spec_key,
)
from .worker import WORKER_FAULTS, WorkerClient, WorkerReport, run_worker

__all__ = [
    "SweepPointSpec",
    "SweepPointResult",
    "ReplicationBatchSpec",
    "WORKLOAD_KINDS",
    "evaluate_spec",
    "evaluate_batch",
    "iter_evaluate_batch",
    "group_replications",
    "spec_from_dict",
    "shard_specs",
    "parse_shard",
    "build_network_and_routing",
    "run_software_multicast_once",
    "ResultStore",
    "ManifestStatus",
    "MergeReport",
    "merge_stores",
    "spec_key",
    "default_code_salt",
    "DEFAULT_STORE_DIR",
    "STORE_SCHEMA_VERSION",
    "run_sweep",
    "SweepOutcome",
    "resolve_workers",
    "result_row",
    "Coordinator",
    "CoordinatorServer",
    "CoordinatorState",
    "CoordinatorStatus",
    "IngestReport",
    "Lease",
    "LeaseError",
    "WorkerClient",
    "WorkerReport",
    "run_worker",
    "WORKER_FAULTS",
]
