"""Sweep orchestration: the execution layer between the simulator and the
figures.

Every experiment of the reproduction — Figures 2 and 3, the §4 software
comparison, the ablations — is a *sweep*: a list of independent simulation
points.  This package turns those sweeps into cached, resumable, parallel
runs:

* :mod:`repro.sweeps.spec` — :class:`SweepPointSpec`, a frozen, picklable,
  hashable description of one point, :func:`evaluate_spec`, the single
  evaluation path every workload kind shares, and :func:`shard_specs`, the
  deterministic content-addressed partitioner behind multi-host sharding;
* :mod:`repro.sweeps.store` — :class:`ResultStore`, a content-addressed
  JSONL + index store keyed by a stable hash of spec + code-version salt,
  plus :func:`merge_stores`, which combines per-shard stores conflict-free
  and tracks completion through per-store ``manifest.json`` files;
* :mod:`repro.sweeps.scheduler` — :func:`run_sweep`, chunked process-pool
  dispatch with per-point checkpointing, deterministic ordering, a resume
  path that completes a partially finished sweep from the store, a
  ``shard=(index, count)`` restriction for splitting a sweep across hosts,
  and a ``batch_replications`` mode that groups skeleton-sharing points
  into :class:`ReplicationBatchSpec` batches (:func:`evaluate_batch`) for
  replication-heavy statistics.

The experiment drivers in :mod:`repro.experiments` build specs and route
through :func:`run_sweep`; ``repro-spam sweep`` exposes the same machinery
on the command line (including ``--shard I/N`` and ``sweep merge``).
``docs/sweeps.md`` documents the store layout, the hashing contract, the
resume semantics and the sharding workflow.
"""

from .scheduler import SweepOutcome, resolve_workers, run_sweep
from .spec import (
    ReplicationBatchSpec,
    SweepPointResult,
    SweepPointSpec,
    WORKLOAD_KINDS,
    build_network_and_routing,
    evaluate_batch,
    evaluate_spec,
    group_replications,
    iter_evaluate_batch,
    parse_shard,
    run_software_multicast_once,
    shard_specs,
    spec_from_dict,
)
from .store import (
    DEFAULT_STORE_DIR,
    STORE_SCHEMA_VERSION,
    ManifestStatus,
    MergeReport,
    ResultStore,
    default_code_salt,
    merge_stores,
    spec_key,
)

__all__ = [
    "SweepPointSpec",
    "SweepPointResult",
    "ReplicationBatchSpec",
    "WORKLOAD_KINDS",
    "evaluate_spec",
    "evaluate_batch",
    "iter_evaluate_batch",
    "group_replications",
    "spec_from_dict",
    "shard_specs",
    "parse_shard",
    "build_network_and_routing",
    "run_software_multicast_once",
    "ResultStore",
    "ManifestStatus",
    "MergeReport",
    "merge_stores",
    "spec_key",
    "default_code_salt",
    "DEFAULT_STORE_DIR",
    "STORE_SCHEMA_VERSION",
    "run_sweep",
    "SweepOutcome",
    "resolve_workers",
]
