"""Resumable parallel sweep scheduler.

:func:`run_sweep` is the single execution path for every experiment: it
takes a list of :class:`~repro.sweeps.spec.SweepPointSpec`, satisfies what
it can from the content-addressed :class:`~repro.sweeps.store.ResultStore`,
evaluates the rest — sequentially or over a chunked
:class:`~concurrent.futures.ProcessPoolExecutor` — and returns results in
the order the specs were given, regardless of completion order.

Guarantees:

* **Determinism** — evaluation is a pure function of the spec (seeds
  included), so parallel and sequential runs produce bit-identical results
  and the returned list order always matches the input order.
* **Per-point checkpointing** — every computed result is appended to the
  store the moment it arrives, so a killed run loses at most the points
  still in flight.  Batched replication mode keeps the granularity: a
  batch's results are checkpointed under their individual spec keys as the
  batch lands, and a failure mid-batch still checkpoints the replications
  that completed before it.
* **Batched replications** — ``batch_replications > 0`` groups points that
  share a network/routing skeleton (same ``network_size`` /
  ``topology_seed`` / ``root_strategy``) into
  :class:`~repro.sweeps.spec.ReplicationBatchSpec` tasks evaluated with
  shared immutable state, bit-identical per replication to the per-point
  path (:func:`~repro.sweeps.spec.iter_evaluate_batch`).
* **Resume** — a re-run of the same spec list completes exactly the
  missing points (``resume=False`` recomputes everything but still
  refreshes the store).
* **Explicit failures** — a point that delivers no messages raises
  :class:`~repro.errors.ZeroDeliveryError` out of :func:`run_sweep` instead
  of contributing a silent NaN row.
* **Sharding** — ``shard=(index, count)`` restricts the run to one
  deterministic, content-addressed shard of the spec list
  (:func:`~repro.sweeps.spec.shard_specs`), so several hosts can split a
  sweep without coordination and later combine their stores with
  :func:`~repro.sweeps.store.merge_stores`.  The store's ``manifest.json``
  records which points the (possibly sharded) run was responsible for.

Worker counts default to ``$REPRO_SWEEP_WORKERS`` (sequential when unset),
so the experiment drivers and benchmarks pick up process-level parallelism
without any call-site changes.
"""

from __future__ import annotations

import os
from concurrent.futures import CancelledError, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import SweepError
from ..obs import NullTelemetry, Telemetry, env_knob
from .spec import (
    ReplicationBatchSpec,
    SweepPointResult,
    SweepPointSpec,
    evaluate_spec,
    group_replications,
    iter_evaluate_batch,
    shard_specs,
)
from .store import ResultStore

__all__ = ["SweepOutcome", "run_sweep", "resolve_workers"]

#: Progress callback signature: ``(points_done, points_total, last_spec)``.
ProgressCallback = Callable[[int, int, SweepPointSpec], None]


@dataclass
class SweepOutcome:
    """What :func:`run_sweep` did: the results plus cache/time accounting."""

    results: list[SweepPointResult]
    cache_hits: int
    computed: int
    #: Wall-clock seconds the whole :func:`run_sweep` call took (telemetry
    #: accounting; 0.0 when the caller supplied a disabled recorder).
    elapsed_seconds: float = 0.0
    #: Wall-clock seconds spent evaluating points, summed across workers
    #: (exceeds ``elapsed_seconds`` under real parallelism).
    computed_seconds: float = 0.0
    #: Wall-clock seconds the cache scan took to satisfy ``cache_hits``.
    hit_seconds: float = 0.0

    @property
    def total(self) -> int:
        """Number of sweep points (== ``len(results)``)."""
        return len(self.results)

    def summary(self) -> str:
        """One-line accounting string for CLI/log output.

        The cache accounting prefix is stable (CI greps for the
        ``"N computed"`` token); timing is appended parenthetically and
        only when it was measured.
        """
        line = (
            f"{self.total} points: {self.cache_hits} cache hits, "
            f"{self.computed} computed"
        )
        if self.elapsed_seconds > 0.0:
            line += (
                f" ({self.computed_seconds:.2f} s computing, "
                f"{self.hit_seconds:.3f} s cache scan, "
                f"{self.elapsed_seconds:.2f} s elapsed)"
            )
        return line


def resolve_workers(workers: int | None) -> int:
    """Effective worker count: explicit value, else ``$REPRO_SWEEP_WORKERS``,
    else 1 (sequential).  ``0`` and negative values mean "one per CPU"."""
    if workers is None:
        raw = env_knob("REPRO_SWEEP_WORKERS", "1") or "1"
        try:
            workers = int(raw)
        except ValueError:
            raise SweepError(
                f"$REPRO_SWEEP_WORKERS must be an integer worker count "
                f"(0 or negative for one per CPU), got {raw!r}"
            ) from None
    if workers <= 0:
        workers = os.cpu_count() or 1
    return workers


def _evaluate_chunk(
    specs: list[SweepPointSpec], collect_detail: bool = False
) -> tuple[list[SweepPointResult], dict, Exception | None]:
    """Worker-side entry point: evaluate a chunk of specs.

    Always records one ``sweep.point.evaluate`` span per spec on a private
    ``worker`` track (the parent folds the payload in for wall-time
    accounting); ``collect_detail`` additionally threads the recorder into
    each point's engine for per-probe spans.

    A failing spec does not discard the chunk: the results computed before
    it are returned alongside the exception (third element) so the parent
    can checkpoint them — a resume then repeats only the failed point and
    whatever followed it in the chunk.
    """
    worker = Telemetry(track="worker")
    clock = worker.clock
    results: list[SweepPointResult] = []
    error: Exception | None = None
    for spec in specs:
        start_ns = clock()
        try:
            result = evaluate_spec(
                spec, telemetry=worker if collect_detail else None
            )
        except Exception as exc:
            error = exc
            break
        end_ns = clock()
        worker.span_at(
            "sweep.point.evaluate", start_ns, end_ns, workload=spec.workload_kind
        )
        worker.value("sweep.point.evaluate_ns", end_ns - start_ns)
        results.append(result)
    return results, worker.to_payload(), error


def _evaluate_batch(
    batch: ReplicationBatchSpec, collect_detail: bool = False
) -> tuple[list[SweepPointResult], dict, Exception | None]:
    """Worker-side entry point: evaluate one replication batch.

    Mirrors :func:`_evaluate_chunk` — one ``sweep.point.evaluate`` span and
    one ``sweep.point.evaluate_ns`` sample per replication on a private
    ``worker`` track, partial results plus the exception on a mid-batch
    failure — but drives :func:`~repro.sweeps.spec.iter_evaluate_batch`, so
    the network and SPAM skeleton are built once for the whole batch (the
    first replication's span absorbs that shared construction cost).
    """
    worker = Telemetry(track="worker")
    clock = worker.clock
    results: list[SweepPointResult] = []
    error: Exception | None = None
    replications = iter_evaluate_batch(
        batch, telemetry=worker if collect_detail else None
    )
    for spec in batch.specs:
        start_ns = clock()
        try:
            result = next(replications)
        except Exception as exc:
            error = exc
            break
        end_ns = clock()
        worker.span_at(
            "sweep.point.evaluate", start_ns, end_ns, workload=spec.workload_kind
        )
        worker.value("sweep.point.evaluate_ns", end_ns - start_ns)
        results.append(result)
    return results, worker.to_payload(), error


def run_sweep(
    specs: Sequence[SweepPointSpec],
    store: ResultStore | None = None,
    workers: int | None = None,
    resume: bool = True,
    chunk_size: int = 1,
    batch_replications: int = 0,
    progress: ProgressCallback | None = None,
    shard: tuple[int, int] | None = None,
    telemetry: Telemetry | NullTelemetry | None = None,
) -> SweepOutcome:
    """Evaluate ``specs``, reusing and checkpointing results via ``store``.

    Parameters
    ----------
    specs:
        The sweep points; the returned results preserve this order.
        Duplicate specs are evaluated once and fanned back out.
    store:
        Content-addressed result store; ``None`` disables caching entirely
        (no reads, no writes) — the orchestrator then just computes.
    workers:
        Process count (see :func:`resolve_workers`); ``1`` runs in-process.
    resume:
        When ``True`` (default), stored results are reused and only missing
        points run.  When ``False`` every point is recomputed, and the fresh
        rows are appended to the store (last row wins on lookup).
    chunk_size:
        Specs per pool task.  The default of 1 gives per-point
        checkpointing and the finest progress; raise it when points are so
        cheap that pickling dominates.  Ignored in batched mode (the batch
        is the task).
    batch_replications:
        When ``> 0``, enable batched Monte-Carlo evaluation: points sharing
        a network/routing skeleton are grouped into
        :class:`~repro.sweeps.spec.ReplicationBatchSpec` batches of at most
        this many replications and evaluated with shared immutable state —
        bit-identical per replication to the per-point path, but the
        network/tree/labelling/ancestry construction is paid once per batch
        instead of once per replication.  Results are still checkpointed
        under their individual spec keys, so warm-cache, resume and
        sharding semantics are unchanged.  Use it for replication-heavy
        statistics (many points on one topology); use ``chunk_size`` when
        points are merely cheap but heterogeneous.
    progress:
        Optional callback invoked after every completed point with
        ``(points_done, points_total, spec)``.
    shard:
        Optional 0-based ``(index, count)``: run only that deterministic
        shard of ``specs`` (see :func:`~repro.sweeps.spec.shard_specs`).
        Results cover the shard's points only; ``SweepOutcome.total`` is
        the shard size, not the full sweep's.
    telemetry:
        Wall-clock recorder (``repro.obs``).  ``None`` (the default) still
        measures the outcome's time accounting on a private recorder;
        passing a live :class:`~repro.obs.Telemetry` additionally threads
        it into every point's engine (per-probe spans) and keeps the full
        span record — worker-process telemetry is shipped back and merged
        under ``chunk{i}`` track labels (``batch{i}`` in batched mode, one
        per-replication span each).  Recording never changes any result
        (the observables firewall, ``docs/observability.md``).

    When a store is given, the points this run was responsible for (the
    shard's, under sharding) are recorded in the store's ``manifest.json``
    before evaluation starts, so an interrupted shard still documents what
    it owes (``ResultStore.manifest_status``).
    """
    # Accounting always runs on *some* recorder: the caller's, or a private
    # one whose spans are discarded with the outcome's timing extracted.
    acct: Telemetry | NullTelemetry = (
        telemetry if telemetry is not None else Telemetry(track="sweep")
    )
    collect_detail = telemetry is not None and acct.enabled
    clock = acct.clock if acct.enabled else None
    run_start_ns = clock() if clock is not None else 0
    computed_ns = 0
    hit_ns = 0

    specs = list(specs)
    if shard is not None:
        index, count = shard
        specs = shard_specs(
            specs, index, count,
            code_salt=None if store is None else store.code_salt,
        )
    if store is not None:
        store.record_expected(specs, shard=shard)
    results: list[SweepPointResult | None] = [None] * len(specs)
    cache_hits = 0
    if store is not None and resume:
        scan_start_ns = clock() if clock is not None else 0
        for index, spec in enumerate(specs):
            cached = store.get(spec)
            if cached is not None:
                results[index] = cached
                cache_hits += 1
        if clock is not None:
            hit_ns = clock() - scan_start_ns
            acct.span_at(
                "sweep.cache.scan",
                scan_start_ns,
                scan_start_ns + hit_ns,
                points=len(specs),
                hits=cache_hits,
            )

    # Unique missing specs, in first-appearance order (determinism).
    pending: dict[SweepPointSpec, list[int]] = {}
    for index, result in enumerate(results):
        if result is None:
            pending.setdefault(specs[index], []).append(index)
    unique = list(pending)
    done = len(specs) - sum(len(indices) for indices in pending.values())

    def record_all(batch_results: Sequence[SweepPointResult]) -> None:
        nonlocal done
        if not batch_results:
            return
        for result in batch_results:
            indices = pending[result.spec]
            for index in indices:
                results[index] = result
        if store is not None:
            # One append handle per arriving group — per-replication rows
            # under individual spec keys, without per-row open/close.
            with acct.span("sweep.point.store_append"):
                store.put_many(batch_results)
        for result in batch_results:
            done += len(pending[result.spec])
            if progress is not None:
                progress(done, len(specs), result.spec)

    def record(result: SweepPointResult) -> None:
        record_all([result])

    workers = resolve_workers(workers)
    batch_size = max(0, int(batch_replications or 0))
    try:
        if workers <= 1 or len(unique) <= 1:
            if batch_size > 0:
                for batch in group_replications(unique, max_batch_size=batch_size):
                    replications = iter_evaluate_batch(
                        batch, telemetry=acct if collect_detail else None
                    )
                    for spec in batch.specs:
                        point_start_ns = clock() if clock is not None else 0
                        # A mid-batch failure propagates from here with the
                        # earlier replications already recorded below.
                        result = next(replications)
                        if clock is not None:
                            point_end_ns = clock()
                            computed_ns += point_end_ns - point_start_ns
                            acct.span_at(
                                "sweep.point.evaluate",
                                point_start_ns,
                                point_end_ns,
                                workload=spec.workload_kind,
                            )
                        record(result)
            else:
                for spec in unique:
                    point_start_ns = clock() if clock is not None else 0
                    result = evaluate_spec(
                        spec, telemetry=acct if collect_detail else None
                    )
                    if clock is not None:
                        point_end_ns = clock()
                        computed_ns += point_end_ns - point_start_ns
                        acct.span_at(
                            "sweep.point.evaluate",
                            point_start_ns,
                            point_end_ns,
                            workload=spec.workload_kind,
                        )
                    record(result)
        else:
            if batch_size > 0:
                track_label = "batch"
                tasks: list = group_replications(unique, max_batch_size=batch_size)
            else:
                track_label = "chunk"
                chunk = max(1, int(chunk_size))
                tasks = [unique[i : i + chunk] for i in range(0, len(unique), chunk)]
            first_error: Exception | None = None
            dispatch_start_ns = clock() if clock is not None else 0
            with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
                # Explicit submit call per task shape: repro-lint R7 needs a
                # module-level callable named at the submission site.
                if batch_size > 0:
                    futures = [
                        pool.submit(_evaluate_batch, task, collect_detail)
                        for task in tasks
                    ]
                else:
                    futures = [
                        pool.submit(_evaluate_chunk, task, collect_detail)
                        for task in tasks
                    ]
                # Track labels come from submission order, not completion
                # order, so merged worker telemetry is stably named.
                task_index = {future: i for i, future in enumerate(futures)}

                def fail(exc: Exception) -> None:
                    nonlocal first_error
                    # Keep draining: results from tasks that completed (or
                    # are still running and will complete) must be
                    # checkpointed so a re-run only repeats the failed
                    # points.  Unstarted tasks are cancelled.
                    if first_error is None:
                        first_error = exc
                        for pending_future in futures:
                            pending_future.cancel()

                for future in as_completed(futures):
                    try:
                        task_results, task_telemetry, task_error = future.result()
                    except CancelledError:
                        continue  # cancelled after the first failure below
                    except Exception as exc:
                        fail(exc)
                        continue
                    evaluate_dist = task_telemetry.get("values", {}).get(
                        "sweep.point.evaluate_ns"
                    )
                    if evaluate_dist is not None:
                        computed_ns += int(evaluate_dist["total"])
                    acct.merge_child(
                        task_telemetry, track=f"{track_label}{task_index[future]}"
                    )
                    record_all(task_results)
                    if task_error is not None:
                        fail(task_error)
            if clock is not None:
                acct.span_at(
                    "sweep.pool.dispatch",
                    dispatch_start_ns,
                    clock(),
                    chunks=len(tasks),
                    workers=min(workers, len(tasks)),
                )
            if first_error is not None:
                raise first_error
    finally:
        if store is not None:
            store.flush_index()

    elapsed_ns = 0
    if clock is not None:
        elapsed_ns = clock() - run_start_ns
        acct.span_at(
            "sweep.run",
            run_start_ns,
            run_start_ns + elapsed_ns,
            points=len(specs),
            computed=len(unique),
            cache_hits=cache_hits,
        )
    return SweepOutcome(
        results=[result for result in results if result is not None],
        cache_hits=cache_hits,
        computed=len(unique),
        elapsed_seconds=elapsed_ns / 1e9,
        computed_seconds=computed_ns / 1e9,
        hit_seconds=hit_ns / 1e9,
    )
