"""Sweep coordinator: a long-lived service that owns a spec universe.

PR 4 made multi-host sweeps possible but manual: every host runs its shard,
an operator copies the per-shard stores around and runs ``sweep merge``.
This module closes the loop with a *coordinator* — one process that owns
the full spec universe, hands out **shard leases** to workers, watches the
rows they return, **re-queues owed points** when a worker dies or returns
rows under a foreign code salt, and serves results from the continuously
merged store.  The store's content-addressed hashing contract is what makes
this safe: a row is valid iff its key matches ``spec_key(spec, salt)``, so
duplicate submissions, late submissions from expired leases and overlapping
recoveries all collapse to idempotent appends — the coordinator can be
maximally forgiving about *who* computed a point without ever risking
result fidelity.

Layers (each usable on its own):

:class:`CoordinatorState`
    The deterministic state machine.  Pure bookkeeping over spec keys: every
    transition (``grant`` / ``renew`` / ``expire_overdue`` / ``ingest``)
    takes an explicit ``now`` and returns a JSON-serialisable event record.
    No I/O, no clock, no store — property tests drive it directly with
    arbitrary interleavings.

:class:`Coordinator`
    The service core: wraps a :class:`CoordinatorState` around a
    :class:`~repro.sweeps.store.ResultStore` (the continuously merged
    store), persists every transition to a crash-safe append-only
    **journal** (``coordinator.journal`` in the store root), emits
    ``repro.obs`` spans/counters under a ``coordinator`` track, and
    serialises access behind one lock.  A restarted coordinator replays the
    journal: completed points are recovered from the store (authoritative),
    leases that were open at the crash are expired and their points
    re-queued — deadlines are relative to the process-local monotonic
    clock, so they cannot meaningfully survive a restart.

:class:`CoordinatorServer`
    A thin JSON-over-HTTP front end (stdlib :mod:`http.server`, threading)
    — ``POST /api/lease | renew | submit``, ``GET /api/status``,
    ``POST /api/shutdown``.  The CLI (``repro-spam sweep serve | lease |
    submit | status | work``) and :mod:`repro.sweeps.worker` speak this
    protocol; see ``docs/sweeps.md`` ("Fleet coordination").

Lease protocol
--------------
A lease is ``(lease id, worker id, spec keys, deadline)``.  Keys are owed
to exactly one active lease at a time (never double-granted); a worker must
submit the lease's rows — or renew — before the deadline, otherwise the
lease expires and its unfinished keys return to the queue.  Submissions are
judged row by row: salt-mismatched rows are rejected (and their points stay
owed), unknown keys are ignored, valid rows are appended to the store even
when the lease has already expired (idempotence makes late work free).  A
partial submission completes what it brought and immediately re-queues the
lease's remainder.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..errors import SweepError
from ..obs import NULL_TELEMETRY, NullTelemetry, Telemetry
from .spec import SweepPointSpec
from .store import ResultStore

__all__ = [
    "Coordinator",
    "CoordinatorServer",
    "CoordinatorState",
    "CoordinatorStatus",
    "IngestReport",
    "Lease",
    "LeaseError",
    "JOURNAL_NAME",
]

#: Journal file name inside the coordinator store root.
JOURNAL_NAME = "coordinator.journal"

#: Bump when the journal event layout changes meaning.
_JOURNAL_SCHEMA = 1


class LeaseError(SweepError):
    """An operation referenced a lease the coordinator does not hold
    (unknown id, already expired, or already closed by a submission)."""


def _monotonic_seconds() -> float:
    """Process-local monotonic clock for lease deadlines."""
    return time.monotonic()  # repro-lint: disable=R4 -- lease deadlines are coordinator scheduling state, never simulation observables; every result row stays content-addressed by spec + salt


@dataclass(frozen=True)
class Lease:
    """One outstanding grant: ``keys`` are owed to ``worker`` until
    ``deadline`` (coordinator-clock seconds)."""

    lease_id: int
    worker: str
    keys: tuple[str, ...]
    deadline: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "id": self.lease_id,
            "worker": self.worker,
            "keys": list(self.keys),
            "deadline": self.deadline,
        }


@dataclass(frozen=True)
class IngestReport:
    """What one submission did, row by row."""

    #: Rows appended to the store (salt matched, key in the universe —
    #: includes re-submissions of already-done keys, which the store dedups).
    accepted: int
    #: Rows rejected for a foreign code salt; their points stay owed.
    foreign_salt: int
    #: Rows whose key is not in the universe (or rows missing key/salt).
    unknown: int
    #: Accepted rows whose key was already done (idempotent re-submission).
    duplicates: int
    #: Keys this submission newly completed.
    completed: tuple[str, ...]
    #: Lease keys left unfinished and returned to the queue.
    requeued: tuple[str, ...]
    #: ``False`` when the submission named a lease the coordinator no longer
    #: holds (expired / already closed) — its valid rows were ingested anyway.
    lease_known: bool

    def as_dict(self) -> dict[str, Any]:
        return {
            "accepted": self.accepted,
            "foreign_salt": self.foreign_salt,
            "unknown": self.unknown,
            "duplicates": self.duplicates,
            "completed": list(self.completed),
            "requeued": list(self.requeued),
            "lease_known": self.lease_known,
        }


@dataclass(frozen=True)
class CoordinatorStatus:
    """Point and lease accounting at one instant."""

    total: int
    done: int
    leased: int
    queued: int
    active_leases: tuple[Lease, ...]
    counters: tuple[tuple[str, int], ...]

    @property
    def complete(self) -> bool:
        return self.done == self.total

    def as_dict(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "done": self.done,
            "leased": self.leased,
            "queued": self.queued,
            "complete": self.complete,
            "leases": [lease.as_dict() for lease in self.active_leases],
            "counters": dict(self.counters),
        }

    def describe(self) -> str:
        """One-line accounting string for CLI/log output."""
        return (
            f"{self.done}/{self.total} points done, "
            f"{self.leased} leased, {self.queued} queued"
            + (", complete" if self.complete else "")
        )


_COUNTER_NAMES = (
    "leases_granted",
    "leases_renewed",
    "leases_expired",
    "points_completed",
    "points_requeued",
    "rows_accepted",
    "rows_foreign_salt",
    "rows_unknown",
    "rows_duplicate",
)


class CoordinatorState:
    """Deterministic lease bookkeeping over a spec-key universe.

    Pure state machine: no clock (every transition takes ``now``), no store,
    no I/O.  Each mutating method returns the JSON-serialisable **event
    record** the owning :class:`Coordinator` journals, so replaying a
    journal through the same methods reproduces the state exactly.

    Invariants (asserted by the property tests):

    * ``done ∪ owed == universe`` and ``done ∩ owed == ∅``;
    * every leased key is owed, and owed to exactly **one** active lease;
    * the queue is the owed-minus-leased keys in universe order.
    """

    def __init__(self, keys: Sequence[str], salt: str):
        self.salt = salt
        # Ordered dedup; dicts keep insertion order deterministically.
        self._universe: dict[str, None] = {str(key): None for key in keys}
        self._owed: dict[str, None] = dict(self._universe)
        self._leased: dict[str, int] = {}
        self._leases: dict[int, Lease] = {}
        self._next_lease_id = 1
        self.counters: dict[str, int] = {name: 0 for name in _COUNTER_NAMES}

    # -- views ----------------------------------------------------------
    @property
    def universe(self) -> tuple[str, ...]:
        return tuple(self._universe)

    def queued_keys(self) -> list[str]:
        """Owed keys not covered by an active lease, in universe order."""
        return [key for key in self._universe if key in self._owed and key not in self._leased]

    def active_leases(self) -> tuple[Lease, ...]:
        return tuple(self._leases[lease_id] for lease_id in sorted(self._leases))

    def lease(self, lease_id: int) -> Lease | None:
        return self._leases.get(lease_id)

    def is_done(self, key: str) -> bool:
        return key in self._universe and key not in self._owed

    def status(self) -> CoordinatorStatus:
        return CoordinatorStatus(
            total=len(self._universe),
            done=len(self._universe) - len(self._owed),
            leased=len(self._leased),
            queued=len(self._owed) - len(self._leased),
            active_leases=self.active_leases(),
            counters=tuple(sorted(self.counters.items())),
        )

    @property
    def complete(self) -> bool:
        return not self._owed

    # -- transitions ----------------------------------------------------
    def mark_done(self, keys: Sequence[str]) -> list[str]:
        """Record ``keys`` as already computed (store sync at startup; not a
        journaled transition — the store is the authority on done-ness).
        Returns the keys that were newly completed."""
        completed: list[str] = []
        for key in keys:
            if key in self._owed:
                del self._owed[key]
                lease_id = self._leased.pop(key, None)
                if lease_id is not None:
                    lease = self._leases[lease_id]
                    remaining = tuple(k for k in lease.keys if k != key)
                    if remaining:
                        self._leases[lease_id] = replace(lease, keys=remaining)
                    else:
                        del self._leases[lease_id]
                completed.append(key)
        return completed

    def grant(
        self, worker: str, now: float, ttl: float, max_points: int
    ) -> tuple[Lease | None, dict[str, Any] | None]:
        """Lease up to ``max_points`` queued keys to ``worker``.

        Returns ``(lease, event)``; ``(None, None)`` when nothing is
        grantable — either the sweep is complete or every owed point is
        covered by an active lease (the caller should retry after the next
        expiry).  Callers are expected to run :meth:`expire_overdue` first.
        """
        if max_points < 1:
            raise ValueError(f"max_points must be >= 1, got {max_points}")
        queued = self.queued_keys()
        if not queued:
            return None, None
        keys = tuple(queued[:max_points])
        lease = Lease(
            lease_id=self._next_lease_id,
            worker=str(worker),
            keys=keys,
            deadline=now + ttl,
        )
        self._next_lease_id += 1
        self._leases[lease.lease_id] = lease
        for key in keys:
            self._leased[key] = lease.lease_id
        self.counters["leases_granted"] += 1
        event = {
            "event": "grant",
            "lease": lease.lease_id,
            "worker": lease.worker,
            "keys": list(keys),
            "deadline": lease.deadline,
        }
        return lease, event

    def renew(self, lease_id: int, now: float, ttl: float) -> tuple[Lease, dict[str, Any]]:
        """Extend ``lease_id``'s deadline to ``now + ttl``."""
        lease = self._leases.get(lease_id)
        if lease is None:
            raise LeaseError(
                f"lease {lease_id} is not active (expired, completed or never "
                f"granted); request a fresh lease"
            )
        renewed = replace(lease, deadline=now + ttl)
        self._leases[lease_id] = renewed
        self.counters["leases_renewed"] += 1
        return renewed, {"event": "renew", "lease": lease_id, "deadline": renewed.deadline}

    def expire_overdue(self, now: float) -> list[dict[str, Any]]:
        """Expire every lease whose deadline has passed; their unfinished
        keys return to the queue.  Returns one event per expired lease."""
        events: list[dict[str, Any]] = []
        for lease_id in sorted(self._leases):
            lease = self._leases[lease_id]
            if lease.deadline > now:
                continue
            del self._leases[lease_id]
            requeued: list[str] = []
            for key in lease.keys:
                if self._leased.get(key) == lease_id:
                    del self._leased[key]
                    requeued.append(key)
            self.counters["leases_expired"] += 1
            self.counters["points_requeued"] += len(requeued)
            events.append({"event": "expire", "lease": lease_id, "requeued": requeued})
        return events

    def ingest(
        self, lease_id: int | None, rows: Sequence[Mapping[str, Any]]
    ) -> tuple[IngestReport, list[dict], dict[str, Any]]:
        """Judge submitted store rows; close ``lease_id`` if it is active.

        Returns ``(report, rows_to_append, event)`` — the caller appends
        ``rows_to_append`` to the merged store (the state machine itself
        never touches storage).  Valid rows are ingested even when the lease
        is unknown (a worker that outlived its lease still contributes; the
        content-addressed store makes the append idempotent).  Rows under a
        foreign salt or an unknown key are dropped and counted; their points
        stay owed.  After row processing the lease's unfinished keys are
        re-queued immediately — a partial submission does not wait for the
        deadline.
        """
        accepted: list[dict] = []
        foreign = unknown = duplicates = 0
        completed: list[str] = []
        for row in rows:
            if not isinstance(row, Mapping):
                unknown += 1
                continue
            key = row.get("key")
            salt = row.get("salt")
            if not isinstance(key, str) or key not in self._universe:
                unknown += 1
                continue
            if salt != self.salt:
                foreign += 1
                continue
            accepted.append(dict(row))
            if key in self._owed:
                del self._owed[key]
                lease_of_key = self._leased.pop(key, None)
                if lease_of_key is not None and lease_of_key != lease_id:
                    # Another worker's lease covered this key; shrink it so
                    # the eventual expiry/submit does not re-queue a point
                    # that is already done.
                    other = self._leases[lease_of_key]
                    remaining = tuple(k for k in other.keys if k != key)
                    if remaining:
                        self._leases[lease_of_key] = replace(other, keys=remaining)
                    else:
                        del self._leases[lease_of_key]
                completed.append(key)
            else:
                duplicates += 1
        requeued: list[str] = []
        lease_known = False
        if lease_id is not None:
            lease = self._leases.pop(int(lease_id), None)
            if lease is not None:
                lease_known = True
                for key in lease.keys:
                    if self._leased.get(key) == lease.lease_id:
                        del self._leased[key]
                        if key in self._owed:
                            requeued.append(key)
        self.counters["rows_accepted"] += len(accepted)
        self.counters["rows_foreign_salt"] += foreign
        self.counters["rows_unknown"] += unknown
        self.counters["rows_duplicate"] += duplicates
        self.counters["points_completed"] += len(completed)
        self.counters["points_requeued"] += len(requeued)
        report = IngestReport(
            accepted=len(accepted),
            foreign_salt=foreign,
            unknown=unknown,
            duplicates=duplicates,
            completed=tuple(completed),
            requeued=tuple(requeued),
            lease_known=lease_known,
        )
        event = {
            "event": "ingest",
            "lease": None if lease_id is None else int(lease_id),
            "accepted": len(accepted),
            "foreign_salt": foreign,
            "unknown": unknown,
            "duplicates": duplicates,
            "completed": completed,
            "requeued": requeued,
            "lease_known": lease_known,
        }
        return report, accepted, event


class Coordinator:
    """The coordinator service core: state machine + store + journal + obs.

    Parameters
    ----------
    specs:
        The spec universe this coordinator owns.  Keys are computed under
        ``store``'s code salt and recorded in the store's ``manifest.json``
        (the same plumbing a sharded ``run_sweep`` uses), so
        ``ResultStore.manifest_status`` and ``sweep merge`` agree with the
        coordinator about what is owed.
    store:
        The continuously merged result store.  Rows already present count
        as done immediately (a coordinator pointed at a warm store serves
        it without re-computing anything).
    lease_ttl:
        Seconds a worker has to submit (or renew) before its lease expires.
    lease_points:
        Maximum spec keys per lease (workers may ask for fewer).
    clock:
        Injectable monotonic clock (seconds).  Defaults to the process
        monotonic clock; tests inject a fake to drive expiry
        deterministically.
    telemetry:
        Optional ``repro.obs`` recorder; transitions emit spans and
        counters under the ``coordinator.*`` prefix.
    journal:
        Journal path override (default ``<store root>/coordinator.journal``).
        An existing journal is replayed on construction: open leases are
        expired and re-queued, counters resume.  The journal is always on —
        it is the crash-safety contract.
    """

    def __init__(
        self,
        specs: Sequence[SweepPointSpec],
        store: ResultStore,
        lease_ttl: float = 60.0,
        lease_points: int = 8,
        clock: Callable[[], float] | None = None,
        telemetry: Telemetry | NullTelemetry | None = None,
        journal: str | Path | None = None,
    ):
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if lease_points < 1:
            raise ValueError(f"lease_points must be >= 1, got {lease_points}")
        self.store = store
        self.lease_ttl = float(lease_ttl)
        self.lease_points = int(lease_points)
        self.clock: Callable[[], float] = clock if clock is not None else _monotonic_seconds
        self.telemetry: Telemetry | NullTelemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self.journal_path = (
            Path(journal) if journal is not None else store.root / JOURNAL_NAME
        )
        self._lock = threading.RLock()

        specs = list(specs)
        keys = [store.key(spec) for spec in specs]
        self.specs_by_key: dict[str, SweepPointSpec] = dict(zip(keys, specs))
        self.state = CoordinatorState(keys, store.code_salt)
        # The manifest makes the coordinator's universe visible to the rest
        # of the sweep tooling (sweep merge, manifest_status).
        store.record_expected(specs)
        self._replay_journal()
        self._sync_done_from_store()
        self._journal(
            {
                "event": "open",
                "schema": _JOURNAL_SCHEMA,
                "salt": store.code_salt,
                "universe": len(self.specs_by_key),
                "done": self.state.status().done,
            }
        )

    # -- journal --------------------------------------------------------
    def _journal(self, event: dict[str, Any]) -> None:
        """Append one event; the journal is append-only JSON Lines with the
        store's crash contract (a torn tail is dropped on replay)."""
        self.store.root.mkdir(parents=True, exist_ok=True)
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n")
            handle.flush()

    def _replay_journal(self) -> None:
        """Rebuild lease-id continuity and counters from a prior session.

        Done-ness is *not* replayed — the store is authoritative and is
        synced separately — but grants/ingests/expiries restore the
        counters, and any lease that was open when the previous process
        died is expired here (its deadline was on a dead process's clock).
        """
        events = self._read_journal_events()
        if not events:
            return
        open_leases: dict[int, dict[str, Any]] = {}
        max_lease_id = 0
        counters = {name: 0 for name in _COUNTER_NAMES}
        for event in events:
            kind = event.get("event")
            if kind == "grant":
                lease_id = int(event.get("lease", 0))
                max_lease_id = max(max_lease_id, lease_id)
                open_leases[lease_id] = event
                counters["leases_granted"] += 1
            elif kind == "renew":
                counters["leases_renewed"] += 1
            elif kind == "expire":
                open_leases.pop(int(event.get("lease", 0)), None)
                counters["leases_expired"] += 1
                counters["points_requeued"] += len(event.get("requeued", ()))
            elif kind == "ingest":
                lease_id = event.get("lease")
                if lease_id is not None and event.get("lease_known"):
                    open_leases.pop(int(lease_id), None)
                counters["rows_accepted"] += int(event.get("accepted", 0))
                counters["rows_foreign_salt"] += int(event.get("foreign_salt", 0))
                counters["rows_unknown"] += int(event.get("unknown", 0))
                counters["rows_duplicate"] += int(event.get("duplicates", 0))
                counters["points_completed"] += len(event.get("completed", ()))
                counters["points_requeued"] += len(event.get("requeued", ()))
        self.state.counters.update(counters)
        self.state._next_lease_id = max_lease_id + 1
        # Leases open at the crash: their deadlines lived on the dead
        # process's monotonic clock — expire them now, journaling the
        # expiry so the next replay does not repeat it.
        for lease_id in sorted(open_leases):
            self.state.counters["leases_expired"] += 1
            self._journal({"event": "expire", "lease": lease_id, "requeued": [],
                           "reason": "restart"})
        self.telemetry.counter("coordinator.journal_replayed_events", len(events))

    def _read_journal_events(self) -> list[dict[str, Any]]:
        try:
            data = self.journal_path.read_bytes()
        except FileNotFoundError:
            return []
        events: list[dict[str, Any]] = []
        for index, line in enumerate(data.split(b"\n")):
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                # Torn tail from a killed coordinator: everything before it
                # is intact.  Corruption mid-file would also stop here; the
                # store (authoritative for results) is unaffected either way.
                break
            if isinstance(event, dict):
                events.append(event)
        return events

    def _sync_done_from_store(self) -> None:
        """Mark every universe key already present in the store as done."""
        present = [
            key for key in self.state.universe if self.store.get_row(key) is not None
        ]
        self.state.mark_done(present)

    # -- service operations (thread-safe) -------------------------------
    def _expire_overdue_locked(self, now: float) -> None:
        for event in self.state.expire_overdue(now):
            self._journal(event)
            self.telemetry.counter("coordinator.leases_expired")
            self.telemetry.counter(
                "coordinator.points_requeued", len(event["requeued"])
            )

    def grant(self, worker: str, max_points: int | None = None) -> Lease | None:
        """Grant a lease to ``worker`` (``None`` when nothing is grantable)."""
        with self._lock, self.telemetry.span("coordinator.grant", worker=str(worker)):
            now = self.clock()
            self._expire_overdue_locked(now)
            points = self.lease_points if max_points is None else min(
                int(max_points), self.lease_points
            )
            if points < 1:
                raise ValueError(f"max_points must be >= 1, got {max_points}")
            lease, event = self.state.grant(worker, now, self.lease_ttl, points)
            if lease is None:
                return None
            self._journal(event or {})
            self.telemetry.counter("coordinator.leases_granted")
            return lease

    def renew(self, lease_id: int) -> Lease:
        """Extend a lease's deadline by the TTL; raises :class:`LeaseError`
        when the lease is no longer active."""
        with self._lock, self.telemetry.span("coordinator.renew", lease=lease_id):
            now = self.clock()
            self._expire_overdue_locked(now)
            lease, event = self.state.renew(int(lease_id), now, self.lease_ttl)
            self._journal(event)
            self.telemetry.counter("coordinator.leases_renewed")
            return lease

    def ingest(
        self, lease_id: int | None, rows: Sequence[Mapping[str, Any]]
    ) -> IngestReport:
        """Ingest submitted store rows (see :meth:`CoordinatorState.ingest`);
        accepted rows are appended to the merged store before the transition
        is journaled, so a crash between the two re-ingests idempotently."""
        with self._lock, self.telemetry.span(
            "coordinator.ingest", lease="-" if lease_id is None else int(lease_id)
        ):
            now = self.clock()
            self._expire_overdue_locked(now)
            report, to_append, event = self.state.ingest(lease_id, rows)
            if to_append:
                self.store.append_rows(to_append)
                self.store.flush_index()
            self._journal(event)
            self.telemetry.counter("coordinator.rows_accepted", report.accepted)
            self.telemetry.counter("coordinator.rows_foreign_salt", report.foreign_salt)
            self.telemetry.counter("coordinator.rows_unknown", report.unknown)
            self.telemetry.counter("coordinator.points_completed", len(report.completed))
            self.telemetry.counter("coordinator.points_requeued", len(report.requeued))
            return report

    def status(self) -> CoordinatorStatus:
        """Current accounting (expires overdue leases first, so a status
        probe is enough to drive progress while workers poll)."""
        with self._lock:
            self._expire_overdue_locked(self.clock())
            return self.state.status()

    def lease_payload(self, lease: Lease) -> dict[str, Any]:
        """The wire form of a lease: id, salt, TTL and the *specs* (not just
        keys) so a worker can evaluate without sharing a filesystem."""
        return {
            "id": lease.lease_id,
            "worker": lease.worker,
            "salt": self.store.code_salt,
            "ttl": self.lease_ttl,
            "keys": list(lease.keys),
            "specs": [self.specs_by_key[key].as_dict() for key in lease.keys],
        }


# ----------------------------------------------------------------------
# JSON-over-HTTP front end
# ----------------------------------------------------------------------
class _CoordinatorRequestHandler(BaseHTTPRequestHandler):
    """Request handler bound to a :class:`Coordinator` via the server."""

    server: "CoordinatorServer"
    protocol_version = "HTTP/1.1"

    # Silence the default stderr access log (the CLI prints its own).
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _respond(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise SweepError(f"malformed JSON request body: {exc}") from exc
        if not isinstance(payload, dict):
            raise SweepError("request body must be a JSON object")
        return payload

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/api/status":
            status = self.server.coordinator.status()
            self._respond(200, status.as_dict())
        else:
            self._respond(404, {"error": f"unknown endpoint {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        coordinator = self.server.coordinator
        try:
            if self.path == "/api/lease":
                request = self._read_json()
                worker = str(request.get("worker") or "anonymous")
                max_points = request.get("max_points")
                lease = coordinator.grant(
                    worker, None if max_points is None else int(max_points)
                )
                status = coordinator.status()
                self._respond(
                    200,
                    {
                        "lease": None if lease is None else coordinator.lease_payload(lease),
                        "complete": status.complete,
                        # Workers poll; the soonest an owed point can free up
                        # is the earliest outstanding deadline.
                        "retry_after": coordinator.lease_ttl if lease is None else 0.0,
                    },
                )
            elif self.path == "/api/renew":
                request = self._read_json()
                coordinator.renew(int(request["lease"]))
                self._respond(200, {"ok": True, "ttl": coordinator.lease_ttl})
            elif self.path == "/api/submit":
                request = self._read_json()
                lease_id = request.get("lease")
                rows = request.get("rows")
                if not isinstance(rows, list):
                    raise SweepError("submit body must carry a 'rows' list")
                report = coordinator.ingest(
                    None if lease_id is None else int(lease_id), rows
                )
                status = coordinator.status()
                payload = report.as_dict()
                payload["complete"] = status.complete
                self._respond(200, payload)
            elif self.path == "/api/shutdown":
                self._respond(200, {"ok": True})
                self.server.request_shutdown()
            else:
                self._respond(404, {"error": f"unknown endpoint {self.path!r}"})
        except LeaseError as exc:
            self._respond(409, {"error": str(exc)})
        except (SweepError, KeyError, TypeError, ValueError) as exc:
            self._respond(400, {"error": str(exc)})


class CoordinatorServer(ThreadingHTTPServer):
    """JSON-over-HTTP front end for a :class:`Coordinator`.

    Binds ``host:port`` (``port=0`` picks a free port — tests and the fault
    harness use that) and serves the protocol documented in
    ``docs/sweeps.md``.  :meth:`serve_until_done` runs the accept loop until
    the sweep completes (when ``exit_when_complete``) or a client posts
    ``/api/shutdown``; :meth:`start_background` runs it on a daemon thread
    for in-process use.
    """

    daemon_threads = True

    def __init__(self, coordinator: Coordinator, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _CoordinatorRequestHandler)
        self.coordinator = coordinator
        self._shutdown_requested = threading.Event()

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (safe from handler threads)."""
        self._shutdown_requested.set()
        threading.Thread(target=self.shutdown, daemon=True).start()

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def serve_until_done(
        self, exit_when_complete: bool = True, poll_interval: float = 0.2
    ) -> None:
        """Serve until ``/api/shutdown`` (always honoured) or — with
        ``exit_when_complete`` — until every universe point is done."""
        watcher: threading.Thread | None = None
        if exit_when_complete:

            def watch() -> None:
                while not self._shutdown_requested.is_set():
                    if self.coordinator.status().complete:
                        self.request_shutdown()
                        return
                    time.sleep(poll_interval)

            watcher = threading.Thread(target=watch, daemon=True)
            watcher.start()
        try:
            self.serve_forever(poll_interval=poll_interval)
        finally:
            self._shutdown_requested.set()
            if watcher is not None:
                watcher.join(timeout=2.0)
