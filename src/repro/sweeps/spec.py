"""The sweep spec layer: self-contained descriptions of simulation points.

Every data point of the paper's evaluation — a Figure 2 single multicast, a
Figure 3 mixed-traffic point, a §4 software-comparison measurement, an
ablation variant over roots/selection/buffers/partitioning — is an
independent simulation that can be described by a small frozen, picklable,
hashable record: a :class:`SweepPointSpec`.  The orchestrator
(:mod:`repro.sweeps.scheduler`) ships those records to worker processes and
the content-addressed store (:mod:`repro.sweeps.store`) keys results by a
stable hash of them, so *everything* that influences a point's result must
live in the spec (and nothing else may).

Worker processes rebuild networks and routing state from the spec's
parameters rather than receiving live objects; :func:`evaluate_spec` is the
single evaluation path shared by sequential runs, process pools and the
experiment drivers (the hand-rolled per-figure workload construction that
used to live in ``repro.experiments`` folds into the handlers here).

Workload kinds
--------------
``"single-multicast"``
    Figure 2 style: independent multicasts on an idle network; latency
    measured from startup.  Also carries the buffer/selection/root ablations
    through ``sim_overrides`` / ``selection`` / ``root_strategy``.
``"mixed"``
    Figure 3 style: 90 % unicast / 10 % multicast traffic with Poisson or
    negative-binomial arrivals (``workload_params["arrival"]``); latency
    measured from creation so source queueing is included.
``"software-comparison"``
    §4: measured SPAM latency vs the software-multicast lower bound, plus an
    optionally *executed* binomial-tree software baseline on up*/down*
    unicast routing.  Scalar results land in ``metrics``.
``"partitioned-multicast"``
    §5 destination partitioning: one logical broadcast split into ``groups``
    worms submitted at the same instant; the latency is the completion time
    of the whole logical broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from functools import lru_cache
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from ..analysis.bounds import compare_against_bound
from ..core.partition import partition_destinations
from ..core.selection import SELECTION_CLASSES, make_selection
from ..core.spam import SpamRouting
from ..errors import ZeroDeliveryError
from ..routing.unicast_multicast import UnicastMulticastScheduler
from ..routing.updown import UpDownRouting
from ..simulator.config import SimulationConfig
from ..simulator.engine import WormholeSimulator
from ..topology.irregular import lattice_irregular_network
from ..topology.network import Network
from ..traffic.arrivals import make_arrival_process
from ..traffic.patterns import uniform_destinations, uniform_source
from ..traffic.workload import mixed_traffic_workload, single_multicast_workload

__all__ = [
    "SweepPointSpec",
    "SweepPointResult",
    "ReplicationBatchSpec",
    "WORKLOAD_KINDS",
    "evaluate_spec",
    "evaluate_batch",
    "iter_evaluate_batch",
    "group_replications",
    "build_network_and_routing",
    "run_software_multicast_once",
    "spec_from_dict",
    "shard_specs",
    "parse_shard",
]


@dataclass(frozen=True)
class SweepPointSpec:
    """A self-contained, picklable, hashable description of one sweep point.

    Attributes
    ----------
    workload_kind:
        One of the kinds documented in the module docstring (the keys of
        :data:`WORKLOAD_KINDS`).
    network_size / topology_seed:
        Parameters of the paper-style irregular network the point runs on.
    message_length_flits:
        Worm length used by the simulation.
    workload_params:
        Keyword parameters of the workload, as a sorted-insertion tuple of
        ``(name, scalar)`` pairs so the spec stays hashable.  Which names are
        meaningful depends on ``workload_kind``.
    workload_seed:
        Seed of the workload builder (and of any per-point random draws).
    root_strategy / selection / selection_seed:
        SPAM construction knobs; ``selection_seed`` defaults to
        ``topology_seed`` when ``None`` (only the ``"random"`` selection
        strategy consumes it).
    sim_overrides:
        ``(field, value)`` overrides applied to the
        :class:`~repro.simulator.config.SimulationConfig` (e.g. buffer
        depths for the buffer ablation).
    label / x:
        Free-form identification of the point — the series label and x
        coordinate of the figure it belongs to — echoed back in the result
        so callers can reassemble series without relying on ordering.
    """

    workload_kind: str
    network_size: int
    topology_seed: int
    message_length_flits: int
    workload_params: tuple[tuple[str, object], ...]
    workload_seed: int
    root_strategy: str = "center"
    selection: str = "distance-to-lca"
    selection_seed: int | None = None
    sim_overrides: tuple[tuple[str, object], ...] = ()
    label: str = ""
    x: float = 0.0

    def params(self) -> dict[str, Any]:
        """``workload_params`` as a plain dict.

        Values are typed ``Any`` (not ``object``): callers immediately
        narrow them with ``int(...)`` / ``float(...)`` per workload kind.
        """
        return dict(self.workload_params)

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable view (tuples become lists); see
        :func:`spec_from_dict` for the inverse."""
        return {
            "workload_kind": self.workload_kind,
            "network_size": self.network_size,
            "topology_seed": self.topology_seed,
            "message_length_flits": self.message_length_flits,
            "workload_params": [[k, v] for k, v in self.workload_params],
            "workload_seed": self.workload_seed,
            "root_strategy": self.root_strategy,
            "selection": self.selection,
            "selection_seed": self.selection_seed,
            "sim_overrides": [[k, v] for k, v in self.sim_overrides],
            "label": self.label,
            "x": self.x,
        }

    def describe(self) -> str:
        """One-line human-readable identification (used in error messages)."""
        return (
            f"{self.workload_kind} point x={self.x} of series {self.label!r} "
            f"({self.network_size} switches, topology seed {self.topology_seed}, "
            f"workload seed {self.workload_seed})"
        )


def spec_from_dict(data: Mapping[str, object]) -> SweepPointSpec:
    """Rebuild a :class:`SweepPointSpec` from :meth:`SweepPointSpec.as_dict`."""
    kwargs: dict[str, Any] = dict(data)
    kwargs["workload_params"] = tuple((k, v) for k, v in kwargs.get("workload_params", ()))
    kwargs["sim_overrides"] = tuple((k, v) for k, v in kwargs.get("sim_overrides", ()))
    known = {f.name for f in fields(SweepPointSpec)}
    return SweepPointSpec(**{k: v for k, v in kwargs.items() if k in known})


# ----------------------------------------------------------------------
# Multi-host sharding
# ----------------------------------------------------------------------
def shard_specs(
    specs: Sequence[SweepPointSpec],
    index: int,
    count: int,
    code_salt: str | None = None,
) -> list[SweepPointSpec]:
    """Shard ``index`` (0-based) of ``count`` disjoint shards of ``specs``.

    Partitioning is by content, not position: a spec belongs to shard
    ``int(spec_key(spec), 16) % count``.  Consequences:

    * the ``count`` shards are a **disjoint cover** of any spec list — every
      spec lands in exactly one shard;
    * membership is **stable under spec-list reordering** (and under
      duplicates, drops or additions of *other* specs), so two hosts that
      build the list independently and run shards ``1/4`` and ``2/4`` never
      evaluate the same point twice and never miss one between them;
    * shards are only balanced statistically (hashes are uniform), not
      exactly — fine for the embarrassingly-parallel figure grids.

    ``code_salt`` must match across the participating hosts (they run the
    same code version, so the default salt does); it only rotates which
    shard a spec lands in, never the cover property.  Input order is
    preserved within the shard.
    """
    # Imported lazily: repro.sweeps.store imports this module at load time.
    from .store import spec_key

    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(f"shard index must be in [0, {count}), got {index}")
    if count == 1:
        return list(specs)
    return [
        spec
        for spec in specs
        if int(spec_key(spec, code_salt), 16) % count == index
    ]


def parse_shard(text: str) -> tuple[int, int]:
    """Parse a CLI-style ``"I/N"`` shard designator (1-based ``I``).

    Returns the ``(index, count)`` pair :func:`shard_specs` expects, with
    ``index`` converted to 0-based: ``"1/4"`` → ``(0, 4)``.
    """
    try:
        one_based, count = (int(part) for part in text.split("/"))
    except ValueError:
        raise ValueError(
            f"shard designator must look like I/N (e.g. 2/4), got {text!r}"
        ) from None
    if count < 1 or not 1 <= one_based <= count:
        raise ValueError(
            f"shard designator {text!r} out of range: need 1 <= I <= N"
        )
    return one_based - 1, count


@dataclass(frozen=True)
class SweepPointResult:
    """The measurements of one :class:`SweepPointSpec`.

    ``latencies_us`` holds the per-message latency observations (every kind
    produces at least one); ``metrics`` holds named scalars for kinds whose
    natural result is a row (the software comparison's bound/speedup columns,
    the ablations' tree shape) as ``(name, value)`` pairs.
    """

    spec: SweepPointSpec
    latencies_us: tuple[float, ...]
    metrics: tuple[tuple[str, object], ...] = ()

    @property
    def mean_us(self) -> float:
        """Mean latency of the point.

        A point with no observations raises
        :class:`~repro.errors.ZeroDeliveryError` instead of returning a
        silent NaN (zero-delivery points indicate a broken workload or a
        simulation that never completed a message).
        """
        if not self.latencies_us:
            raise ZeroDeliveryError(
                f"sweep point delivered no messages: {self.spec.describe()}"
            )
        return sum(self.latencies_us) / len(self.latencies_us)

    def metrics_dict(self) -> dict[str, object]:
        """``metrics`` as a plain dict."""
        return dict(self.metrics)

    def metric(self, name: str):
        """Named scalar metric (raises ``KeyError`` when absent)."""
        for key, value in self.metrics:
            if key == name:
                return value
        raise KeyError(f"no metric {name!r} on point {self.spec.describe()}")


# ----------------------------------------------------------------------
# Shared construction helpers
# ----------------------------------------------------------------------
def build_network_and_routing(
    num_switches: int,
    seed: int = 0,
    root_strategy: str = "center",
    selection_name: str = "distance-to-lca",
    selection_seed: int | None = None,
) -> tuple[Network, SpamRouting]:
    """Build one paper-style irregular network and SPAM routing on it."""
    network = lattice_irregular_network(num_switches, seed=seed)
    selection = make_selection(
        selection_name, network, seed=seed if selection_seed is None else selection_seed
    )
    routing = SpamRouting.build(network, root_strategy=root_strategy, selection=selection)
    return network, routing


@lru_cache(maxsize=4)
def _cached_network_and_routing(
    num_switches: int,
    seed: int,
    root_strategy: str,
    selection_name: str,
    selection_seed: int | None,
) -> tuple[Network, SpamRouting]:
    # Networks and stateless routing are immutable during simulation
    # (per-run state lives on the simulator), so consecutive points of one
    # series — and every point a worker process evaluates — share the build.
    return build_network_and_routing(
        num_switches, seed, root_strategy, selection_name, selection_seed
    )


def _network_and_routing(spec: SweepPointSpec) -> tuple[Network, SpamRouting]:
    selection_class = SELECTION_CLASSES.get(spec.selection)
    if selection_class is not None and not selection_class.stateless:
        # A stateful selection (e.g. "random") consumes RNG state on every
        # routing decision; sharing one instance across points would make
        # evaluate_spec depend on evaluation history, breaking the
        # content-addressed cache and bit-identical parallel/sequential
        # runs.  Build fresh so each point starts from its seeded state.
        return build_network_and_routing(
            spec.network_size,
            spec.topology_seed,
            spec.root_strategy,
            spec.selection,
            spec.selection_seed,
        )
    return _cached_network_and_routing(
        spec.network_size,
        spec.topology_seed,
        spec.root_strategy,
        spec.selection,
        spec.selection_seed,
    )


def _context(
    spec: SweepPointSpec, prebuilt: tuple[Network, SpamRouting] | None
) -> tuple[Network, SpamRouting]:
    """The network/routing a point evaluates on: the caller's prebuilt pair
    (the batched path) or a per-point build (the default path)."""
    return _network_and_routing(spec) if prebuilt is None else prebuilt


def _simulation_config(spec: SweepPointSpec) -> SimulationConfig:
    config = SimulationConfig(message_length_flits=spec.message_length_flits)
    if spec.sim_overrides:
        config = config.with_overrides(**dict(spec.sim_overrides))
    return config


def _run_latencies(
    network, routing, workload, config, from_creation: bool, telemetry: Any = None
) -> list[float]:
    """Run ``workload`` on a fresh simulator and return per-message latencies (µs).

    ``config.region_parallel`` routes the run through the region-parallel
    decomposition (:func:`repro.simulator.regions.run_region_parallel`) with
    in-process shard execution: sweep evaluation already runs inside the
    scheduler's worker processes, so nesting another process pool would
    oversubscribe the host.  Results are identical either way — that is the
    region-parallel contract (``docs/region_parallel.md``) — so the knob
    only changes *how* the point is computed, never what it reports.

    ``telemetry`` is an opaque wall-clock recorder (``repro.obs``) passed
    straight through to the engine; this module never reads it — the
    observables firewall (repro-lint R9) keeps telemetry out of every
    result constructed here.
    """
    if config.region_parallel:
        from ..simulator.regions import run_region_parallel

        result = run_region_parallel(
            network, routing, config, workload, max_workers=0, telemetry=telemetry
        )
        return result.stats.latencies_us(from_creation=from_creation)
    simulator = WormholeSimulator(network, routing, config, telemetry=telemetry)
    workload.submit_to(simulator)
    stats = simulator.run()
    return stats.latencies_us(from_creation=from_creation)


def _require_latencies(spec: SweepPointSpec, latencies) -> tuple[float, ...]:
    values = tuple(latencies)
    if not values:
        raise ZeroDeliveryError(f"sweep point delivered no messages: {spec.describe()}")
    return values


def _tree_metrics(routing: SpamRouting) -> tuple[tuple[str, object], ...]:
    return (("tree_root", routing.tree.root), ("tree_height", routing.tree.height()))


# ----------------------------------------------------------------------
# Per-kind evaluators
# ----------------------------------------------------------------------
def _evaluate_single_multicast(
    spec: SweepPointSpec,
    telemetry: Any = None,
    prebuilt: tuple[Network, SpamRouting] | None = None,
) -> SweepPointResult:
    network, routing = _context(spec, prebuilt)
    params = spec.params()
    workload = single_multicast_workload(
        network,
        num_destinations=int(params["num_destinations"]),
        samples=int(params["samples"]),
        seed=spec.workload_seed,
    )
    latencies = _run_latencies(
        network,
        routing,
        workload,
        _simulation_config(spec),
        from_creation=False,
        telemetry=telemetry,
    )
    return SweepPointResult(
        spec=spec,
        latencies_us=_require_latencies(spec, latencies),
        metrics=_tree_metrics(routing),
    )


def _evaluate_mixed(
    spec: SweepPointSpec,
    telemetry: Any = None,
    prebuilt: tuple[Network, SpamRouting] | None = None,
) -> SweepPointResult:
    network, routing = _context(spec, prebuilt)
    params = spec.params()
    rate = float(params["rate_per_us"])
    arrival = str(params.get("arrival", "negative-binomial"))
    workload = mixed_traffic_workload(
        network,
        rate_per_us=rate,
        multicast_destinations=int(params["multicast_destinations"]),
        num_messages=int(params["num_messages"]),
        multicast_fraction=float(params.get("multicast_fraction", 0.1)),
        seed=spec.workload_seed,
        arrival_process=make_arrival_process(arrival, rate),
    )
    latencies = _run_latencies(
        network,
        routing,
        workload,
        _simulation_config(spec),
        from_creation=True,
        telemetry=telemetry,
    )
    return SweepPointResult(
        spec=spec,
        latencies_us=_require_latencies(spec, latencies),
        metrics=_tree_metrics(routing),
    )


def run_software_multicast_once(
    network,
    updown: UpDownRouting,
    source: int,
    destinations: list[int],
    sim_config,
    telemetry: Any = None,
) -> float:
    """Execute one binomial-tree software multicast and return its latency (µs).

    Every forwarding unicast pays the full startup latency at its sender,
    exactly as the software scheme would; the reported latency is the time
    from the source's first startup until the last destination has received
    the payload.
    """
    simulator = WormholeSimulator(network, updown, sim_config, telemetry=telemetry)
    scheduler = UnicastMulticastScheduler(source=source, destinations=tuple(destinations))
    last_delivery_ns = 0

    def on_delivery(message, destination, time_ns):
        nonlocal last_delivery_ns
        if message.metadata.get("software_multicast") is not True:
            return
        last_delivery_ns = max(last_delivery_ns, time_ns)
        for step in scheduler.on_delivery(destination):
            simulator.submit_message(
                step.sender,
                [step.recipient],
                metadata={"software_multicast": True, "phase": step.phase},
            )

    simulator.delivery_callbacks.append(on_delivery)
    for step in scheduler.initial_sends():
        simulator.submit_message(
            step.sender,
            [step.recipient],
            metadata={"software_multicast": True, "phase": step.phase},
        )
    simulator.run()
    if not scheduler.finished:
        raise RuntimeError("software multicast did not reach every destination")
    return last_delivery_ns / 1000.0


def _evaluate_software_comparison(
    spec: SweepPointSpec,
    telemetry: Any = None,
    prebuilt: tuple[Network, SpamRouting] | None = None,
) -> SweepPointResult:
    network, spam = _context(spec, prebuilt)
    params = spec.params()
    config = _simulation_config(spec)
    count = min(int(params["num_destinations"]), network.num_processors - 1)
    workload = single_multicast_workload(
        network,
        num_destinations=count,
        samples=int(params.get("samples", 1)),
        seed=spec.workload_seed,
    )
    latencies = _require_latencies(
        spec,
        _run_latencies(
            network, spam, workload, config, from_creation=False, telemetry=telemetry
        ),
    )
    spam_latency = sum(latencies) / len(latencies)
    comparison = compare_against_bound(
        count, spam_latency, startup_latency_us=config.startup_latency_ns / 1000.0
    )
    metrics = list(comparison.as_dict().items())
    if bool(params.get("run_software_baseline", True)):
        updown = UpDownRouting(network, spam.tree, spam.selection)
        rng = np.random.default_rng(spec.workload_seed)
        source = uniform_source(network, rng)
        destinations = uniform_destinations(network, source, count, rng)
        measured = run_software_multicast_once(
            network, updown, source, destinations, config, telemetry=telemetry
        )
        metrics.append(("software_measured_us", measured))
        metrics.append(("measured_speedup", measured / spam_latency))
    return SweepPointResult(spec=spec, latencies_us=latencies, metrics=tuple(metrics))


def _evaluate_partitioned_multicast(
    spec: SweepPointSpec,
    telemetry: Any = None,
    prebuilt: tuple[Network, SpamRouting] | None = None,
) -> SweepPointResult:
    network, routing = _context(spec, prebuilt)
    params = spec.params()
    config = _simulation_config(spec)
    count = min(int(params["num_destinations"]), network.num_processors - 1)
    rng = np.random.default_rng(spec.workload_seed)
    source = uniform_source(network, rng)
    destinations = uniform_destinations(network, source, count, rng)
    partitions = partition_destinations(
        routing.tree, destinations, int(params["groups"]), str(params.get("strategy", "contiguous"))
    )
    simulator = WormholeSimulator(network, routing, config, telemetry=telemetry)
    messages = [
        simulator.submit_message(source, part, at_ns=0, metadata={"group": index})
        for index, part in enumerate(partitions)
    ]
    simulator.run()
    completion_us = max(message.completed_ns for message in messages) / 1000.0
    return SweepPointResult(
        spec=spec,
        latencies_us=(completion_us,),
        metrics=_tree_metrics(routing)
        + (("groups", len(partitions)), ("worms", len(partitions))),
    )


#: Registry of workload kinds to their evaluators.  Every evaluator takes
#: ``(spec, telemetry, prebuilt)`` where ``prebuilt`` is an optional
#: ``(network, routing)`` pair supplied by the batched evaluation path.
WORKLOAD_KINDS: dict[str, Callable[..., SweepPointResult]] = {
    "single-multicast": _evaluate_single_multicast,
    "mixed": _evaluate_mixed,
    "software-comparison": _evaluate_software_comparison,
    "partitioned-multicast": _evaluate_partitioned_multicast,
}


def _evaluator_for(kind: str) -> Callable[..., SweepPointResult]:
    evaluator = WORKLOAD_KINDS.get(kind)
    if evaluator is None:
        raise ValueError(
            f"unknown workload kind {kind!r} (known: {sorted(WORKLOAD_KINDS)})"
        )
    return evaluator


def evaluate_spec(spec: SweepPointSpec, telemetry: Any = None) -> SweepPointResult:
    """Run one sweep point to completion (executed inside worker processes).

    ``telemetry`` is an opaque ``repro.obs`` recorder forwarded to the
    point's engine(s); it never participates in spec identity, caching or
    the returned result.
    """
    return _evaluator_for(spec.workload_kind)(spec, telemetry)


# ----------------------------------------------------------------------
# Batched Monte-Carlo evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicationBatchSpec:
    """A group of sweep points sharing one network / spanning-tree skeleton.

    The grouping key is ``(network_size, topology_seed, root_strategy)``:
    those three fields fully determine the irregular network, the BFS
    spanning tree, the channel labelling and the ancestry relation (the
    selection function plays no part in any of them — see
    :meth:`~repro.core.spam.SpamRouting.with_selection`).  Everything else a
    replication varies — workload kind and parameters, seeds, selection,
    simulator overrides — stays per-spec, so a batch amortises exactly the
    state that is provably shared and nothing more.
    """

    network_size: int
    topology_seed: int
    root_strategy: str
    specs: tuple[SweepPointSpec, ...]

    def describe(self) -> str:
        """One-line human-readable identification (used in error messages)."""
        return (
            f"{len(self.specs)}-replication batch on {self.network_size} "
            f"switches (topology seed {self.topology_seed}, "
            f"root {self.root_strategy!r})"
        )


def group_replications(
    specs: Sequence[SweepPointSpec], max_batch_size: int = 0
) -> list[ReplicationBatchSpec]:
    """Partition ``specs`` into replication batches sharing a skeleton.

    Groups are keyed by ``(network_size, topology_seed, root_strategy)`` in
    first-appearance order, with input order preserved inside each group;
    ``max_batch_size > 0`` additionally splits each group into batches of at
    most that many specs (bounding both a pool task's size and how much work
    sits unfinished between checkpoints).  The batches are a **partition**
    of the input: every spec lands in exactly one batch, multiplicity
    included, and no batch is empty.
    """
    groups: dict[tuple[int, int, str], list[SweepPointSpec]] = {}
    for spec in specs:
        key = (spec.network_size, spec.topology_seed, spec.root_strategy)
        groups.setdefault(key, []).append(spec)
    batches: list[ReplicationBatchSpec] = []
    for (size, seed, root), members in groups.items():
        step = len(members) if max_batch_size <= 0 else int(max_batch_size)
        for start in range(0, len(members), step):
            batches.append(
                ReplicationBatchSpec(size, seed, root, tuple(members[start : start + step]))
            )
    return batches


def iter_evaluate_batch(
    batch: ReplicationBatchSpec, telemetry: Any = None
) -> Iterator[SweepPointResult]:
    """Evaluate ``batch`` lazily, one :class:`SweepPointResult` per spec.

    The network and the SPAM skeleton (tree, labelling, ancestry) are built
    once and shared by every replication; each replication then gets exactly
    the selection function the per-point path would have built — stateless
    selections are reused within the batch (mirroring the per-point
    ``lru_cache``), stateful ones (e.g. ``"random"``) are constructed fresh
    from their seed so no replication sees another's RNG state.  Because the
    shared objects are pure functions of the batch key and the evaluators
    only read them, every yielded result is bit-identical to
    ``evaluate_spec(spec)``.

    Laziness is the checkpointing hook: the scheduler times and records each
    replication as it is produced (the first one absorbs the shared
    construction cost), and a failure mid-batch leaves the earlier results
    already yielded.
    """
    network = lattice_irregular_network(batch.network_size, seed=batch.topology_seed)
    skeleton: SpamRouting | None = None
    stateless_cache: dict[tuple[str, int], SpamRouting] = {}
    for spec in batch.specs:
        if (
            spec.network_size != batch.network_size
            or spec.topology_seed != batch.topology_seed
            or spec.root_strategy != batch.root_strategy
        ):
            raise ValueError(
                f"spec does not belong to this batch: {spec.describe()} "
                f"vs {batch.describe()}"
            )
        evaluator = _evaluator_for(spec.workload_kind)
        seed = batch.topology_seed if spec.selection_seed is None else spec.selection_seed
        selection_class = SELECTION_CLASSES.get(spec.selection)
        stateless = selection_class is not None and selection_class.stateless
        routing = stateless_cache.get((spec.selection, seed)) if stateless else None
        if routing is None:
            selection = make_selection(spec.selection, network, seed=seed)
            if skeleton is None:
                skeleton = SpamRouting.build(
                    network, root_strategy=batch.root_strategy, selection=selection
                )
                routing = skeleton
            else:
                routing = skeleton.with_selection(selection)
            if stateless:
                stateless_cache[(spec.selection, seed)] = routing
        yield evaluator(spec, telemetry, (network, routing))


def evaluate_batch(
    batch: ReplicationBatchSpec, telemetry: Any = None
) -> list[SweepPointResult]:
    """Run a whole replication batch to completion, in spec order.

    See :func:`iter_evaluate_batch` for the sharing and bit-identity
    contract; ``telemetry`` is forwarded to every replication's engine.
    """
    return list(iter_evaluate_batch(batch, telemetry))
