"""Experiment drivers regenerating every figure of the paper's evaluation,
plus the ablation studies motivated by its design-choice and future-work
discussions.

* :func:`~repro.experiments.figure2.run_figure2` — latency vs number of
  destinations (Figure 2).
* :func:`~repro.experiments.figure3.run_figure3` — latency vs arrival rate
  under mixed traffic (Figure 3).
* :func:`~repro.experiments.software_comparison.run_software_comparison` —
  SPAM vs the software multicast lower bound and a measured binomial-tree
  baseline (§4's six-fold-difference claim).
* :mod:`~repro.experiments.ablations` — buffer depth, selection function,
  root selection and destination partitioning.

Every driver routes through the :mod:`repro.sweeps` orchestrator: each data
point is a :class:`~repro.sweeps.spec.SweepPointSpec`, and the drivers
accept ``store=`` / ``workers=`` / ``resume=`` to cache, parallelise and
resume sweeps (see ``docs/sweeps.md``).
"""

from .ablations import (
    AblationConfig,
    run_buffer_depth_ablation,
    run_partition_ablation,
    run_root_ablation,
    run_selection_ablation,
)
from .common import ExperimentScale, SCALES, build_network_and_routing, current_scale, paper_config
from .figure2 import (
    Figure2Config,
    default_destination_counts,
    figure2_specs,
    run_figure2,
)
from .figure3 import Figure3Config, figure3_specs, run_figure3
from .parallel import SweepPointSpec, evaluate_point, parallel_figure2_points, run_points
from .software_comparison import (
    SoftwareComparisonConfig,
    run_software_comparison,
    run_software_multicast_once,
    software_comparison_specs,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "current_scale",
    "paper_config",
    "build_network_and_routing",
    "Figure2Config",
    "default_destination_counts",
    "figure2_specs",
    "run_figure2",
    "Figure3Config",
    "figure3_specs",
    "run_figure3",
    "SoftwareComparisonConfig",
    "software_comparison_specs",
    "run_software_comparison",
    "run_software_multicast_once",
    "AblationConfig",
    "run_buffer_depth_ablation",
    "run_selection_ablation",
    "run_root_ablation",
    "run_partition_ablation",
    "SweepPointSpec",
    "evaluate_point",
    "run_points",
    "parallel_figure2_points",
]
