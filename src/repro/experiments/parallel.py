"""Compatibility layer over :mod:`repro.sweeps` (the historical location of
the parallel sweep runner).

The spec/evaluate/pool machinery that used to live here is now the
`repro.sweeps` subsystem — a generalized spec layer, a content-addressed
result store and a resumable scheduler shared by every experiment.  This
module keeps the original names importable:

* :class:`~repro.sweeps.spec.SweepPointSpec` and
  :class:`~repro.sweeps.spec.SweepPointResult` are re-exported;
* :func:`evaluate_point` is :func:`repro.sweeps.evaluate_spec`;
* :func:`run_points` wraps :func:`repro.sweeps.run_sweep` (no store);
* :func:`parallel_figure2_points` builds Figure-2 style spec lists.

New code should import from :mod:`repro.sweeps` directly.
"""

from __future__ import annotations

import os
from typing import Sequence

from ..sweeps import SweepPointResult, SweepPointSpec, evaluate_spec, run_sweep

__all__ = ["SweepPointSpec", "SweepPointResult", "evaluate_point", "run_points",
           "parallel_figure2_points"]

#: Historical name for the single-point evaluator.
evaluate_point = evaluate_spec


def run_points(
    specs: Sequence[SweepPointSpec],
    max_workers: int | None = None,
    parallel: bool = True,
) -> list[SweepPointResult]:
    """Evaluate sweep points, optionally across a process pool.

    Preserved signature of the historical runner; equivalent to
    ``run_sweep(specs, workers=...)`` without a result store.
    """
    if not parallel:
        workers = 1
    elif max_workers is None:
        workers = os.cpu_count() or 1
    else:
        workers = max_workers
    return run_sweep(list(specs), store=None, workers=workers).results


def parallel_figure2_points(
    network_size: int,
    destination_counts: Sequence[int],
    samples: int,
    message_length_flits: int = 128,
    topology_seed: int = 7,
    workload_seed: int = 11,
) -> list[SweepPointSpec]:
    """Build the spec list for a Figure-2 sweep (one spec per destination count)."""
    return [
        SweepPointSpec(
            workload_kind="single-multicast",
            network_size=network_size,
            topology_seed=topology_seed,
            message_length_flits=message_length_flits,
            workload_params=(("num_destinations", count), ("samples", samples)),
            workload_seed=workload_seed + count,
            label=f"{network_size}-switch network",
            x=float(count),
        )
        for count in destination_counts
    ]
