"""Parallel execution of experiment sweeps.

Every data point of Figures 2 and 3 is an independent simulation, so sweeps
are embarrassingly parallel.  This module provides a process-pool runner that
evaluates sweep points concurrently; it exists because regenerating the
paper-scale configurations with a pure-Python flit-level simulator is CPU
bound, and the natural HPC answer is to spread points over cores rather than
to micro-optimise the inner loop further (profile first — the event loop is
already the measured hot path).

Worker processes rebuild the network and routing state from *parameters*
(rather than receiving live objects), so everything crossing the process
boundary is a small picklable description.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from ..simulator.config import SimulationConfig
from ..simulator.engine import WormholeSimulator
from ..traffic.workload import mixed_traffic_workload, single_multicast_workload
from .common import build_network_and_routing

__all__ = ["SweepPointSpec", "evaluate_point", "run_points", "parallel_figure2_points"]


@dataclass(frozen=True)
class SweepPointSpec:
    """A self-contained, picklable description of one simulation point.

    Attributes
    ----------
    workload_kind:
        ``"single-multicast"`` (Figure 2 style) or ``"mixed"`` (Figure 3
        style).
    network_size / topology_seed / root_strategy / selection:
        Parameters handed to
        :func:`repro.experiments.common.build_network_and_routing`.
    message_length_flits:
        Worm length used by the simulation.
    workload_params:
        Keyword arguments of the workload builder (destination count and
        samples for single multicasts; rate, degree, message count for mixed
        traffic).
    workload_seed:
        Seed of the workload builder.
    label / x:
        Free-form identification of the point, echoed back in the result so
        callers can reassemble series without relying on ordering.
    """

    workload_kind: str
    network_size: int
    topology_seed: int
    message_length_flits: int
    workload_params: tuple[tuple[str, object], ...]
    workload_seed: int
    root_strategy: str = "center"
    selection: str = "distance-to-lca"
    label: str = ""
    x: float = 0.0


@dataclass(frozen=True)
class SweepPointResult:
    """Latencies measured for one :class:`SweepPointSpec`."""

    spec: SweepPointSpec
    latencies_us: tuple[float, ...]

    @property
    def mean_us(self) -> float:
        """Mean latency of the point."""
        return sum(self.latencies_us) / len(self.latencies_us) if self.latencies_us else float("nan")


def evaluate_point(spec: SweepPointSpec) -> SweepPointResult:
    """Run one sweep point to completion (executed inside worker processes)."""
    network, routing = build_network_and_routing(
        spec.network_size,
        seed=spec.topology_seed,
        root_strategy=spec.root_strategy,
        selection_name=spec.selection,
    )
    params = dict(spec.workload_params)
    if spec.workload_kind == "single-multicast":
        workload = single_multicast_workload(
            network,
            num_destinations=int(params["num_destinations"]),
            samples=int(params["samples"]),
            seed=spec.workload_seed,
        )
        from_creation = False
    elif spec.workload_kind == "mixed":
        workload = mixed_traffic_workload(
            network,
            rate_per_us=float(params["rate_per_us"]),
            multicast_destinations=int(params["multicast_destinations"]),
            num_messages=int(params["num_messages"]),
            multicast_fraction=float(params.get("multicast_fraction", 0.1)),
            seed=spec.workload_seed,
        )
        from_creation = True
    else:
        raise ValueError(f"unknown workload kind {spec.workload_kind!r}")

    config = SimulationConfig(message_length_flits=spec.message_length_flits)
    simulator = WormholeSimulator(network, routing, config)
    workload.submit_to(simulator)
    stats = simulator.run()
    return SweepPointResult(
        spec=spec,
        latencies_us=tuple(stats.latencies_us(from_creation=from_creation)),
    )


def run_points(
    specs: Sequence[SweepPointSpec],
    max_workers: int | None = None,
    parallel: bool = True,
) -> list[SweepPointResult]:
    """Evaluate sweep points, optionally across a process pool.

    With ``parallel=False`` (or a single spec) the points run sequentially in
    the current process, which is what the test-suite uses; with
    ``parallel=True`` a :class:`~concurrent.futures.ProcessPoolExecutor`
    spreads them over ``max_workers`` processes.
    """
    specs = list(specs)
    if not parallel or len(specs) <= 1:
        return [evaluate_point(spec) for spec in specs]
    results: list[SweepPointResult] = []
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        for result in pool.map(evaluate_point, specs):
            results.append(result)
    return results


def parallel_figure2_points(
    network_size: int,
    destination_counts: Sequence[int],
    samples: int,
    message_length_flits: int = 128,
    topology_seed: int = 7,
    workload_seed: int = 11,
) -> list[SweepPointSpec]:
    """Build the spec list for a Figure-2 sweep (one spec per destination count)."""
    return [
        SweepPointSpec(
            workload_kind="single-multicast",
            network_size=network_size,
            topology_seed=topology_seed,
            message_length_flits=message_length_flits,
            workload_params=(("num_destinations", count), ("samples", samples)),
            workload_seed=workload_seed + count,
            label=f"{network_size}-switch network",
            x=float(count),
        )
        for count in destination_counts
    ]
