"""Figure 3: latency versus average arrival rate under mixed traffic.

The paper's second experiment runs 90 % unicast / 10 % multicast traffic in
a 128-switch irregular network, with multicast degrees of 8, 16, 32 and 64
destinations and negative-binomial arrivals of varying average rate.  The
result is that "even in relatively heavy network traffic, latency remains
largely independent of the number of destinations per multicast": all four
curves lie nearly on top of each other, rising from the no-load latency
(≈ 10–20 µs) towards saturation as the arrival rate grows.

:func:`run_figure3` regenerates the figure as a
:class:`~repro.analysis.sweeps.SweepResult` with one series per multicast
degree.  Latency is measured from message creation (so source queueing under
load is included, which is what produces the saturation behaviour).

Execution routes through :mod:`repro.sweeps` (see
:func:`~repro.experiments.figure2.run_figure2` for the pattern):
:func:`figure3_specs` builds one spec per (degree, rate) point and the
orchestrator handles caching, resumption and process-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.sweeps import SweepResult, sweep_result_from_points
from ..sweeps import ResultStore, SweepPointSpec, run_sweep
from .common import ExperimentScale, current_scale

__all__ = ["Figure3Config", "figure3_specs", "figure3_result_from_points", "run_figure3"]


@dataclass
class Figure3Config:
    """Parameters of the Figure 3 reproduction."""

    network_size: int = 128
    multicast_degrees: tuple[int, ...] = (8, 16, 32, 64)
    #: Average per-processor arrival rates in messages per microsecond
    #: (the paper sweeps 0.005 – 0.04).
    arrival_rates_per_us: tuple[float, ...] = (0.005, 0.01, 0.02, 0.03, 0.04)
    multicast_fraction: float = 0.1
    #: Arrival process drawn at every processor: ``"negative-binomial"``
    #: (the paper's traffic model, quantised to the channel cycle) or
    #: ``"poisson"`` (arbitrary-nanosecond arrivals, which exercise the
    #: engine's phase-staggered coalescing; see ``docs/fast_path.md``).
    arrival: str = "negative-binomial"
    scale: ExperimentScale | None = None
    topology_seed: int = 7
    workload_seed: int = 23
    root_strategy: str = "center"
    #: Extra :class:`~repro.simulator.config.SimulationConfig` overrides
    #: applied to every point (e.g. ``(("region_parallel", True),
    #: ("region_count", 2))`` for the CLI's ``--region-parallel`` flag).
    #: Overrides participate in spec identity — points computed under
    #: different overrides are distinct cache entries by design.
    sim_overrides: tuple[tuple[str, object], ...] = ()

    def resolved_scale(self) -> ExperimentScale:
        return self.scale or current_scale()


def figure3_specs(config: Figure3Config | None = None) -> list[SweepPointSpec]:
    """One sweep spec per Figure-3 data point, one series per degree."""
    config = config or Figure3Config()
    scale = config.resolved_scale()
    specs: list[SweepPointSpec] = []
    for degree in config.multicast_degrees:
        for rate in config.arrival_rates_per_us:
            specs.append(
                SweepPointSpec(
                    workload_kind="mixed",
                    network_size=config.network_size,
                    topology_seed=config.topology_seed,
                    message_length_flits=scale.message_length_flits,
                    workload_params=(
                        ("rate_per_us", rate),
                        ("multicast_destinations", degree),
                        ("num_messages", scale.messages_per_rate_point),
                        ("multicast_fraction", config.multicast_fraction),
                        ("arrival", config.arrival),
                    ),
                    workload_seed=config.workload_seed + degree,
                    root_strategy=config.root_strategy,
                    sim_overrides=config.sim_overrides,
                    label=f"{degree} destinations",
                    x=rate,
                )
            )
    return specs


def figure3_result_from_points(config: Figure3Config, points) -> SweepResult:
    """Reassemble the Figure-3 :class:`SweepResult` from point results."""
    scale = config.resolved_scale()
    return sweep_result_from_points(
        name="figure3-latency-vs-arrival-rate",
        x_label="arrival_rate_per_us",
        y_label="latency_us",
        points=points,
        parameters={
            "scale": scale.name,
            "network_size": config.network_size,
            "message_length_flits": scale.message_length_flits,
            "messages_per_point": scale.messages_per_rate_point,
            "multicast_fraction": config.multicast_fraction,
            "arrival": config.arrival,
        },
        series_metadata={
            f"{degree} destinations": {"multicast_degree": degree}
            for degree in config.multicast_degrees
        },
    )


def run_figure3(
    config: Figure3Config | None = None,
    store: ResultStore | None = None,
    workers: int | None = None,
    resume: bool = True,
    batch_replications: int = 0,
    telemetry=None,
) -> SweepResult:
    """Regenerate Figure 3 and return its sweep data.

    ``batch_replications > 0`` routes skeleton-sharing points through the
    batched Monte-Carlo backend (see :func:`repro.sweeps.run_sweep`) —
    bit-identical results, shared network/routing construction.
    ``telemetry`` is an optional ``repro.obs`` recorder threaded through the
    sweep into every point's engine (wall-clock observability only).
    """
    config = config or Figure3Config()
    outcome = run_sweep(
        figure3_specs(config),
        store=store,
        workers=workers,
        resume=resume,
        batch_replications=batch_replications,
        telemetry=telemetry,
    )
    return figure3_result_from_points(config, outcome.results)
