"""Figure 2: latency versus number of destinations for a single multicast.

The paper measures the latency of one multicast (no background traffic) as
the destination count sweeps from 1 to the network size, in 128- and
256-switch irregular networks.  The result is that "message latency is
essentially independent of the number of destinations and largely
independent of the size of the network": both curves are flat between
roughly 11 and 14 µs.

:func:`run_figure2` regenerates the figure as a
:class:`~repro.analysis.sweeps.SweepResult` with one series per network
size.  The latency reported is the paper's metric — elapsed time from
message startup at the source until the last flit reaches the last
destination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.sweeps import SweepResult
from ..traffic.workload import single_multicast_workload
from .common import (
    ExperimentScale,
    build_network_and_routing,
    current_scale,
    paper_config,
    run_workload_collect_latencies,
)

__all__ = ["Figure2Config", "default_destination_counts", "run_figure2"]


def default_destination_counts(num_switches: int, points: int = 8) -> list[int]:
    """Destination counts to sweep for a network of ``num_switches`` processors.

    The paper sweeps from 1 destination up to (nearly) a full broadcast; we
    use a geometric-ish ladder (1, 2, 4, ... , n-1) capped at ``points``
    values so that the default benchmark stays affordable while still
    covering the full range of the x-axis.
    """
    counts: list[int] = []
    value = 1
    while value < num_switches - 1 and len(counts) < points - 1:
        counts.append(value)
        value *= 2
    counts.append(num_switches - 1)  # full broadcast (every other processor)
    return sorted(set(counts))


@dataclass
class Figure2Config:
    """Parameters of the Figure 2 reproduction."""

    network_sizes: tuple[int, ...] = (128, 256)
    destination_counts: dict[int, list[int]] = field(default_factory=dict)
    scale: ExperimentScale | None = None
    topology_seed: int = 7
    workload_seed: int = 11
    root_strategy: str = "center"

    def resolved_scale(self) -> ExperimentScale:
        return self.scale or current_scale()

    def counts_for(self, num_switches: int) -> list[int]:
        if num_switches in self.destination_counts:
            return self.destination_counts[num_switches]
        return default_destination_counts(num_switches)


def run_figure2(config: Figure2Config | None = None) -> SweepResult:
    """Regenerate Figure 2 and return its sweep data."""
    config = config or Figure2Config()
    scale = config.resolved_scale()
    result = SweepResult(
        name="figure2-latency-vs-destinations",
        x_label="destinations",
        y_label="latency_us",
        parameters={
            "scale": scale.name,
            "message_length_flits": scale.message_length_flits,
            "samples_per_point": scale.samples_per_point,
            "startup_latency_us": 10.0,
        },
    )
    sim_config = paper_config(scale)
    for size in config.network_sizes:
        network, routing = build_network_and_routing(
            size, seed=config.topology_seed, root_strategy=config.root_strategy
        )
        series = result.add_series(f"{size}-switch network", num_switches=size)
        for count in config.counts_for(size):
            workload = single_multicast_workload(
                network,
                num_destinations=count,
                samples=scale.samples_per_point,
                seed=config.workload_seed + count,
            )
            latencies = run_workload_collect_latencies(
                network, routing, workload, sim_config, from_creation=False
            )
            series.add(count, latencies)
    return result
