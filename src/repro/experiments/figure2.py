"""Figure 2: latency versus number of destinations for a single multicast.

The paper measures the latency of one multicast (no background traffic) as
the destination count sweeps from 1 to the network size, in 128- and
256-switch irregular networks.  The result is that "message latency is
essentially independent of the number of destinations and largely
independent of the size of the network": both curves are flat between
roughly 11 and 14 µs.

:func:`run_figure2` regenerates the figure as a
:class:`~repro.analysis.sweeps.SweepResult` with one series per network
size.  The latency reported is the paper's metric — elapsed time from
message startup at the source until the last flit reaches the last
destination.

Execution routes through :mod:`repro.sweeps`: :func:`figure2_specs` turns
the configuration into one :class:`~repro.sweeps.spec.SweepPointSpec` per
data point, the orchestrator evaluates them (optionally in parallel and
against a content-addressed result store), and
:func:`~repro.analysis.sweeps.sweep_result_from_points` reassembles the
figure from the point results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.sweeps import SweepResult, sweep_result_from_points
from ..sweeps import ResultStore, SweepPointSpec, run_sweep
from .common import ExperimentScale, current_scale

__all__ = [
    "Figure2Config",
    "default_destination_counts",
    "figure2_specs",
    "figure2_result_from_points",
    "run_figure2",
]


def default_destination_counts(num_switches: int, points: int = 8) -> list[int]:
    """Destination counts to sweep for a network of ``num_switches`` processors.

    The paper sweeps from 1 destination up to (nearly) a full broadcast; we
    use a geometric-ish ladder (1, 2, 4, ... , n-1) capped at ``points``
    values so that the default benchmark stays affordable while still
    covering the full range of the x-axis.
    """
    counts: list[int] = []
    value = 1
    while value < num_switches - 1 and len(counts) < points - 1:
        counts.append(value)
        value *= 2
    counts.append(num_switches - 1)  # full broadcast (every other processor)
    return sorted(set(counts))


@dataclass
class Figure2Config:
    """Parameters of the Figure 2 reproduction."""

    network_sizes: tuple[int, ...] = (128, 256)
    destination_counts: dict[int, list[int]] = field(default_factory=dict)
    scale: ExperimentScale | None = None
    topology_seed: int = 7
    workload_seed: int = 11
    root_strategy: str = "center"

    def resolved_scale(self) -> ExperimentScale:
        return self.scale or current_scale()

    def counts_for(self, num_switches: int) -> list[int]:
        if num_switches in self.destination_counts:
            return self.destination_counts[num_switches]
        return default_destination_counts(num_switches)


def figure2_specs(config: Figure2Config | None = None) -> list[SweepPointSpec]:
    """One sweep spec per Figure-2 data point, series by series."""
    config = config or Figure2Config()
    scale = config.resolved_scale()
    specs: list[SweepPointSpec] = []
    for size in config.network_sizes:
        for count in config.counts_for(size):
            specs.append(
                SweepPointSpec(
                    workload_kind="single-multicast",
                    network_size=size,
                    topology_seed=config.topology_seed,
                    message_length_flits=scale.message_length_flits,
                    workload_params=(
                        ("num_destinations", count),
                        ("samples", scale.samples_per_point),
                    ),
                    workload_seed=config.workload_seed + count,
                    root_strategy=config.root_strategy,
                    label=f"{size}-switch network",
                    x=count,
                )
            )
    return specs


def figure2_result_from_points(config: Figure2Config, points) -> SweepResult:
    """Reassemble the Figure-2 :class:`SweepResult` from point results."""
    scale = config.resolved_scale()
    return sweep_result_from_points(
        name="figure2-latency-vs-destinations",
        x_label="destinations",
        y_label="latency_us",
        points=points,
        parameters={
            "scale": scale.name,
            "message_length_flits": scale.message_length_flits,
            "samples_per_point": scale.samples_per_point,
            "startup_latency_us": 10.0,
        },
        series_metadata={
            f"{size}-switch network": {"num_switches": size}
            for size in config.network_sizes
        },
    )


def run_figure2(
    config: Figure2Config | None = None,
    store: ResultStore | None = None,
    workers: int | None = None,
    resume: bool = True,
    batch_replications: int = 0,
    telemetry=None,
) -> SweepResult:
    """Regenerate Figure 2 and return its sweep data.

    ``batch_replications > 0`` routes skeleton-sharing points through the
    batched Monte-Carlo backend (see :func:`repro.sweeps.run_sweep`).
    ``telemetry`` is an optional ``repro.obs`` recorder threaded through the
    sweep into every point's engine (wall-clock observability only).
    """
    config = config or Figure2Config()
    outcome = run_sweep(
        figure2_specs(config),
        store=store,
        workers=workers,
        resume=resume,
        batch_replications=batch_replications,
        telemetry=telemetry,
    )
    return figure2_result_from_points(config, outcome.results)
