"""Shared infrastructure for the experiment drivers.

Every experiment driver follows the same pattern: build a paper-style
irregular network, build SPAM on it, run a workload on the flit-level
simulator, and aggregate per-message latencies.  This module hosts those
shared steps plus the *scaling* machinery: flit-level simulation in pure
Python cannot re-run the paper's full sample counts in a benchmark-friendly
time budget, so each experiment has a default reduced configuration and
reads environment variables to scale back up:

``REPRO_SCALE``
    ``"smoke"`` (fastest, CI-sized), ``"default"`` or ``"paper"``.
``REPRO_FLITS``
    Override the message length in flits (paper: 128).
``REPRO_SAMPLES``
    Override the number of samples per data point.
``REPRO_SWEEP_WORKERS``
    Worker-process count picked up by the sweep orchestrator the drivers
    route through (see :mod:`repro.sweeps`); unset means sequential.

``build_network_and_routing`` lives in :mod:`repro.sweeps.spec` (worker
processes need it without importing the experiment layer) and is re-exported
here for compatibility.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..simulator.config import SimulationConfig
from ..simulator.engine import WormholeSimulator
from ..sweeps.spec import build_network_and_routing
from ..topology.network import Network
from ..traffic.workload import Workload

__all__ = [
    "ExperimentScale",
    "current_scale",
    "scaled",
    "build_network_and_routing",
    "run_workload_collect_latencies",
    "paper_config",
]


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """Scaling knobs applied to every experiment driver."""

    name: str
    message_length_flits: int
    samples_per_point: int
    messages_per_rate_point: int

    def with_env_overrides(self) -> "ExperimentScale":
        """Apply ``REPRO_FLITS`` / ``REPRO_SAMPLES`` overrides if present."""
        flits = int(os.environ.get("REPRO_FLITS", self.message_length_flits))  # repro-lint: disable=R4 -- documented scale knob; affects scope, not per-seed determinism
        samples = int(os.environ.get("REPRO_SAMPLES", self.samples_per_point))  # repro-lint: disable=R4 -- documented scale knob; affects scope, not per-seed determinism
        return ExperimentScale(
            name=self.name,
            message_length_flits=flits,
            samples_per_point=samples,
            messages_per_rate_point=self.messages_per_rate_point,
        )


#: Named scales.  "paper" matches the paper's message length and uses enough
#: samples for reasonably tight confidence intervals (still far fewer than
#: the paper's, which targeted 1 % relative CI half-width).
SCALES = {
    "smoke": ExperimentScale("smoke", message_length_flits=32, samples_per_point=2,
                             messages_per_rate_point=40),
    "default": ExperimentScale("default", message_length_flits=64, samples_per_point=4,
                               messages_per_rate_point=120),
    "paper": ExperimentScale("paper", message_length_flits=128, samples_per_point=12,
                             messages_per_rate_point=400),
}


def current_scale() -> ExperimentScale:
    """The scale selected by ``REPRO_SCALE`` (default ``"default"``)."""
    name = os.environ.get("REPRO_SCALE", "default")  # repro-lint: disable=R4 -- documented scale knob; affects scope, not per-seed determinism
    scale = SCALES.get(name, SCALES["default"])
    return scale.with_env_overrides()


def scaled(name: str | None = None) -> ExperimentScale:
    """Scale by explicit name, or the environment-selected one."""
    if name is None:
        return current_scale()
    return SCALES[name].with_env_overrides()


def paper_config(scale: ExperimentScale, **overrides) -> SimulationConfig:
    """The paper's simulation configuration at the given scale."""
    config = SimulationConfig(message_length_flits=scale.message_length_flits)
    if overrides:
        config = config.with_overrides(**overrides)
    return config


def run_workload_collect_latencies(
    network: Network,
    routing,
    workload: Workload,
    config: SimulationConfig,
    from_creation: bool = True,
    kind: str | None = None,
) -> list[float]:
    """Run ``workload`` on a fresh simulator and return per-message latencies (µs)."""
    simulator = WormholeSimulator(network, routing, config)
    workload.submit_to(simulator)
    stats = simulator.run()
    return stats.latencies_us(kind=kind, from_creation=from_creation)
