"""Ablation studies on SPAM's design choices.

The paper's §3 and §5 leave several knobs open — the selection function, the
spanning-tree root, the input-buffer depth, and the destination-partitioning
extension.  These drivers quantify each knob's effect with the same
single-multicast workload as Figure 2, so the ablation results are directly
comparable to the headline figure.

Each variant is one sweep point (the knobs map onto
:class:`~repro.sweeps.spec.SweepPointSpec` fields: ``sim_overrides`` for
buffer depths, ``selection``/``selection_seed`` and ``root_strategy`` for
the routing knobs, the ``"partitioned-multicast"`` workload kind for §5's
extension), so the ablations cache, resume and parallelise through
:func:`repro.sweeps.run_sweep` like every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sweeps import ResultStore, SweepPointSpec, run_sweep
from .common import ExperimentScale, current_scale

__all__ = [
    "AblationConfig",
    "run_buffer_depth_ablation",
    "run_selection_ablation",
    "run_root_ablation",
    "run_partition_ablation",
]


@dataclass
class AblationConfig:
    """Shared parameters of the ablation drivers."""

    network_size: int = 64
    num_destinations: int = 32
    scale: ExperimentScale | None = None
    topology_seed: int = 7
    workload_seed: int = 41

    def resolved_scale(self) -> ExperimentScale:
        return self.scale or current_scale()


def _ablation_spec(
    config: AblationConfig,
    label: str,
    x: float,
    workload_kind: str = "single-multicast",
    workload_params: tuple[tuple[str, object], ...] | None = None,
    sim_overrides: tuple[tuple[str, object], ...] = (),
    root_strategy: str = "center",
    selection: str = "distance-to-lca",
    selection_seed: int | None = None,
) -> SweepPointSpec:
    scale = config.resolved_scale()
    count = min(config.num_destinations, config.network_size - 1)
    if workload_params is None:
        workload_params = (
            ("num_destinations", count),
            ("samples", scale.samples_per_point),
        )
    return SweepPointSpec(
        workload_kind=workload_kind,
        network_size=config.network_size,
        topology_seed=config.topology_seed,
        message_length_flits=scale.message_length_flits,
        workload_params=workload_params,
        workload_seed=config.workload_seed,
        root_strategy=root_strategy,
        selection=selection,
        selection_seed=selection_seed,
        sim_overrides=sim_overrides,
        label=label,
        x=x,
    )


def run_buffer_depth_ablation(
    depths: tuple[int, ...] = (1, 2, 4, 8),
    config: AblationConfig | None = None,
    store: ResultStore | None = None,
    workers: int | None = None,
    resume: bool = True,
    batch_replications: int = 0,
) -> list[dict]:
    """Effect of input/output buffer depth on single-multicast latency.

    The paper (§5) conjectures that larger input buffers could further
    reduce latency while stressing that correctness never requires more than
    one flit of buffering.
    """
    config = config or AblationConfig()
    specs = [
        _ablation_spec(
            config,
            label=f"buffer-depth-{depth}",
            x=depth,
            sim_overrides=(
                ("input_buffer_depth", depth),
                ("output_buffer_depth", depth),
            ),
        )
        for depth in depths
    ]
    outcome = run_sweep(
        specs,
        store=store,
        workers=workers,
        resume=resume,
        batch_replications=batch_replications,
    )
    return [
        {"buffer_depth": depth, "latency_us": result.mean_us}
        for depth, result in zip(depths, outcome.results)
    ]


def run_selection_ablation(
    strategies: tuple[str, ...] = ("distance-to-lca", "first-allowed", "random"),
    config: AblationConfig | None = None,
    store: ResultStore | None = None,
    workers: int | None = None,
    resume: bool = True,
    batch_replications: int = 0,
) -> list[dict]:
    """Effect of the selection function on single-multicast latency."""
    config = config or AblationConfig()
    specs = [
        _ablation_spec(
            config,
            label=f"selection-{strategy}",
            x=index,
            selection=strategy,
            selection_seed=config.workload_seed,
        )
        for index, strategy in enumerate(strategies)
    ]
    outcome = run_sweep(
        specs,
        store=store,
        workers=workers,
        resume=resume,
        batch_replications=batch_replications,
    )
    return [
        {"selection": strategy, "latency_us": result.mean_us}
        for strategy, result in zip(strategies, outcome.results)
    ]


def run_root_ablation(
    strategies: tuple[str, ...] = ("center", "max-degree", "first"),
    config: AblationConfig | None = None,
    store: ResultStore | None = None,
    workers: int | None = None,
    resume: bool = True,
    batch_replications: int = 0,
) -> list[dict]:
    """Effect of the spanning-tree root choice on single-multicast latency."""
    config = config or AblationConfig()
    specs = [
        _ablation_spec(
            config,
            label=f"root-{strategy}",
            x=index,
            root_strategy=strategy,
        )
        for index, strategy in enumerate(strategies)
    ]
    outcome = run_sweep(
        specs,
        store=store,
        workers=workers,
        resume=resume,
        batch_replications=batch_replications,
    )
    return [
        {
            "root_strategy": strategy,
            "root": result.metric("tree_root"),
            "tree_height": result.metric("tree_height"),
            "latency_us": result.mean_us,
        }
        for strategy, result in zip(strategies, outcome.results)
    ]


def run_partition_ablation(
    group_counts: tuple[int, ...] = (1, 2, 4),
    strategy: str = "contiguous",
    config: AblationConfig | None = None,
    store: ResultStore | None = None,
    workers: int | None = None,
    resume: bool = True,
    batch_replications: int = 0,
) -> list[dict]:
    """The paper's §5 destination-partitioning extension.

    A broadcast-sized destination set is split into ``k`` groups of
    contiguous (tree-order) destinations; one multicast worm is sent per
    group, all submitted at the same instant from the same source.  The
    reported latency is the time until the last destination of *any* group
    has been reached (i.e. the completion of the whole logical broadcast).
    Splitting trades extra startups for less root contention.
    """
    config = config or AblationConfig()
    count = min(config.num_destinations, config.network_size - 1)
    specs = [
        _ablation_spec(
            config,
            label=f"partition-{groups}",
            x=groups,
            workload_kind="partitioned-multicast",
            workload_params=(
                ("num_destinations", count),
                ("groups", groups),
                ("strategy", strategy),
            ),
        )
        for groups in group_counts
    ]
    outcome = run_sweep(
        specs,
        store=store,
        workers=workers,
        resume=resume,
        batch_replications=batch_replications,
    )
    return [
        {
            "groups": result.metric("groups"),
            "strategy": strategy,
            "latency_us": result.mean_us,
            "worms": result.metric("worms"),
        }
        for result in outcome.results
    ]
