"""Ablation studies on SPAM's design choices.

The paper's §3 and §5 leave several knobs open — the selection function, the
spanning-tree root, the input-buffer depth, and the destination-partitioning
extension.  These drivers quantify each knob's effect with the same
single-multicast workload as Figure 2, so the ablation results are directly
comparable to the headline figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.partition import partition_destinations
from ..core.selection import make_selection
from ..core.spam import SpamRouting
from ..simulator.engine import WormholeSimulator
from ..topology.irregular import lattice_irregular_network
from ..traffic.patterns import uniform_destinations, uniform_source
from ..traffic.workload import single_multicast_workload
from .common import (
    ExperimentScale,
    current_scale,
    paper_config,
    run_workload_collect_latencies,
)

__all__ = [
    "AblationConfig",
    "run_buffer_depth_ablation",
    "run_selection_ablation",
    "run_root_ablation",
    "run_partition_ablation",
]


@dataclass
class AblationConfig:
    """Shared parameters of the ablation drivers."""

    network_size: int = 64
    num_destinations: int = 32
    scale: ExperimentScale | None = None
    topology_seed: int = 7
    workload_seed: int = 41

    def resolved_scale(self) -> ExperimentScale:
        return self.scale or current_scale()


def _network(config: AblationConfig):
    return lattice_irregular_network(config.network_size, seed=config.topology_seed)


def _single_multicast_latency(network, routing, config: AblationConfig, sim_config) -> float:
    scale = config.resolved_scale()
    workload = single_multicast_workload(
        network,
        num_destinations=min(config.num_destinations, network.num_processors - 1),
        samples=scale.samples_per_point,
        seed=config.workload_seed,
    )
    latencies = run_workload_collect_latencies(
        network, routing, workload, sim_config, from_creation=False
    )
    return sum(latencies) / len(latencies)


def run_buffer_depth_ablation(
    depths: tuple[int, ...] = (1, 2, 4, 8), config: AblationConfig | None = None
) -> list[dict]:
    """Effect of input/output buffer depth on single-multicast latency.

    The paper (§5) conjectures that larger input buffers could further
    reduce latency while stressing that correctness never requires more than
    one flit of buffering.
    """
    config = config or AblationConfig()
    network = _network(config)
    routing = SpamRouting.build(network)
    rows = []
    for depth in depths:
        sim_config = paper_config(
            config.resolved_scale(), input_buffer_depth=depth, output_buffer_depth=depth
        )
        latency = _single_multicast_latency(network, routing, config, sim_config)
        rows.append({"buffer_depth": depth, "latency_us": latency})
    return rows


def run_selection_ablation(
    strategies: tuple[str, ...] = ("distance-to-lca", "first-allowed", "random"),
    config: AblationConfig | None = None,
) -> list[dict]:
    """Effect of the selection function on single-multicast latency."""
    config = config or AblationConfig()
    network = _network(config)
    sim_config = paper_config(config.resolved_scale())
    rows = []
    for strategy in strategies:
        selection = make_selection(strategy, network, seed=config.workload_seed)
        routing = SpamRouting.build(network, selection=selection)
        latency = _single_multicast_latency(network, routing, config, sim_config)
        rows.append({"selection": strategy, "latency_us": latency})
    return rows


def run_root_ablation(
    strategies: tuple[str, ...] = ("center", "max-degree", "first"),
    config: AblationConfig | None = None,
) -> list[dict]:
    """Effect of the spanning-tree root choice on single-multicast latency."""
    config = config or AblationConfig()
    network = _network(config)
    sim_config = paper_config(config.resolved_scale())
    rows = []
    for strategy in strategies:
        routing = SpamRouting.build(network, root_strategy=strategy)
        latency = _single_multicast_latency(network, routing, config, sim_config)
        rows.append(
            {
                "root_strategy": strategy,
                "root": routing.tree.root,
                "tree_height": routing.tree.height(),
                "latency_us": latency,
            }
        )
    return rows


def run_partition_ablation(
    group_counts: tuple[int, ...] = (1, 2, 4),
    strategy: str = "contiguous",
    config: AblationConfig | None = None,
) -> list[dict]:
    """The paper's §5 destination-partitioning extension.

    A broadcast-sized destination set is split into ``k`` groups of
    contiguous (tree-order) destinations; one multicast worm is sent per
    group, all submitted at the same instant from the same source.  The
    reported latency is the time until the last destination of *any* group
    has been reached (i.e. the completion of the whole logical broadcast).
    Splitting trades extra startups for less root contention.
    """
    config = config or AblationConfig()
    network = _network(config)
    routing = SpamRouting.build(network)
    sim_config = paper_config(config.resolved_scale())
    rng = np.random.default_rng(config.workload_seed)
    source = uniform_source(network, rng)
    destinations = uniform_destinations(
        network, source, min(config.num_destinations, network.num_processors - 1), rng
    )

    rows = []
    for groups in group_counts:
        partitions = partition_destinations(routing.tree, destinations, groups, strategy)
        simulator = WormholeSimulator(network, routing, sim_config)
        messages = [
            simulator.submit_message(source, part, at_ns=0, metadata={"group": index})
            for index, part in enumerate(partitions)
        ]
        simulator.run()
        completion = max(message.completed_ns for message in messages)
        rows.append(
            {
                "groups": len(partitions),
                "strategy": strategy,
                "latency_us": completion / 1000.0,
                "worms": len(partitions),
            }
        )
    return rows
