"""SPAM versus software (unicast-based) multicast.

The paper's §4 quantifies the advantage of hardware-supported multicast by
comparing SPAM's measured broadcast latency against the *theoretical lower
bound* of software multicast, ``ceil(log2(d+1)) * t_startup``: "SPAM incurs a
latency of under 14 µs for a single broadcast in a 256 node network.  In
contrast, the theoretical lower bound for software-based multicast ...
impl[ies] a lower bound of 90 µs in this case; a more than six-fold
difference."

This driver reproduces that comparison and strengthens it by also *running*
the software scheme: a binomial-tree unicast-based multicast executed on the
same flit-level simulator on top of classic up*/down* unicast routing, so the
measured (not just bounded) software latency is reported as well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.bounds import compare_against_bound, software_multicast_lower_bound_us
from ..routing.unicast_multicast import UnicastMulticastScheduler
from ..routing.updown import UpDownRouting
from ..simulator.engine import WormholeSimulator
from ..traffic.patterns import uniform_destinations, uniform_source
from ..traffic.workload import single_multicast_workload
from .common import (
    ExperimentScale,
    build_network_and_routing,
    current_scale,
    paper_config,
    run_workload_collect_latencies,
)

__all__ = ["SoftwareComparisonConfig", "run_software_comparison", "run_software_multicast_once"]


@dataclass
class SoftwareComparisonConfig:
    """Parameters of the SPAM vs software-multicast comparison."""

    network_size: int = 256
    destination_counts: tuple[int, ...] = (8, 32, 128, 255)
    scale: ExperimentScale | None = None
    topology_seed: int = 7
    workload_seed: int = 31
    #: Also execute the binomial software multicast on the simulator (slower
    #: but turns the bound comparison into a measured comparison).
    run_software_baseline: bool = True

    def resolved_scale(self) -> ExperimentScale:
        return self.scale or current_scale()


def run_software_multicast_once(
    network,
    updown: UpDownRouting,
    source: int,
    destinations: list[int],
    sim_config,
) -> float:
    """Execute one binomial-tree software multicast and return its latency (µs).

    Every forwarding unicast pays the full startup latency at its sender,
    exactly as the software scheme would; the reported latency is the time
    from the source's first startup until the last destination has received
    the payload.
    """
    simulator = WormholeSimulator(network, updown, sim_config)
    scheduler = UnicastMulticastScheduler(source=source, destinations=tuple(destinations))
    last_delivery_ns = 0

    def on_delivery(message, destination, time_ns):
        nonlocal last_delivery_ns
        if message.metadata.get("software_multicast") is not True:
            return
        last_delivery_ns = max(last_delivery_ns, time_ns)
        for step in scheduler.on_delivery(destination):
            simulator.submit_message(
                step.sender,
                [step.recipient],
                metadata={"software_multicast": True, "phase": step.phase},
            )

    simulator.delivery_callbacks.append(on_delivery)
    for step in scheduler.initial_sends():
        simulator.submit_message(
            step.sender,
            [step.recipient],
            metadata={"software_multicast": True, "phase": step.phase},
        )
    simulator.run()
    if not scheduler.finished:
        raise RuntimeError("software multicast did not reach every destination")
    return last_delivery_ns / 1000.0


def run_software_comparison(config: SoftwareComparisonConfig | None = None) -> list[dict]:
    """Run the comparison and return one result row per destination count.

    Each row contains the measured SPAM latency, the software lower bound,
    the measured software (binomial) latency when enabled, and the resulting
    speedup factors.
    """
    config = config or SoftwareComparisonConfig()
    scale = config.resolved_scale()
    sim_config = paper_config(scale)
    network, spam = build_network_and_routing(config.network_size, seed=config.topology_seed)
    updown = UpDownRouting(network, spam.tree, spam.selection)
    rng = np.random.default_rng(config.workload_seed)

    rows: list[dict] = []
    for count in config.destination_counts:
        count = min(count, network.num_processors - 1)
        # Measured SPAM latency (single multicast, idle network).
        workload = single_multicast_workload(
            network,
            num_destinations=count,
            samples=max(1, scale.samples_per_point // 2),
            seed=config.workload_seed + count,
        )
        spam_latencies = run_workload_collect_latencies(
            network, spam, workload, sim_config, from_creation=False
        )
        spam_latency = sum(spam_latencies) / len(spam_latencies)
        comparison = compare_against_bound(
            count,
            spam_latency,
            startup_latency_us=sim_config.startup_latency_ns / 1000.0,
        )
        row = comparison.as_dict()

        if config.run_software_baseline:
            source = uniform_source(network, rng)
            destinations = uniform_destinations(network, source, count, rng)
            measured_software = run_software_multicast_once(
                network, updown, source, destinations, sim_config
            )
            row["software_measured_us"] = measured_software
            row["measured_speedup"] = measured_software / spam_latency
        rows.append(row)
    return rows
