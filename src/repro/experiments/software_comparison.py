"""SPAM versus software (unicast-based) multicast.

The paper's §4 quantifies the advantage of hardware-supported multicast by
comparing SPAM's measured broadcast latency against the *theoretical lower
bound* of software multicast, ``ceil(log2(d+1)) * t_startup``: "SPAM incurs a
latency of under 14 µs for a single broadcast in a 256 node network.  In
contrast, the theoretical lower bound for software-based multicast ...
impl[ies] a lower bound of 90 µs in this case; a more than six-fold
difference."

This driver reproduces that comparison and strengthens it by also *running*
the software scheme: a binomial-tree unicast-based multicast executed on the
same flit-level simulator on top of classic up*/down* unicast routing, so the
measured (not just bounded) software latency is reported as well.

Each destination count is one ``"software-comparison"`` sweep point
(:mod:`repro.sweeps.spec` hosts the evaluator, including the executable
binomial baseline), so the comparison caches, resumes and parallelises like
every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sweeps import ResultStore, SweepPointSpec, run_software_multicast_once, run_sweep
from .common import ExperimentScale, current_scale

__all__ = [
    "SoftwareComparisonConfig",
    "software_comparison_specs",
    "run_software_comparison",
    "run_software_multicast_once",
]


@dataclass
class SoftwareComparisonConfig:
    """Parameters of the SPAM vs software-multicast comparison."""

    network_size: int = 256
    destination_counts: tuple[int, ...] = (8, 32, 128, 255)
    scale: ExperimentScale | None = None
    topology_seed: int = 7
    workload_seed: int = 31
    #: Also execute the binomial software multicast on the simulator (slower
    #: but turns the bound comparison into a measured comparison).
    run_software_baseline: bool = True

    def resolved_scale(self) -> ExperimentScale:
        return self.scale or current_scale()


def software_comparison_specs(
    config: SoftwareComparisonConfig | None = None,
) -> list[SweepPointSpec]:
    """One sweep spec per destination count of the §4 comparison."""
    config = config or SoftwareComparisonConfig()
    scale = config.resolved_scale()
    specs: list[SweepPointSpec] = []
    for count in config.destination_counts:
        count = min(count, config.network_size - 1)
        specs.append(
            SweepPointSpec(
                workload_kind="software-comparison",
                network_size=config.network_size,
                topology_seed=config.topology_seed,
                message_length_flits=scale.message_length_flits,
                workload_params=(
                    ("num_destinations", count),
                    ("samples", max(1, scale.samples_per_point // 2)),
                    ("run_software_baseline", config.run_software_baseline),
                ),
                workload_seed=config.workload_seed + count,
                label="software-comparison",
                x=count,
            )
        )
    return specs


def run_software_comparison(
    config: SoftwareComparisonConfig | None = None,
    store: ResultStore | None = None,
    workers: int | None = None,
    resume: bool = True,
    batch_replications: int = 0,
    telemetry=None,
) -> list[dict]:
    """Run the comparison and return one result row per destination count.

    Each row contains the measured SPAM latency, the software lower bound,
    the measured software (binomial) latency when enabled, and the resulting
    speedup factors.  ``batch_replications > 0`` routes skeleton-sharing
    points through the batched Monte-Carlo backend (see
    :func:`repro.sweeps.run_sweep`).  ``telemetry`` is an optional
    ``repro.obs`` recorder threaded through the sweep (wall-clock
    observability only).
    """
    config = config or SoftwareComparisonConfig()
    outcome = run_sweep(
        software_comparison_specs(config),
        store=store,
        workers=workers,
        resume=resume,
        batch_replications=batch_replications,
        telemetry=telemetry,
    )
    return [result.metrics_dict() for result in outcome.results]
