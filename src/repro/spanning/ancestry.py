"""Ancestor and extended-ancestor relations (Definition 1 of the paper).

Definition 1 (paper §3.1):

* node ``u`` is an **ancestor** of node ``v`` if there exists a path from
  ``u`` to ``v`` consisting of only down tree channels;
* node ``u`` is an **extended ancestor** of node ``v`` if there exists a
  path from ``u`` to ``v`` consisting of zero or more down cross channels
  followed by zero or more down tree channels.

Both relations are reflexive (the empty path qualifies), which is exactly
what the routing rules need: the final consumption channel's endpoint is the
destination itself and must pass the "ancestor of the destination" test.

The relations are precomputed as Python-integer bitmasks indexed by node id,
so a membership test in the routing hot path is a single shift-and-mask and
set intersections (e.g. "does this subtree contain any destination?") are
single integer ``&`` operations.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from ..errors import SpanningTreeError
from .labeling import ChannelLabeling
from .tree import SpanningTree

__all__ = ["Ancestry", "node_mask"]


def node_mask(nodes: Iterable[int]) -> int:
    """Bitmask with one bit set per node id in ``nodes``."""
    mask = 0
    for node in nodes:
        mask |= 1 << node
    return mask


class Ancestry:
    """Precomputed ancestor / extended-ancestor relations for one labelling.

    Parameters
    ----------
    labeling:
        The channel labelling (which carries the network and the tree).
    """

    def __init__(self, labeling: ChannelLabeling) -> None:
        self.labeling = labeling
        self.network = labeling.network
        self.tree: SpanningTree = labeling.tree
        n = self.network.num_nodes
        self._ancestor_mask: list[int] = [0] * n
        self._extended_mask: list[int] = [0] * n
        self._subtree_mask: list[int] = [0] * n
        self._compute_tree_masks()
        self._compute_extended_masks()

    # ------------------------------------------------------------------
    def _compute_tree_masks(self) -> None:
        tree = self.tree
        # Ancestor masks: walk down from the root accumulating the path mask.
        root = tree.root
        stack: list[tuple[int, int]] = [(root, 1 << root)]
        visited = 0
        while stack:
            node, mask = stack.pop()
            self._ancestor_mask[node] = mask
            visited += 1
            for child in tree.children(node):
                stack.append((child, mask | (1 << child)))
        if visited != self.network.num_nodes:
            raise SpanningTreeError("tree does not cover the network")
        # Subtree masks: post-order accumulation.
        order: list[int] = []
        stack2 = [root]
        while stack2:
            node = stack2.pop()
            order.append(node)
            stack2.extend(tree.children(node))
        for node in reversed(order):
            mask = 1 << node
            for child in tree.children(node):
                mask |= self._subtree_mask[child]
            self._subtree_mask[node] = mask

    def _compute_extended_masks(self) -> None:
        """Extended ancestors via reverse reachability over down cross channels.

        ``E(v)`` contains ``u`` iff ``u`` can reach some tree
        ancestor-or-self of ``v`` using down cross channels only (possibly
        none).  We therefore compute, for every node ``x``, the set of nodes
        that can reach ``x`` through down cross channels (its *reverse down
        cross closure*), then OR those sets over the ancestors of ``v``.
        """
        network = self.network
        labeling = self.labeling
        n = network.num_nodes
        # reverse_dc[x] = bitmask of nodes u with a down-cross path u ->* x
        # (including x itself via the empty path).
        reverse_dc: list[int] = [1 << x for x in range(n)]
        # Down-cross adjacency in both directions.
        predecessors: list[list[int]] = [[] for _ in range(n)]
        successors: list[list[int]] = [[] for _ in range(n)]
        for channel in network.channels():
            if labeling.is_down_cross(channel):
                predecessors[channel.dst].append(channel.src)
                successors[channel.src].append(channel.dst)
        # Down cross channels are acyclic (they strictly increase the pair
        # (tree level, destination id) lexicographically), so a worklist that
        # re-propagates a node's set to its successors whenever it grows
        # converges quickly.
        changed = deque(range(n))
        in_queue = [True] * n
        while changed:
            x = changed.popleft()
            in_queue[x] = False
            new_mask = reverse_dc[x]
            for pred in predecessors[x]:
                new_mask |= reverse_dc[pred]
            if new_mask != reverse_dc[x]:
                reverse_dc[x] = new_mask
            for succ in successors[x]:
                if reverse_dc[x] | reverse_dc[succ] != reverse_dc[succ] and not in_queue[succ]:
                    changed.append(succ)
                    in_queue[succ] = True
        for v in range(n):
            mask = 0
            ancestors = self._ancestor_mask[v]
            a = ancestors
            while a:
                low = a & -a
                x = low.bit_length() - 1
                mask |= reverse_dc[x]
                a ^= low
            self._extended_mask[v] = mask | ancestors

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def ancestor_mask(self, node: int) -> int:
        """Bitmask of the tree ancestors of ``node`` (including ``node``)."""
        return self._ancestor_mask[node]

    def extended_ancestor_mask(self, node: int) -> int:
        """Bitmask of the extended ancestors of ``node`` (including ``node``)."""
        return self._extended_mask[node]

    def subtree_mask(self, node: int) -> int:
        """Bitmask of the tree descendants of ``node`` (including ``node``)."""
        return self._subtree_mask[node]

    def is_ancestor(self, candidate: int, node: int) -> bool:
        """``True`` if ``candidate`` is a tree ancestor of ``node`` (or equal)."""
        return bool(self._ancestor_mask[node] >> candidate & 1)

    def is_extended_ancestor(self, candidate: int, node: int) -> bool:
        """``True`` if ``candidate`` is an extended ancestor of ``node`` (or equal)."""
        return bool(self._extended_mask[node] >> candidate & 1)

    def ancestors(self, node: int) -> list[int]:
        """Sorted list of tree ancestors of ``node`` (including ``node``)."""
        return _mask_to_nodes(self._ancestor_mask[node])

    def extended_ancestors(self, node: int) -> list[int]:
        """Sorted list of extended ancestors of ``node`` (including ``node``)."""
        return _mask_to_nodes(self._extended_mask[node])

    def descendants(self, node: int) -> list[int]:
        """Sorted list of tree descendants of ``node`` (including ``node``)."""
        return _mask_to_nodes(self._subtree_mask[node])

    def covers_all(self, node: int, destination_mask: int) -> bool:
        """``True`` if every destination in ``destination_mask`` lies in the
        subtree rooted at ``node`` (i.e. down-tree delivery from ``node`` can
        reach them all)."""
        return destination_mask & ~self._subtree_mask[node] == 0

    def lca(self, nodes: Iterable[int]) -> int:
        """Least common ancestor of ``nodes`` in the spanning tree."""
        return self.tree.lowest_common_ancestor(nodes)

    def destination_mask(self, destinations: Iterable[int]) -> int:
        """Bitmask over a destination collection (convenience wrapper)."""
        return node_mask(destinations)


def _mask_to_nodes(mask: int) -> list[int]:
    nodes = []
    while mask:
        low = mask & -mask
        nodes.append(low.bit_length() - 1)
        mask ^= low
    return nodes
