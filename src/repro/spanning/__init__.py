"""Up*/down* substrate: spanning trees, channel labelling, ancestor and
extended-ancestor relations, and root-selection heuristics.

This sub-package implements the structural machinery SPAM builds on (paper
§3.1): pick a root switch, compute a spanning tree, classify every
unidirectional channel as up/down and tree/cross, and precompute the
ancestor / extended-ancestor relations that the routing function consults.
"""

from .ancestry import Ancestry, node_mask
from .labeling import ChannelLabeling, label_channels
from .roots import (
    ROOT_STRATEGIES,
    RootSelector,
    center_root,
    first_switch_root,
    max_degree_root,
    random_root,
    select_root,
)
from .tree import SpanningTree, bfs_spanning_tree, dfs_spanning_tree

__all__ = [
    "SpanningTree",
    "bfs_spanning_tree",
    "dfs_spanning_tree",
    "ChannelLabeling",
    "label_channels",
    "Ancestry",
    "node_mask",
    "RootSelector",
    "ROOT_STRATEGIES",
    "center_root",
    "max_degree_root",
    "first_switch_root",
    "random_root",
    "select_root",
]
