"""Channel labelling for the up*/down* partition and SPAM's refinement of it.

Given a network and a rooted spanning tree, every unidirectional channel is
assigned an :class:`~repro.topology.channels.Orientation` (up or down) and a
:class:`~repro.topology.channels.ChannelKind` (tree or cross) according to
the rules of the paper's §3.1:

* For every tree edge, the unidirectional component directed towards the
  root is an *up* channel and the component directed away from the root is a
  *down* channel; both are *tree* channels.
* Cross (non-tree) channels are categorised similarly: a cross channel from
  a deeper node to a shallower node is an *up* channel and one from a
  shallower node to a deeper node is a *down* channel.
* A cross channel between two nodes at the same level is an *up* channel if
  the ID of its source is larger than the ID of its destination and a *down*
  channel otherwise.

Processor links are tree edges by construction (processors are degree-one
leaves), so every injection channel is an up tree channel and every
consumption channel is a down tree channel — matching the paper's
observation that the first channel of every route is an up channel and the
last is a down tree channel.
"""

from __future__ import annotations

from ..errors import SpanningTreeError
from ..topology.channels import (
    Channel,
    ChannelKind,
    ChannelLabel,
    Orientation,
)
from ..topology.network import Network
from .tree import SpanningTree

__all__ = ["ChannelLabeling", "label_channels"]


class ChannelLabeling:
    """Per-channel up/down and tree/cross labels plus per-node indexes.

    Instances are immutable after construction.  The per-node channel lists
    (``up_channels_from``, ``down_tree_channels_from``,
    ``down_cross_channels_from``) are precomputed because the routing
    function consults them on every hop of every worm.
    """

    def __init__(self, network: Network, tree: SpanningTree) -> None:
        if tree.network is not network:
            raise SpanningTreeError("labeling requires the tree built for the same network")
        self.network = network
        self.tree = tree
        self._labels: list[ChannelLabel] = [None] * network.num_channels  # type: ignore[list-item]
        self._up_from: dict[int, list[Channel]] = {n: [] for n in network.nodes()}
        self._down_tree_from: dict[int, list[Channel]] = {n: [] for n in network.nodes()}
        self._down_cross_from: dict[int, list[Channel]] = {n: [] for n in network.nodes()}
        self._assign_labels()

    # ------------------------------------------------------------------
    def _assign_labels(self) -> None:
        network = self.network
        tree = self.tree
        for channel in network.channels():
            src, dst = channel.src, channel.dst
            is_tree = tree.is_tree_edge(src, dst)
            kind = ChannelKind.TREE if is_tree else ChannelKind.CROSS
            orientation = self._orientation(src, dst, is_tree)
            label = ChannelLabel(orientation, kind)
            self._labels[channel.cid] = label
            if label.is_up:
                self._up_from[src].append(channel)
            elif label.is_down_tree:
                self._down_tree_from[src].append(channel)
            else:
                self._down_cross_from[src].append(channel)

    def _orientation(self, src: int, dst: int, is_tree: bool) -> Orientation:
        tree = self.tree
        if is_tree:
            # Towards the root (towards the parent) is up.
            return Orientation.UP if tree.parent(src) == dst else Orientation.DOWN
        depth_src, depth_dst = tree.depth(src), tree.depth(dst)
        if depth_src > depth_dst:
            return Orientation.UP
        if depth_src < depth_dst:
            return Orientation.DOWN
        # Same level: larger ID -> smaller ID is up.
        return Orientation.UP if src > dst else Orientation.DOWN

    # ------------------------------------------------------------------
    def label(self, channel: Channel | int) -> ChannelLabel:
        """Label of a channel (accepts a :class:`Channel` or a ``cid``)."""
        cid = channel.cid if isinstance(channel, Channel) else channel
        return self._labels[cid]

    def is_up(self, channel: Channel | int) -> bool:
        """``True`` for up channels."""
        return self.label(channel).is_up

    def is_down_tree(self, channel: Channel | int) -> bool:
        """``True`` for down tree channels."""
        return self.label(channel).is_down_tree

    def is_down_cross(self, channel: Channel | int) -> bool:
        """``True`` for down cross channels."""
        return self.label(channel).is_down_cross

    def up_channels_from(self, node: int) -> list[Channel]:
        """Outgoing up channels of ``node`` (tree and cross alike)."""
        return self._up_from[node]

    def down_tree_channels_from(self, node: int) -> list[Channel]:
        """Outgoing down tree channels of ``node``."""
        return self._down_tree_from[node]

    def down_cross_channels_from(self, node: int) -> list[Channel]:
        """Outgoing down cross channels of ``node``."""
        return self._down_cross_from[node]

    def down_channels_from(self, node: int) -> list[Channel]:
        """All outgoing down channels (tree and cross) of ``node``."""
        return self._down_tree_from[node] + self._down_cross_from[node]

    def counts(self) -> dict[str, int]:
        """Number of channels per label, for reports and sanity checks."""
        result: dict[str, int] = {}
        for label in self._labels:
            key = label.short()
            result[key] = result.get(key, 0) + 1
        return dict(sorted(result.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChannelLabeling(root={self.tree.root}, {self.counts()})"


def label_channels(network: Network, tree: SpanningTree) -> ChannelLabeling:
    """Build the :class:`ChannelLabeling` for ``network`` and ``tree``."""
    return ChannelLabeling(network, tree)
