"""Root-selection heuristics for the spanning tree.

The paper selects "an arbitrary vertex in V1 (representing a switch)" as the
root.  The choice of root affects both the average route length and the
severity of the hot-spot effect at the root discussed in the paper's §5, so
this module offers several selection strategies; the root-selection ablation
benchmark compares them.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ConfigurationError
from ..topology.network import Network
from ..topology.properties import graph_center_switches

__all__ = [
    "RootSelector",
    "center_root",
    "max_degree_root",
    "first_switch_root",
    "random_root",
    "select_root",
    "ROOT_STRATEGIES",
]

#: Signature of a root-selection strategy.
RootSelector = Callable[[Network], int]


def center_root(network: Network) -> int:
    """The smallest-id switch of minimum eccentricity (the graph centre).

    A central root minimises the height of the BFS spanning tree and is the
    default used by the experiment drivers.
    """
    centers = graph_center_switches(network)
    if not centers:
        raise ConfigurationError("network has no switches")
    return centers[0]


def max_degree_root(network: Network) -> int:
    """The switch with the largest degree (ties broken by smallest id)."""
    switches = network.switches()
    if not switches:
        raise ConfigurationError("network has no switches")
    return max(switches, key=lambda s: (network.degree(s), -s))


def first_switch_root(network: Network) -> int:
    """The switch with the smallest node id (the paper's "arbitrary" choice)."""
    switches = network.switches()
    if not switches:
        raise ConfigurationError("network has no switches")
    return switches[0]


def random_root(network: Network, seed: int | np.random.Generator = 0) -> int:
    """A uniformly random switch."""
    switches = network.switches()
    if not switches:
        raise ConfigurationError("network has no switches")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    return int(switches[int(rng.integers(0, len(switches)))])


#: Named strategies accepted by :func:`select_root` and the experiment CLIs.
ROOT_STRATEGIES: dict[str, RootSelector] = {
    "center": center_root,
    "max-degree": max_degree_root,
    "first": first_switch_root,
}


def select_root(network: Network, strategy: str = "center", seed: int = 0) -> int:
    """Select a spanning-tree root by strategy name.

    Parameters
    ----------
    network:
        Network whose root switch is being selected.
    strategy:
        One of ``"center"``, ``"max-degree"``, ``"first"`` or ``"random"``.
    seed:
        Seed used only by the ``"random"`` strategy.
    """
    if strategy == "random":
        return random_root(network, seed)
    try:
        return ROOT_STRATEGIES[strategy](network)
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown root strategy {strategy!r}; choose from "
            f"{sorted(ROOT_STRATEGIES) + ['random']}"
        ) from exc
