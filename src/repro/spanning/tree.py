"""Spanning-tree construction for the up*/down* partition.

Following Schroeder et al.'s up*/down* scheme (and the paper's §3.1), an
arbitrary switch is selected as the *root* and a spanning tree of the whole
network is computed with respect to that root.  All processors are leaves of
this tree because they have degree one.

The default construction is breadth-first search with deterministic
neighbour ordering (ascending node id), which reproduces the paper's
Figure 1 tree when rooted at vertex 1.  Depth-first construction and
explicit parent maps are also supported so that the effect of spanning-tree
choice (a future-work item of the paper) can be studied.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping, Sequence

from ..errors import SpanningTreeError
from ..topology.network import Network

__all__ = ["SpanningTree", "bfs_spanning_tree", "dfs_spanning_tree"]


class SpanningTree:
    """A rooted spanning tree of a :class:`~repro.topology.network.Network`.

    Parameters
    ----------
    network:
        The network the tree spans.
    root:
        Node id of the root switch.
    parent:
        Mapping from every non-root node to its tree parent.  Every
        ``(child, parent)`` pair must be an edge of the network, and every
        node of the network must be reachable from the root through the
        parent map.
    """

    def __init__(self, network: Network, root: int, parent: Mapping[int, int]) -> None:
        if not network.is_switch(root):
            raise SpanningTreeError(f"root {root} must be a switch")
        self.network = network
        self.root = root
        self._parent = dict(parent)
        self._children: dict[int, list[int]] = {node: [] for node in network.nodes()}
        self._depth: dict[int, int] = {}
        self._validate_and_index()

    # ------------------------------------------------------------------
    def _validate_and_index(self) -> None:
        network = self.network
        if self.root in self._parent:
            raise SpanningTreeError("root must not have a parent")
        expected = network.num_nodes - 1
        if len(self._parent) != expected:
            raise SpanningTreeError(
                f"parent map covers {len(self._parent)} nodes, expected {expected}"
            )
        for child, parent in self._parent.items():
            if not network.has_channel(parent, child):
                raise SpanningTreeError(
                    f"tree edge ({parent}, {child}) is not a channel of the network"
                )
            self._children[parent].append(child)
        for children in self._children.values():
            children.sort()
        # Depth assignment doubles as a reachability / acyclicity check.
        self._depth[self.root] = 0
        queue = deque([self.root])
        visited = 1
        while queue:
            u = queue.popleft()
            for v in self._children[u]:
                if v in self._depth:
                    raise SpanningTreeError(f"node {v} appears twice in the tree")
                self._depth[v] = self._depth[u] + 1
                visited += 1
                queue.append(v)
        if visited != network.num_nodes:
            raise SpanningTreeError("parent map does not span the network")

    # ------------------------------------------------------------------
    def parent(self, node: int) -> int | None:
        """Tree parent of ``node``, or ``None`` for the root."""
        if node == self.root:
            return None
        try:
            return self._parent[node]
        except KeyError as exc:
            raise SpanningTreeError(f"node {node} is not in the tree") from exc

    def children(self, node: int) -> Sequence[int]:
        """Tree children of ``node``, sorted by node id."""
        try:
            return tuple(self._children[node])
        except KeyError as exc:
            raise SpanningTreeError(f"node {node} is not in the tree") from exc

    def depth(self, node: int) -> int:
        """Distance (in tree edges) from the root to ``node``."""
        try:
            return self._depth[node]
        except KeyError as exc:
            raise SpanningTreeError(f"node {node} is not in the tree") from exc

    def level(self, node: int) -> int:
        """Alias for :meth:`depth` matching the paper's terminology."""
        return self.depth(node)

    def height(self) -> int:
        """Maximum depth over all nodes."""
        return max(self._depth.values())

    def is_tree_edge(self, a: int, b: int) -> bool:
        """``True`` if the undirected edge ``{a, b}`` belongs to the tree."""
        return self._parent.get(a) == b or self._parent.get(b) == a

    def nodes_by_depth(self) -> dict[int, list[int]]:
        """Nodes grouped by depth, each group sorted by node id."""
        groups: dict[int, list[int]] = {}
        for node, depth in self._depth.items():
            groups.setdefault(depth, []).append(node)
        for group in groups.values():
            group.sort()
        return dict(sorted(groups.items()))

    def path_to_root(self, node: int) -> list[int]:
        """The node sequence from ``node`` up to (and including) the root."""
        path = [node]
        while path[-1] != self.root:
            path.append(self._parent[path[-1]])
        return path

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """``True`` if ``ancestor`` lies on the tree path from the root to ``node``.

        A node is considered an ancestor of itself, matching the routing
        rules' "ancestor of the destination" test for the final consumption
        channel (whose endpoint is the destination itself).
        """
        current = node
        depth_target = self.depth(ancestor)
        while self.depth(current) > depth_target:
            current = self._parent[current]
        return current == ancestor

    def lowest_common_ancestor(self, nodes: Iterable[int]) -> int:
        """The deepest node that is an ancestor of every node in ``nodes``.

        For a single node the LCA is the node itself, so SPAM's multicast
        algorithm degenerates to the unicast algorithm exactly as described
        in the paper.
        """
        iterator = iter(nodes)
        try:
            current = next(iterator)
        except StopIteration:
            raise SpanningTreeError("LCA of an empty node set is undefined") from None
        for node in iterator:
            current = self._lca_pair(current, node)
        return current

    def _lca_pair(self, a: int, b: int) -> int:
        da, db = self.depth(a), self.depth(b)
        while da > db:
            a = self._parent[a]
            da -= 1
        while db > da:
            b = self._parent[b]
            db -= 1
        while a != b:
            a = self._parent[a]
            b = self._parent[b]
        return a

    def subtree_nodes(self, node: int) -> list[int]:
        """All nodes in the subtree rooted at ``node`` (including ``node``)."""
        result = []
        stack = [node]
        while stack:
            u = stack.pop()
            result.append(u)
            stack.extend(self._children[u])
        return sorted(result)

    def tree_edges(self) -> list[tuple[int, int]]:
        """All tree edges as ``(parent, child)`` pairs."""
        return sorted((parent, child) for child, parent in self._parent.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanningTree(root={self.root}, nodes={self.network.num_nodes})"


def bfs_spanning_tree(network: Network, root: int) -> SpanningTree:
    """Breadth-first spanning tree rooted at ``root``.

    Neighbours are explored in ascending node-id order, which makes the
    construction deterministic and reproduces the paper's Figure 1 tree.
    """
    network.require_connected()
    parent: dict[int, int] = {}
    visited = {root}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for v in network.neighbors(u):
            if v not in visited:
                visited.add(v)
                parent[v] = u
                queue.append(v)
    return SpanningTree(network, root, parent)


def dfs_spanning_tree(network: Network, root: int) -> SpanningTree:
    """Depth-first spanning tree rooted at ``root`` (deterministic order).

    DFS trees tend to be much deeper than BFS trees; they are provided for
    the spanning-tree-choice ablation study (paper §5).
    """
    network.require_connected()
    parent: dict[int, int] = {}
    visited = {root}
    stack = [(root, iter(network.neighbors(root)))]
    while stack:
        node, iterator = stack[-1]
        advanced = False
        for v in iterator:
            if v not in visited:
                visited.add(v)
                parent[v] = node
                stack.append((v, iter(network.neighbors(v))))
                advanced = True
                break
        if not advanced:
            stack.pop()
    return SpanningTree(network, root, parent)
