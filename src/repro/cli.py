"""Command-line interface.

``python -m repro.cli <command>`` (or the ``repro-spam`` console script)
exposes the library's main entry points without writing any Python:

``topology``
    Generate a paper-style irregular network, print its summary and
    optionally save it to JSON.
``figure2`` / ``figure3``
    Regenerate the paper's figures at a chosen scale and print the series.
``compare``
    SPAM vs. software-multicast comparison (the §4 six-fold-difference claim).
``verify``
    Run the deadlock/livelock verification suite on a generated topology.
``hotspot``
    Static root-hot-spot analysis (§5) for growing destination counts.
``sweep``
    Cached, resumable, parallel execution of any experiment through the
    :mod:`repro.sweeps` orchestrator (``--workers``, ``--resume``,
    ``--no-cache``, ``--export``).  ``--shard I/N`` restricts a run to one
    deterministic shard of the sweep so several hosts can split it;
    ``sweep merge --into DIR SRC...`` combines the per-shard stores back
    into one, after which an unsharded run is a pure warm-cache export.
``obs``
    Inspect wall-clock telemetry snapshots (:mod:`repro.obs`): validate
    them against the checked-in schema and print per-tier time-attribution
    tables.  Snapshots come from ``--telemetry OUT`` on the figure/compare/
    sweep commands, which also writes a Chrome-trace/Perfetto sibling
    (``OUT`` with a ``.trace.json`` suffix).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .analysis.hotspot import root_traversal_probability
from .analysis.report import format_table, series_side_by_side
from .analysis.sweeps import sweep_coverage
from .core.spam import SpamRouting
from .errors import SweepError
from .experiments.common import SCALES
from .experiments.figure2 import (
    Figure2Config,
    default_destination_counts,
    figure2_result_from_points,
    figure2_specs,
    run_figure2,
)
from .experiments.figure3 import Figure3Config, figure3_result_from_points, figure3_specs, run_figure3
from .experiments.software_comparison import (
    SoftwareComparisonConfig,
    run_software_comparison,
    software_comparison_specs,
)
from .obs import (
    Telemetry,
    summarize_snapshot,
    validate_chrome_trace,
    validate_snapshot,
    write_chrome_trace,
    write_snapshot,
)
from .sweeps import (
    DEFAULT_STORE_DIR,
    Coordinator,
    CoordinatorServer,
    ResultStore,
    WORKER_FAULTS,
    WorkerClient,
    merge_stores,
    parse_shard,
    run_sweep,
    run_worker,
)
from .topology.irregular import lattice_irregular_network
from .topology.properties import summarize
from .topology.serialization import save_network
from .verification.cdg import build_spam_cdg
from .verification.harness import stress_test_deadlock_freedom
from .verification.reachability import check_unicast_reachability

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro-spam`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-spam",
        description="SPAM (IPPS 1998) reproduction: topologies, figures, verification.",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="smoke",
        help="experiment scale (message length and sample counts)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    topology = subparsers.add_parser("topology", help="generate and inspect an irregular network")
    topology.add_argument("--switches", type=int, default=64)
    topology.add_argument("--seed", type=int, default=0)
    topology.add_argument("--save", type=str, default=None, help="write the network to a JSON file")

    def add_telemetry_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--telemetry", default=None, metavar="OUT",
            help="record wall-clock telemetry (repro.obs) and write the JSON "
                 "snapshot to OUT plus a Chrome-trace/Perfetto sibling "
                 "(OUT with a .trace.json suffix); results are bit-identical "
                 "with or without this flag",
        )

    figure2 = subparsers.add_parser("figure2", help="latency vs number of destinations")
    figure2.add_argument("--network-sizes", type=int, nargs="+", default=[64])
    figure2.add_argument("--seed", type=int, default=7)
    add_telemetry_flag(figure2)

    figure3 = subparsers.add_parser("figure3", help="latency vs arrival rate (mixed traffic)")
    figure3.add_argument("--network-size", type=int, default=64)
    figure3.add_argument("--degrees", type=int, nargs="+", default=[8, 16])
    figure3.add_argument(
        "--rates", type=float, nargs="+", default=[0.005, 0.02, 0.04],
        help="per-processor arrival rates in messages per microsecond",
    )
    figure3.add_argument(
        "--arrival", choices=["negative-binomial", "poisson"],
        default="negative-binomial",
        help="arrival process at every processor (paper: negative-binomial)",
    )
    figure3.add_argument("--seed", type=int, default=7)
    figure3.add_argument(
        "--region-parallel", type=int, default=None, metavar="N",
        help="evaluate every point through the region-parallel decomposition "
             "with N regions (results are identical; the knob participates "
             "in cache identity)",
    )
    add_telemetry_flag(figure3)

    compare = subparsers.add_parser("compare", help="SPAM vs software multicast")
    compare.add_argument("--network-size", type=int, default=64)
    compare.add_argument("--destinations", type=int, nargs="+", default=[8, 32, 63])
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument(
        "--bound-only", action="store_true",
        help="skip executing the binomial software baseline (faster)",
    )
    add_telemetry_flag(compare)

    sweep = subparsers.add_parser(
        "sweep",
        help="cached, resumable, parallel experiment sweeps (repro.sweeps)",
        description=(
            "Run an experiment through the sweep orchestrator: results are "
            "content-addressed in the cache directory, an interrupted sweep "
            "resumes from what it already computed, and points spread over "
            "worker processes.  '--shard I/N' runs one deterministic shard "
            "of the sweep (split across hosts, one cache dir each); "
            "'sweep merge --into DIR SRC...' combines per-shard stores "
            "conflict-free."
        ),
    )
    sweep.add_argument(
        "experiment",
        choices=["figure2", "figure3", "compare", "merge",
                 "serve", "work", "lease", "submit", "status"],
        help="experiment to sweep, 'merge' for store merging, or a fleet "
             "verb: 'serve' runs the lease coordinator over a spec "
             "universe, 'work' drains leases as a worker process, "
             "'lease'/'submit'/'status' are one-shot protocol calls",
    )
    sweep.add_argument("sources", nargs="*", default=[], metavar="SRC",
                       help="[merge] source store directories to merge")
    sweep.add_argument("--into", default=None, metavar="DIR",
                       help="[merge] destination store directory")
    # Fleet-coordination knobs (sweep serve / work / lease / submit / status).
    sweep.add_argument("--universe", choices=["figure2", "figure3", "compare"],
                       default="figure3",
                       help="[serve] experiment whose specs form the coordinator's "
                            "universe (uses the same experiment knobs below)")
    sweep.add_argument("--host", default="127.0.0.1",
                       help="[serve] bind address (default: %(default)s)")
    sweep.add_argument("--port", type=int, default=0,
                       help="[serve] TCP port (default: 0 = pick a free port, "
                            "printed on startup)")
    sweep.add_argument("--lease-ttl", type=float, default=60.0, metavar="S",
                       help="[serve] seconds a worker has to submit or renew "
                            "before its lease expires and the points re-queue")
    sweep.add_argument("--lease-points", type=int, default=8, metavar="N",
                       help="[serve] maximum spec points per lease")
    sweep.add_argument("--exit-when-complete", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="[serve] stop serving once every universe point is "
                            "done (--no-exit-when-complete keeps serving, e.g. "
                            "for status queries)")
    sweep.add_argument("--url", default=None, metavar="URL",
                       help="[work/lease/submit/status] coordinator endpoint, "
                            "e.g. http://127.0.0.1:8471")
    sweep.add_argument("--worker-id", default="worker", metavar="ID",
                       help="[work/lease] worker identity reported to the "
                            "coordinator (default: %(default)s)")
    sweep.add_argument("--max-points", type=int, default=None, metavar="N",
                       help="[work/lease] ask for at most N points per lease")
    sweep.add_argument("--max-leases", type=int, default=None, metavar="N",
                       help="[work] stop after draining N leases")
    sweep.add_argument("--poll-interval", type=float, default=0.25, metavar="S",
                       help="[work] seconds between lease polls while other "
                            "workers hold the remaining points")
    sweep.add_argument("--fault", choices=list(WORKER_FAULTS), default="none",
                       help="[work] scripted one-shot failure mode for the "
                            "coordinator fault-injection harness "
                            "(tools/coordinator_fault_check.py); production "
                            "workers keep the default")
    sweep.add_argument("--lease-id", type=int, default=None, metavar="ID",
                       help="[submit] lease the rows answer (omitted: "
                            "unsolicited idempotent submission)")
    sweep.add_argument("--from-store", default=None, metavar="DIR",
                       help="[submit] worker-side store directory whose rows "
                            "are submitted")
    sweep.add_argument("--shard", default=None, metavar="I/N",
                       help="run only shard I of N (1-based, e.g. 2/4): a "
                            "deterministic content-addressed slice of the sweep, "
                            "disjoint from every other shard")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: $REPRO_SWEEP_WORKERS or sequential; "
                            "0 = one per CPU)")
    sweep.add_argument("--batch-replications", type=int, default=0, metavar="N",
                       help="batch up to N replications sharing a network/routing "
                            "skeleton into one evaluation task (bit-identical "
                            "results, shared construction cost; 0 disables)")
    sweep.add_argument("--resume", action=argparse.BooleanOptionalAction, default=True,
                       help="reuse stored results and compute only missing points "
                            "(--no-resume recomputes everything)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="bypass the result store entirely (no reads, no writes)")
    sweep.add_argument("--cache-dir", default=DEFAULT_STORE_DIR,
                       help="result store directory (default: %(default)s)")
    sweep.add_argument("--export", default=None, metavar="PATH",
                       help="write the assembled figure/rows as JSON to PATH")
    # Experiment knobs (union of the figure2/figure3/compare options).
    sweep.add_argument("--network-sizes", type=int, nargs="+", default=[64],
                       help="[figure2] network sizes to sweep")
    sweep.add_argument("--network-size", type=int, default=64,
                       help="[figure3/compare] network size")
    sweep.add_argument("--degrees", type=int, nargs="+", default=[8, 16],
                       help="[figure3] multicast degrees")
    sweep.add_argument("--rates", type=float, nargs="+", default=[0.005, 0.02, 0.04],
                       help="[figure3] per-processor arrival rates (messages/us)")
    sweep.add_argument("--arrival", choices=["negative-binomial", "poisson"],
                       default="negative-binomial", help="[figure3] arrival process")
    sweep.add_argument("--destinations", type=int, nargs="+", default=[8, 32, 63],
                       help="[compare] destination counts")
    sweep.add_argument("--bound-only", action="store_true",
                       help="[compare] skip the executable software baseline")
    sweep.add_argument("--region-parallel", type=int, default=None, metavar="N",
                       help="[figure3] evaluate points region-parallel with N "
                            "regions (identical results; distinct cache identity)")
    sweep.add_argument("--seed", type=int, default=7)
    add_telemetry_flag(sweep)

    obs = subparsers.add_parser(
        "obs", help="inspect repro.obs telemetry snapshots",
        description=(
            "Work with the telemetry artifacts written by --telemetry: "
            "'obs validate' checks a snapshot against the checked-in schema "
            "(and its Chrome trace for well-formedness), 'obs summarize' "
            "prints per-tier probe time attribution and span totals."
        ),
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_summarize = obs_sub.add_parser(
        "summarize", help="per-tier time attribution from a snapshot")
    obs_summarize.add_argument("file", help="telemetry snapshot JSON")
    obs_validate = obs_sub.add_parser(
        "validate", help="validate snapshot (and Chrome trace) files")
    obs_validate.add_argument("file", help="telemetry snapshot JSON")
    obs_validate.add_argument(
        "--trace", default=None, metavar="PATH",
        help="Chrome-trace JSON to check (default: the snapshot's "
             ".trace.json sibling when present)",
    )

    verify = subparsers.add_parser("verify", help="deadlock/livelock verification")
    verify.add_argument("--switches", type=int, default=32)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--rounds", type=int, default=2)

    hotspot = subparsers.add_parser("hotspot", help="root hot-spot probability (paper §5)")
    hotspot.add_argument("--switches", type=int, default=64)
    hotspot.add_argument("--seed", type=int, default=0)
    hotspot.add_argument("--destinations", type=int, nargs="+", default=[2, 8, 32, 63])
    hotspot.add_argument("--samples", type=int, default=100)

    return parser


def _cmd_topology(args) -> int:
    network = lattice_irregular_network(args.switches, seed=args.seed)
    print(format_table([summarize(network).as_dict()]))
    spam = SpamRouting.build(network)
    print(f"spanning tree root: switch {spam.tree.root} (height {spam.tree.height()})")
    print(f"channel labels: {spam.labeling.counts()}")
    if args.save:
        path = save_network(network, args.save)
        print(f"network written to {path}")
    return 0


def _make_telemetry(args) -> Telemetry | None:
    """A live recorder when ``--telemetry OUT`` was given, else ``None``."""
    return Telemetry(track="main") if getattr(args, "telemetry", None) else None


def _write_telemetry(telemetry: Telemetry, out: str) -> None:
    snapshot_path = write_snapshot(telemetry, out)
    trace_path = write_chrome_trace(telemetry, Path(out).with_suffix(".trace.json"))
    print(f"telemetry written to {snapshot_path} (trace: {trace_path})")


def _region_overrides(args) -> tuple[tuple[str, object], ...]:
    regions = getattr(args, "region_parallel", None)
    if not regions:
        return ()
    return (("region_parallel", True), ("region_count", regions))


def _cmd_figure2(args, scale) -> int:
    config = Figure2Config(
        network_sizes=tuple(args.network_sizes),
        destination_counts={
            size: default_destination_counts(size, points=6) for size in args.network_sizes
        },
        scale=scale,
        topology_seed=args.seed,
    )
    telemetry = _make_telemetry(args)
    result = run_figure2(config, telemetry=telemetry)
    print(series_side_by_side(result))
    if telemetry is not None:
        _write_telemetry(telemetry, args.telemetry)
    return 0


def _cmd_figure3(args, scale) -> int:
    config = Figure3Config(
        network_size=args.network_size,
        multicast_degrees=tuple(args.degrees),
        arrival_rates_per_us=tuple(args.rates),
        arrival=args.arrival,
        scale=scale,
        topology_seed=args.seed,
        sim_overrides=_region_overrides(args),
    )
    telemetry = _make_telemetry(args)
    result = run_figure3(config, telemetry=telemetry)
    print(series_side_by_side(result))
    if telemetry is not None:
        _write_telemetry(telemetry, args.telemetry)
    return 0


def _cmd_compare(args, scale) -> int:
    config = SoftwareComparisonConfig(
        network_size=args.network_size,
        destination_counts=tuple(args.destinations),
        scale=scale,
        topology_seed=args.seed,
        run_software_baseline=not args.bound_only,
    )
    telemetry = _make_telemetry(args)
    rows = run_software_comparison(config, telemetry=telemetry)
    print(format_table(rows))
    if telemetry is not None:
        _write_telemetry(telemetry, args.telemetry)
    return 0


def _cmd_merge(args) -> int:
    if not args.into:
        print("sweep merge: --into DIR is required", file=sys.stderr)
        return 2
    if not args.sources:
        print("sweep merge: at least one source store is required", file=sys.stderr)
        return 2
    for source in args.sources:
        status = ResultStore(source).manifest_status()
        if status is not None:
            print(f"  {source}: {status.describe()}")
    try:
        report = merge_stores(args.into, *args.sources)
    except (SweepError, ValueError) as exc:
        print(f"sweep merge: {exc}", file=sys.stderr)
        return 1
    print(f"sweep merge: {report.summary()}  (store: {args.into})")
    if report.missing:
        print(f"  still missing {len(report.missing)} expected point(s); "
              f"re-run the owing shard(s) and merge again")
    return 0


def _sweep_universe(experiment: str, args, scale):
    """The spec universe (and figure assembler) of one sweep experiment —
    shared by ``sweep <experiment>`` runs and the coordinator's ``serve``."""
    if experiment == "figure2":
        config = Figure2Config(
            network_sizes=tuple(args.network_sizes),
            destination_counts={
                size: default_destination_counts(size, points=6) for size in args.network_sizes
            },
            scale=scale,
            topology_seed=args.seed,
        )
        specs = figure2_specs(config)
        assemble = lambda points: figure2_result_from_points(config, points)  # noqa: E731
    elif experiment == "figure3":
        config = Figure3Config(
            network_size=args.network_size,
            multicast_degrees=tuple(args.degrees),
            arrival_rates_per_us=tuple(args.rates),
            arrival=args.arrival,
            scale=scale,
            topology_seed=args.seed,
            sim_overrides=_region_overrides(args),
        )
        specs = figure3_specs(config)
        assemble = lambda points: figure3_result_from_points(config, points)  # noqa: E731
    else:
        config = SoftwareComparisonConfig(
            network_size=args.network_size,
            destination_counts=tuple(args.destinations),
            scale=scale,
            topology_seed=args.seed,
            run_software_baseline=not args.bound_only,
        )
        specs = software_comparison_specs(config)
        assemble = None
    return specs, assemble


def _cmd_sweep_serve(args, scale) -> int:
    specs, _ = _sweep_universe(args.universe, args, scale)
    store = ResultStore(args.cache_dir)
    telemetry = Telemetry(track="coordinator") if getattr(args, "telemetry", None) else None
    coordinator = Coordinator(
        specs,
        store,
        lease_ttl=args.lease_ttl,
        lease_points=args.lease_points,
        telemetry=telemetry,
    )
    server = CoordinatorServer(coordinator, host=args.host, port=args.port)
    initial = coordinator.status()
    print(f"sweep serve: coordinating {initial.total} {args.universe} points "
          f"({initial.describe()})")
    print(f"sweep serve: listening on {server.url}  (store: {store.root}, "
          f"lease ttl {args.lease_ttl:g}s, {args.lease_points} points/lease)",
          flush=True)
    try:
        server.serve_until_done(exit_when_complete=args.exit_when_complete)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
    final = coordinator.status()
    print(f"sweep serve: {final.describe()}")
    if telemetry is not None:
        _write_telemetry(telemetry, args.telemetry)
    return 0 if final.complete else 1


def _require_url(args) -> str | None:
    if not args.url:
        print(f"sweep {args.experiment}: --url URL is required", file=sys.stderr)
        return None
    return args.url


def _cmd_sweep_work(args) -> int:
    url = _require_url(args)
    if url is None:
        return 2
    report = run_worker(
        url,
        worker_id=args.worker_id,
        max_points=args.max_points,
        poll_interval=args.poll_interval,
        max_leases=args.max_leases,
        fault=args.fault,
        announce=lambda line: print(f"  {line}", flush=True),
    )
    print(f"sweep work: {report.summary()}")
    return 0


def _cmd_sweep_lease(args) -> int:
    url = _require_url(args)
    if url is None:
        return 2
    response = WorkerClient(url, args.worker_id).lease(args.max_points)
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0


def _cmd_sweep_submit(args) -> int:
    url = _require_url(args)
    if url is None:
        return 2
    if not args.from_store:
        print("sweep submit: --from-store DIR is required", file=sys.stderr)
        return 2
    rows = [row for _key, row in ResultStore(args.from_store).iter_raw_rows()]
    outcome = WorkerClient(url).submit_rows(args.lease_id, rows)
    print(f"sweep submit: {outcome.get('accepted', 0)} accepted, "
          f"{outcome.get('foreign_salt', 0)} foreign-salt, "
          f"{outcome.get('unknown', 0)} unknown, "
          f"{len(outcome.get('requeued', ()))} requeued"
          + (", sweep complete" if outcome.get("complete") else ""))
    return 0


def _cmd_sweep_status(args) -> int:
    url = _require_url(args)
    if url is None:
        return 2
    status = WorkerClient(url).status()
    print(f"sweep status: {status['done']}/{status['total']} points done, "
          f"{status['leased']} leased, {status['queued']} queued"
          + (", complete" if status.get("complete") else ""))
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _cmd_sweep(args, scale) -> int:
    if args.experiment == "merge":
        return _cmd_merge(args)
    if args.sources or args.into:
        print("sweep: SRC.../--into are only valid with the 'merge' experiment",
              file=sys.stderr)
        return 2
    if args.experiment == "serve":
        return _cmd_sweep_serve(args, scale)
    if args.experiment == "work":
        return _cmd_sweep_work(args)
    if args.experiment == "lease":
        return _cmd_sweep_lease(args)
    if args.experiment == "submit":
        return _cmd_sweep_submit(args)
    if args.experiment == "status":
        return _cmd_sweep_status(args)
    shard = None
    if args.shard is not None:
        try:
            shard = parse_shard(args.shard)
        except ValueError as exc:
            print(f"sweep: {exc}", file=sys.stderr)
            return 2
    specs, assemble = _sweep_universe(args.experiment, args, scale)

    store = None if args.no_cache else ResultStore(args.cache_dir)

    def progress(done, total, spec):
        print(f"  [{done}/{total}] {spec.label} x={spec.x}", flush=True)

    telemetry = _make_telemetry(args)
    outcome = run_sweep(
        specs, store=store, workers=args.workers, resume=args.resume,
        batch_replications=args.batch_replications,
        progress=progress, shard=shard, telemetry=telemetry,
    )
    if assemble is not None:
        result = assemble(outcome.results)
        print(series_side_by_side(result))
        exported = result.as_dict()
    else:
        rows = [point.metrics_dict() for point in outcome.results]
        print(format_table(rows))
        exported = {"experiment": args.experiment, "rows": rows}
    shard_note = ""
    if shard is not None:
        coverage = sweep_coverage(specs, outcome.results)
        shard_note = f"  [shard {shard[0] + 1}/{shard[1]}: {coverage.summary()}]"
    print(f"sweep: {outcome.summary()}"
          + ("" if store is None else f"  (store: {store.root})")
          + shard_note)
    if args.export:
        with open(args.export, "w") as handle:
            json.dump(exported, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"exported to {args.export}")
    if telemetry is not None:
        _write_telemetry(telemetry, args.telemetry)
    return 0


def _cmd_obs(args) -> int:
    with open(args.file) as handle:
        document = json.load(handle)
    errors = validate_snapshot(document)
    if args.obs_command == "summarize":
        if errors:
            for error in errors:
                print(f"snapshot: {error}", file=sys.stderr)
            return 1
        tables = summarize_snapshot(document)
        if tables["tiers"]:
            print("probe time attribution (all tracks):")
            print(format_table([
                {
                    "tier": row["tier"],
                    "probes": row["probes"],
                    "total_ms": round(row["total_ms"], 3),
                    "mean_us": round(row["mean_us"], 2),
                    "share_%": round(100.0 * row["share"], 1),
                }
                for row in tables["tiers"]
            ]))
        else:
            print("no engine probe distributions in this snapshot")
        if tables["spans"]:
            print("span totals:")
            print(format_table([
                {
                    "span": row["span"],
                    "count": row["count"],
                    "total_ms": round(row["total_ms"], 3),
                }
                for row in tables["spans"]
            ]))
        return 0
    trace_path = args.trace
    if trace_path is None:
        sibling = Path(args.file).with_suffix(".trace.json")
        trace_path = str(sibling) if sibling.exists() else None
    trace_errors: list[str] = []
    if trace_path is not None:
        with open(trace_path) as handle:
            trace_errors = validate_chrome_trace(json.load(handle))
    for error in errors:
        print(f"snapshot: {error}", file=sys.stderr)
    for error in trace_errors:
        print(f"trace: {error}", file=sys.stderr)
    if errors or trace_errors:
        return 1
    print(f"obs validate: {args.file} ok"
          + ("" if trace_path is None else f"; {trace_path} ok"))
    return 0


def _cmd_verify(args) -> int:
    network = lattice_irregular_network(args.switches, seed=args.seed)
    spam = SpamRouting.build(network)
    cdg = build_spam_cdg(spam)
    print(f"channel dependency graph: {cdg.num_dependencies} dependencies, "
          f"acyclic={cdg.is_acyclic()}")
    reach = check_unicast_reachability(spam, sample_pairs=200)
    print(f"reachability: {reach.pairs_checked} pairs checked, failures={len(reach.failures)}")
    results = stress_test_deadlock_freedom(network, spam, rounds=args.rounds)
    delivered = sum(result.messages_completed for result in results)
    submitted = sum(result.messages_submitted for result in results)
    deadlocks = sum(1 for result in results if result.deadlocked)
    print(f"stress simulation: {delivered}/{submitted} messages delivered, "
          f"{deadlocks} deadlocked rounds")
    ok = cdg.is_acyclic() and reach.ok and deadlocks == 0 and delivered == submitted
    print("VERIFICATION PASSED" if ok else "VERIFICATION FAILED")
    return 0 if ok else 1


def _cmd_hotspot(args) -> int:
    network = lattice_irregular_network(args.switches, seed=args.seed)
    spam = SpamRouting.build(network)
    rows = []
    for count in args.destinations:
        probability = root_traversal_probability(
            spam, num_destinations=count, samples=args.samples, seed=args.seed
        )
        rows.append({"destinations": count, "P(LCA is root)": round(probability, 3)})
    print(format_table(rows))
    print("(the paper's §5 hot-spot concern: this probability grows with the "
          "destination count)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    # argparse cannot place a SRC... positional after "--into DIR" once the
    # experiment positional is consumed ("sweep merge --into DIR SRC..."),
    # so merge sources left unconsumed are collected here.
    args, extras = parser.parse_known_args(argv)
    if extras:
        if (
            args.command == "sweep"
            and getattr(args, "experiment", None) == "merge"
            and not any(extra.startswith("-") for extra in extras)
        ):
            args.sources = list(args.sources) + extras
        else:
            parser.error(f"unrecognized arguments: {' '.join(extras)}")
    scale = SCALES[args.scale]
    if args.command == "topology":
        return _cmd_topology(args)
    if args.command == "figure2":
        return _cmd_figure2(args, scale)
    if args.command == "figure3":
        return _cmd_figure3(args, scale)
    if args.command == "compare":
        return _cmd_compare(args, scale)
    if args.command == "sweep":
        return _cmd_sweep(args, scale)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "hotspot":
        return _cmd_hotspot(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
