"""repro — a reproduction of "Tree-Based Multicasting in Wormhole-Routed
Irregular Topologies" (Libeskind-Hadas, Mazzoni, Rajagopalan; IPPS 1998).

The package implements the paper's contribution — SPAM, the Single Phase
Adaptive Multicast routing algorithm — together with every substrate its
evaluation depends on: the switch-based irregular network model, the
up*/down* spanning-tree partition, a flit-level event-driven wormhole
simulator with output-channel request queues and asynchronous replication,
traffic generators, baselines (classic up*/down* unicast and unicast-based
software multicast), verification utilities for the deadlock- and
livelock-freedom theorems, and experiment drivers regenerating every figure
of the paper's evaluation.

Quick start
-----------
>>> from repro import SpamRouting, WormholeSimulator, lattice_irregular_network
>>> network = lattice_irregular_network(64, seed=1)
>>> spam = SpamRouting.build(network)
>>> sim = WormholeSimulator(network, spam)
>>> message = sim.submit_broadcast(network.processors()[0])
>>> _ = sim.run()
>>> message.is_complete
True

Sub-packages
------------
``repro.topology``
    Network model and topology generators (irregular lattice, mesh, torus,
    hypercube, the paper's Figure 1).
``repro.spanning``
    Spanning trees, up/down channel labelling, ancestor relations, root
    selection.
``repro.core``
    SPAM itself: routing function, selection functions, multicast plans,
    destination partitioning.
``repro.routing``
    Baselines: classic up*/down* unicast, unicast-based software multicast,
    naive minimal routing (deadlock demonstration), routing tables.
``repro.simulator``
    The flit-level wormhole simulator.
``repro.traffic``
    Arrival processes, destination patterns, workload builders.
``repro.analysis``
    Statistics, sweep containers, software-multicast bounds, report tables.
``repro.verification``
    Channel-dependency-graph and reachability checks, stress harnesses.
``repro.sweeps``
    Sweep orchestration: hashable point specs, a content-addressed result
    store and a resumable parallel scheduler shared by every experiment.
``repro.experiments``
    Drivers regenerating Figures 2 and 3, the software-multicast comparison
    and the ablation studies (all routed through ``repro.sweeps``).
"""

from .core.multicast import MulticastPlan, build_multicast_plan
from .core.selection import DistanceToTargetSelection, make_selection
from .core.spam import SpamRouting
from .errors import (
    ConfigurationError,
    DeadlockError,
    LivelockError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from .routing.unicast_multicast import UnicastMulticastScheduler, minimum_phases
from .routing.updown import UpDownRouting
from .simulator.config import PAPER_CONFIG, SimulationConfig
from .simulator.engine import WormholeSimulator
from .simulator.message import Message
from .simulator.stats import SimulationStats
from .spanning.tree import bfs_spanning_tree
from .sweeps import ResultStore, SweepPointResult, SweepPointSpec, run_sweep
from .topology.examples import figure1_network
from .topology.irregular import lattice_irregular_network, random_irregular_network
from .topology.network import Network
from .topology.regular import hypercube_network, mesh_network, torus_network
from .traffic.workload import mixed_traffic_workload, single_multicast_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Core algorithm
    "SpamRouting",
    "MulticastPlan",
    "build_multicast_plan",
    "DistanceToTargetSelection",
    "make_selection",
    # Topology
    "Network",
    "lattice_irregular_network",
    "random_irregular_network",
    "mesh_network",
    "torus_network",
    "hypercube_network",
    "figure1_network",
    "bfs_spanning_tree",
    # Simulation
    "WormholeSimulator",
    "SimulationConfig",
    "PAPER_CONFIG",
    "Message",
    "SimulationStats",
    # Baselines
    "UpDownRouting",
    "UnicastMulticastScheduler",
    "minimum_phases",
    # Traffic
    "single_multicast_workload",
    "mixed_traffic_workload",
    # Sweep orchestration
    "SweepPointSpec",
    "SweepPointResult",
    "run_sweep",
    "ResultStore",
    # Errors
    "ReproError",
    "TopologyError",
    "RoutingError",
    "SimulationError",
    "DeadlockError",
    "LivelockError",
    "ConfigurationError",
    "WorkloadError",
]
