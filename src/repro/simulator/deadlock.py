"""Deadlock diagnosis.

SPAM is provably deadlock-free (paper Theorem 1), but the simulator also
hosts baseline algorithms and deliberately broken configurations (in tests),
so it must be able to *detect and explain* a deadlock rather than silently
hanging.  A deadlock manifests as the event queue draining while messages
are still undelivered: every remaining worm is waiting for a buffer or a
channel that can only be freed by another waiting worm.

:func:`diagnose` builds the message-level wait-for graph from the engine
state and reports the cycles it finds, which is also what the
deadlock-injection tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

__all__ = ["DeadlockReport", "diagnose"]


@dataclass
class DeadlockReport:
    """Result of a deadlock diagnosis.

    Attributes
    ----------
    stalled_messages:
        Message ids that were submitted but never completed.
    waiting_segments:
        Human-readable description of every worm segment that is stuck
        waiting for output channels.
    wait_for_edges:
        Edges ``(waiting_mid, holding_mid)`` of the message wait-for graph.
    cycles:
        Simple cycles found in the wait-for graph; a non-empty list is the
        signature of a true circular-wait deadlock (as opposed to, say, a
        workload that simply stopped injecting).
    """

    stalled_messages: list[int] = field(default_factory=list)
    waiting_segments: list[str] = field(default_factory=list)
    wait_for_edges: list[tuple[int, int]] = field(default_factory=list)
    cycles: list[list[int]] = field(default_factory=list)

    @property
    def has_circular_wait(self) -> bool:
        """``True`` when the wait-for graph contains a cycle."""
        return bool(self.cycles)

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"{len(self.stalled_messages)} message(s) did not complete: "
            f"{sorted(self.stalled_messages)}",
        ]
        lines.extend(self.waiting_segments)
        if self.cycles:
            lines.append("circular waits:")
            for cycle in self.cycles:
                lines.append("  " + " -> ".join(str(mid) for mid in cycle + [cycle[0]]))
        else:
            lines.append("no circular wait found (messages stalled for another reason)")
        return "\n".join(lines)


def diagnose(engine) -> DeadlockReport:
    """Build a :class:`DeadlockReport` from a stalled engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.simulator.engine.WormholeSimulator` whose event
        queue has drained with undelivered messages.
    """
    report = DeadlockReport()
    report.stalled_messages = [
        message.mid for message in engine.messages.values() if not message.is_complete
    ]

    graph = nx.DiGraph()
    for segment in engine.active_segments():
        blocking = segment.waiting_on()
        if not blocking:
            continue
        waiting_mid = segment.message.mid
        for link in blocking:
            holder = link.reserved_by
            queue_ahead = [
                s.message.mid for s in link.ocrq.waiting() if s is not segment
            ]
            description = (
                f"message {waiting_mid} waits at switch {segment.switch} for channel "
                f"{link.channel.src}->{link.channel.dst}"
                f" (held by {holder}, queued behind {queue_ahead})"
            )
            report.waiting_segments.append(description)
            if holder is not None and holder != waiting_mid:
                graph.add_edge(waiting_mid, holder)
                report.wait_for_edges.append((waiting_mid, holder))
            for ahead in queue_ahead:
                if ahead != waiting_mid:
                    graph.add_edge(waiting_mid, ahead)
                    report.wait_for_edges.append((waiting_mid, ahead))

    report.cycles = [list(cycle) for cycle in nx.simple_cycles(graph)]
    return report
