"""Run-time state of a unidirectional channel (a *link*).

Each link owns:

* an **output buffer** at the transmitting router (written by the worm
  segment that has acquired the channel),
* the **wire**, which carries at most one flit per ``channel_latency_ns``,
* an **input buffer** at the receiving router (drained by the worm segment
  at that router, or consumed immediately when the receiver is a processor),
* an **OCRQ** holding the messages waiting to acquire the channel, and
* the reservation (``reserved_by``) of the message currently holding it.

The link performs no scheduling itself; the engine drives transfers and
notifies the affected parties when buffers change.
"""

from __future__ import annotations

from ..topology.channels import Channel, LinkRole
from .buffers import FlitBuffer
from .ocrq import OutputChannelRequestQueue

__all__ = ["LinkState"]


class LinkState:
    """Mutable simulation state of one unidirectional channel."""

    __slots__ = (
        "channel",
        "out_buffer",
        "in_buffer",
        "latency_ns",
        "ocrq",
        "reserved_by",
        "busy",
        "feeder",
        "sink_segment",
        "data_flits_carried",
        "bubble_flits_carried",
        "busy_since_ns",
        "busy_total_ns",
        "sink_is_processor",
    )

    def __init__(
        self,
        channel: Channel,
        latency_ns: int,
        output_depth: int,
        input_depth: int,
    ) -> None:
        self.channel = channel
        self.out_buffer = FlitBuffer(output_depth)
        self.in_buffer = FlitBuffer(input_depth)
        self.latency_ns = latency_ns
        self.ocrq = OutputChannelRequestQueue()
        #: Message id currently holding the channel, or ``None``.
        self.reserved_by: int | None = None
        #: ``True`` while a flit is on the wire.
        self.busy = False
        #: The segment (source NI or worm segment) currently writing into the
        #: output buffer; notified when output-buffer space frees up.
        self.feeder = None
        #: The worm segment currently draining the input buffer at the
        #: receiving switch (``None`` at processors and before the header
        #: has been processed).
        self.sink_segment = None
        # Statistics (only meaningful when channel stats are enabled).
        self.data_flits_carried = 0
        self.bubble_flits_carried = 0
        self.busy_since_ns: int | None = None
        self.busy_total_ns = 0
        #: ``True`` when the receiving end is a processor (consumption
        #: channel); cached as a plain attribute for the engine's hot path.
        self.sink_is_processor = channel.role is LinkRole.CONSUMPTION

    # ------------------------------------------------------------------
    @property
    def cid(self) -> int:
        """Channel id."""
        return self.channel.cid

    @property
    def is_consumption(self) -> bool:
        """``True`` for switch-to-processor channels."""
        return self.channel.role is LinkRole.CONSUMPTION

    @property
    def is_injection(self) -> bool:
        """``True`` for processor-to-switch channels."""
        return self.channel.role is LinkRole.INJECTION

    @property
    def is_free(self) -> bool:
        """``True`` when no message holds the channel."""
        return self.reserved_by is None

    # ------------------------------------------------------------------
    def mark_utilisation_end(self, now_ns: int) -> None:
        """End a busy period (channel-statistics mode only)."""
        if self.busy_since_ns is not None:
            self.busy_total_ns += now_ns - self.busy_since_ns
            self.busy_since_ns = None

    def fast_forward(self, k: int, advance_ns: int, bubble: bool) -> None:
        """Advance the utilisation counters by ``k`` coalesced steady-state
        ticks (``advance_ns == k * latency_ns``): the wire carried one flit of
        the same kind per tick and stayed continuously busy, so the open busy
        period simply slides forward with the clock (channel-statistics mode
        only; the engine's fast path is the single caller, and only for
        single-period batches — multi-period batches advance each link by
        per-compound-window deltas measured during the reference execution,
        because links behind a bottleneck carry fewer flits per compound
        period and are not continuously busy)."""
        if bubble:
            self.bubble_flits_carried += k
        else:
            self.data_flits_carried += k
        self.busy_total_ns += advance_ns
        if self.busy_since_ns is not None:
            self.busy_since_ns += advance_ns

    def busy_ns_until(self, now_ns: int) -> int:
        """Total busy time up to ``now_ns``, including a still-open period.

        Bounded runs stop while flits are mid-wire; reporting must flush the
        open period up to the window boundary *without* closing it, so that
        resuming the simulation keeps accumulating correctly.
        """
        total = self.busy_total_ns
        if self.busy_since_ns is not None and now_ns > self.busy_since_ns:
            total += now_ns - self.busy_since_ns
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinkState(cid={self.cid}, {self.channel.src}->{self.channel.dst}, "
            f"reserved_by={self.reserved_by}, out={len(self.out_buffer)}, "
            f"in={len(self.in_buffer)}, busy={self.busy})"
        )
