"""Run-time state of a unidirectional channel (a *link*).

Each link owns:

* an **output buffer** at the transmitting router (written by the worm
  segment that has acquired the channel),
* the **wire**, which carries at most one flit per ``channel_latency_ns``,
* an **input buffer** at the receiving router (drained by the worm segment
  at that router, or consumed immediately when the receiver is a processor),
* an **OCRQ** holding the messages waiting to acquire the channel, and
* the reservation (``reserved_by``) of the message currently holding it.

The link performs no scheduling itself; the engine drives transfers and
notifies the affected parties when buffers change.
"""

from __future__ import annotations

from ..topology.channels import Channel, LinkRole
from .buffers import FlitBuffer
from .ocrq import OutputChannelRequestQueue

__all__ = ["LinkState"]


class LinkState:
    """Mutable simulation state of one unidirectional channel."""

    __slots__ = (
        "channel",
        "out_buffer",
        "in_buffer",
        "latency_ns",
        "ocrq",
        "reserved_by",
        "busy",
        "feeder",
        "sink_segment",
        "data_flits_carried",
        "bubble_flits_carried",
        "busy_since_ns",
        "busy_total_ns",
    )

    def __init__(
        self,
        channel: Channel,
        latency_ns: int,
        output_depth: int,
        input_depth: int,
    ) -> None:
        self.channel = channel
        self.out_buffer = FlitBuffer(output_depth)
        self.in_buffer = FlitBuffer(input_depth)
        self.latency_ns = latency_ns
        self.ocrq = OutputChannelRequestQueue()
        #: Message id currently holding the channel, or ``None``.
        self.reserved_by: int | None = None
        #: ``True`` while a flit is on the wire.
        self.busy = False
        #: The segment (source NI or worm segment) currently writing into the
        #: output buffer; notified when output-buffer space frees up.
        self.feeder = None
        #: The worm segment currently draining the input buffer at the
        #: receiving switch (``None`` at processors and before the header
        #: has been processed).
        self.sink_segment = None
        # Statistics (only meaningful when channel stats are enabled).
        self.data_flits_carried = 0
        self.bubble_flits_carried = 0
        self.busy_since_ns: int | None = None
        self.busy_total_ns = 0

    # ------------------------------------------------------------------
    @property
    def cid(self) -> int:
        """Channel id."""
        return self.channel.cid

    @property
    def is_consumption(self) -> bool:
        """``True`` for switch-to-processor channels."""
        return self.channel.role is LinkRole.CONSUMPTION

    @property
    def is_injection(self) -> bool:
        """``True`` for processor-to-switch channels."""
        return self.channel.role is LinkRole.INJECTION

    @property
    def is_free(self) -> bool:
        """``True`` when no message holds the channel."""
        return self.reserved_by is None

    def can_start_transfer(self) -> bool:
        """A flit can leave the output buffer onto the wire right now."""
        return (not self.busy) and (not self.out_buffer.is_empty) and (
            not self.in_buffer.is_full
        )

    # ------------------------------------------------------------------
    def mark_utilisation_start(self, now_ns: int) -> None:
        """Start accounting a busy period (channel-statistics mode only)."""
        if self.busy_since_ns is None:
            self.busy_since_ns = now_ns

    def mark_utilisation_end(self, now_ns: int) -> None:
        """End a busy period (channel-statistics mode only)."""
        if self.busy_since_ns is not None:
            self.busy_total_ns += now_ns - self.busy_since_ns
            self.busy_since_ns = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinkState(cid={self.cid}, {self.channel.src}->{self.channel.dst}, "
            f"reserved_by={self.reserved_by}, out={len(self.out_buffer)}, "
            f"in={len(self.in_buffer)}, busy={self.busy})"
        )
