"""Discrete-event queue.

The simulator is event driven: every state change is caused by a callback
scheduled at an integer nanosecond timestamp.  Events at the same timestamp
are processed in scheduling order (FIFO), which both makes runs perfectly
reproducible and provides the atomicity the OCRQ protocol relies on (a
message enqueues all of its channel requests within a single event).
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..errors import SimulationError

__all__ = ["EventQueue"]


class EventQueue:
    """A binary-heap priority queue of ``(time, seq, callback)`` events."""

    __slots__ = ("_heap", "_seq", "now")

    def __init__(self, start_ns: int = 0) -> None:
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        #: Current simulation time (time of the most recently popped event).
        self.now = start_ns

    def schedule(self, time_ns: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at ``time_ns``.

        Scheduling in the past is a simulator bug and raises immediately
        rather than silently reordering history.
        """
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule an event at {time_ns} ns, current time is {self.now} ns"
            )
        heapq.heappush(self._heap, (time_ns, self._seq, callback))
        self._seq += 1

    def schedule_after(self, delay_ns: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay_ns`` nanoseconds from now."""
        self.schedule(self.now + delay_ns, callback)

    def pop(self) -> tuple[int, Callable[[], None]]:
        """Pop the earliest event and advance the clock to its timestamp."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        time_ns, _seq, callback = heapq.heappop(self._heap)
        self.now = time_ns
        return time_ns, callback

    @property
    def is_empty(self) -> bool:
        """``True`` when no events are pending."""
        return not self._heap

    def __len__(self) -> int:
        return len(self._heap)

    def next_time(self) -> int | None:
        """Timestamp of the earliest pending event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None
