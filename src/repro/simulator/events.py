"""Discrete-event queue.

The simulator is event driven: every state change is caused by a callback
scheduled at an integer nanosecond timestamp.  Events at the same timestamp
are processed in scheduling order (FIFO), which both makes runs perfectly
reproducible and provides the atomicity the OCRQ protocol relies on (a
message enqueues all of its channel requests within a single event).

Entries come in two kinds, distinguished by an integer tag so the engine
never allocates a closure per flit transfer:

* **generic events** (``kind == 0``) carry an arbitrary zero-argument
  callback, exactly like the original ``(time, seq, callback)`` design;
* **transfer events** (``kind == 1``) carry the :class:`~repro.simulator.links.LinkState`
  whose in-flight flit completes at the timestamp.  The engine dispatches
  these directly to ``WormholeSimulator._complete_transfer`` — no
  ``functools.partial`` is built on the hot path.

The queue additionally tracks how many pending entries are transfer events
(``transfer_pending``) and maintains the *earliest generic deadline* — a
min-heap of the pending generic entries' timestamps (``next_generic_time``).
When the *earliest* pending entry is a transfer the simulator may be in a
steady-state streaming phase; the engine's fast path
(``WormholeSimulator._coalesce_tick``) probes that case, consults the
earliest generic deadline in O(1) to bail out of windows whose batches a
nearby generic event would cut below the worthwhile minimum (the common case
during churn phases; the bail is counted at most once per probe), and uses
the tag in each entry to bound surviving batches strictly before the next
generic event.
After a verified batch the engine retimes the surviving transfer entries in
bulk with :meth:`EventQueue.shift_transfers` by a whole number of verified
periods — the compound period ``k × channel period`` for a multi-period
batch, of which a synchronized single-deadline window is the simplest
special case; every entry keeps its congruence class modulo that period.
The coalescing contract this upholds is specified in ``docs/fast_path.md``.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..errors import SimulationError

__all__ = ["EventQueue"]

#: Entry tags (third tuple field; never compared because ``seq`` is unique).
_GENERIC = 0
_TRANSFER = 1


class EventQueue:
    """A binary-heap priority queue of ``(time, seq, kind, payload)`` events."""

    __slots__ = ("_heap", "_seq", "_transfer_pending", "_generic_times", "now")

    def __init__(self, start_ns: int = 0) -> None:
        self._heap: list[tuple[int, int, int, object]] = []
        self._seq = 0
        self._transfer_pending = 0
        # Min-heap of pending generic entries' timestamps.  Because the main
        # heap pops in global (time, seq) order, generic entries leave in
        # nondecreasing-time order too, so popping this heap alongside keeps
        # it exact — giving the engine's fast path the earliest generic
        # deadline in O(1) without scanning the heap.
        self._generic_times: list[int] = []
        #: Current simulation time (time of the most recently popped event).
        self.now = start_ns

    def schedule(self, time_ns: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at ``time_ns``.

        Scheduling in the past is a simulator bug and raises immediately
        rather than silently reordering history.
        """
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule an event at {time_ns} ns, current time is {self.now} ns"
            )
        heapq.heappush(self._heap, (time_ns, self._seq, _GENERIC, callback))
        heapq.heappush(self._generic_times, time_ns)
        self._seq += 1

    def schedule_after(self, delay_ns: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay_ns`` nanoseconds from now."""
        self.schedule(self.now + delay_ns, callback)

    def schedule_transfer(self, delay_ns: int, link) -> None:
        """Schedule the completion of a flit transfer on ``link``.

        Stored as a tagged entry carrying the link itself, so completing a
        transfer costs no closure allocation and the engine's fast path can
        inspect pending transfers without executing them.
        """
        time_ns = self.now + delay_ns
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule an event at {time_ns} ns, current time is {self.now} ns"
            )
        heapq.heappush(self._heap, (time_ns, self._seq, _TRANSFER, link))
        self._seq += 1
        self._transfer_pending += 1

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pop(self) -> tuple[int, Callable[[], None]]:
        """Pop the earliest event and advance the clock to its timestamp.

        Compatibility wrapper returning ``(time, callback)``; only valid for
        generic entries (the engine drains transfer entries through
        :meth:`pop_entry`).  Refusal happens *before* popping, so a misuse
        leaves the queue intact.
        """
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        if self._heap[0][2] == _TRANSFER:
            raise SimulationError("pop() cannot return a transfer entry; use pop_entry()")
        time_ns, _seq, _kind, payload = self.pop_entry()
        return time_ns, payload  # type: ignore[return-value]

    def pop_entry(self) -> tuple[int, int, int, object]:
        """Pop the earliest entry ``(time, seq, kind, payload)`` and advance
        the clock to its timestamp."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        entry = heapq.heappop(self._heap)
        self.now = entry[0]
        if entry[2] == _TRANSFER:
            self._transfer_pending -= 1
        else:
            heapq.heappop(self._generic_times)
        return entry

    # ------------------------------------------------------------------
    # Introspection used by the engine's fast path
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """``True`` when no events are pending."""
        return not self._heap

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def transfer_pending(self) -> int:
        """Number of pending transfer entries."""
        return self._transfer_pending

    def next_time(self) -> int | None:
        """Timestamp of the earliest pending event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def next_generic_time(self) -> int | None:
        """Deadline of the earliest pending *generic* event, or ``None``.

        Maintained incrementally (O(1) to read), so the engine's fast path
        can reject windows bounded by a nearby generic event — the dominant
        probe-failure mode during churn phases — without scanning the heap.
        """
        return self._generic_times[0] if self._generic_times else None

    # ------------------------------------------------------------------
    # Fast-path mutation
    # ------------------------------------------------------------------
    def advance_to(self, time_ns: int) -> None:
        """Advance the clock to ``time_ns`` without executing anything.

        Used by bounded runs to land exactly on the window boundary; never
        moves the clock backwards and never past a pending event.
        """
        if time_ns <= self.now:
            return
        head = self._heap[0][0] if self._heap else None
        if head is not None and head < time_ns:
            raise SimulationError(
                f"cannot advance the clock to {time_ns} ns past a pending event at {head} ns"
            )
        self.now = time_ns

    def shift_transfers(self, now_ns: int, delta_ns: int) -> None:
        """Batch-advance: move the clock to ``now_ns`` and push every pending
        transfer deadline ``delta_ns`` into the future, preserving both each
        entry's congruence class (deadline mod any period dividing
        ``delta_ns``) and the relative (time, FIFO) order of the transfers.
        Generic entries are untouched.

        The engine calls this after arithmetically replaying ``m`` identical
        steady-state windows of a verified period ``P`` (``delta_ns = m·P``;
        ``P`` is the channel period for the single-period patterns and the
        compound period ``k × channel period`` for multi-period batches):
        transfers that were pending at staggered deadlines ``d`` — possibly
        spread across the ``k`` sub-windows of a compound period — must land
        at ``d + m·P``, exactly where the per-flit execution would have
        rescheduled them (a synchronized single-period window is simply the
        special case where every deadline is the same).
        """
        if delta_ns < 0 or now_ns < self.now:
            raise SimulationError("transfer shift would move time backwards")
        entries = sorted(self._heap)
        rebased = []
        # Generic entries keep their deadlines and receive the smaller fresh
        # sequence numbers: any generic event still pending was scheduled
        # before the transfers were (re)scheduled, so on a timestamp tie the
        # per-flit execution would run it first.
        for entry in entries:
            if entry[2] != _TRANSFER:
                if entry[0] < now_ns:
                    raise SimulationError(
                        "transfer shift would overtake a pending generic event"
                    )
                rebased.append((entry[0], self._seq, entry[2], entry[3]))
                self._seq += 1
        for entry in entries:
            if entry[2] == _TRANSFER:
                rebased.append((entry[0] + delta_ns, self._seq, _TRANSFER, entry[3]))
                self._seq += 1
        rebased.sort()
        # In-place so aliases of the heap list (the engine's run loop holds
        # one) stay valid; a sorted list is a valid heap.
        self._heap[:] = rebased
        self.now = now_ns
