"""Output channel request queues (OCRQs).

When the head of a worm enters a router it enqueues a request in the OCRQ of
every output channel it requires; a request for a *set* of output channels
is atomic (all of a message's requests are enqueued before any other message
can enqueue at that router — trivially true in a discrete-event simulator
because decision handling is not interleaved).  The message then waits until
all of its requests are at the heads of their OCRQs and all of the requested
channels are free, at which point it acquires all of them at once
(paper §3.2).

The FIFO order of the OCRQ is what makes channel acquisition starvation-free
(Theorem 2): a request at the head of a queue cannot be overtaken.

Requests are stored as references to the waiting *worm segment* (or any
object exposing ``message`` and ``try_acquire``), so that releasing a channel
can directly re-evaluate the next waiter without a reverse lookup.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..errors import SimulationError

__all__ = ["OutputChannelRequestQueue"]


class OutputChannelRequestQueue:
    """FIFO queue of worm segments waiting for one output channel."""

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: deque[Any] = deque()

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """``True`` when no request is queued."""
        return not self._queue

    def __len__(self) -> int:
        return len(self._queue)

    def head(self):
        """The segment at the head of the queue, or ``None`` when empty."""
        return self._queue[0] if self._queue else None

    def enqueue(self, requester) -> None:
        """Append a request for ``requester``.

        A segment never requests the same channel twice, so a duplicate
        enqueue indicates a simulator bug and raises.
        """
        if any(existing is requester for existing in self._queue):
            raise SimulationError("segment already queued for this channel")
        self._queue.append(requester)

    def pop_head(self, requester) -> None:
        """Remove the head request, which must be ``requester``."""
        if not self._queue or self._queue[0] is not requester:
            raise SimulationError("segment tried to pop an OCRQ it does not head")
        self._queue.popleft()

    def remove(self, requester) -> None:
        """Remove a queued request regardless of position (diagnostics/tests
        only; the normal protocol never abandons a request)."""
        for index, existing in enumerate(self._queue):
            if existing is requester:
                del self._queue[index]
                return
        raise SimulationError("segment is not queued")

    def waiting(self) -> tuple:
        """Snapshot of the queued segments, head first."""
        return tuple(self._queue)

    def waiting_message_ids(self) -> tuple[int, ...]:
        """Message ids of the queued segments, head first (for diagnostics)."""
        return tuple(segment.message.mid for segment in self._queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OCRQ({list(self.waiting_message_ids())})"
