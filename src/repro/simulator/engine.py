"""The flit-level wormhole simulation engine.

:class:`WormholeSimulator` wires a network, a routing algorithm and a
configuration into an event-driven flit-level simulation:

* processors submit messages through their :class:`~repro.simulator.router.SourceInterface`
  (startup latency, serialised sends, flit injection);
* switches host :class:`~repro.simulator.router.WormSegment` state machines
  (router setup latency, routing decision, OCRQ requests, atomic channel
  acquisition, asynchronous flit replication with bubbles);
* links carry one flit per ``channel_latency_ns`` between output and input
  buffers;
* processors consume flits immediately and record per-destination delivery
  times.

The engine is deliberately policy-free: all routing behaviour comes from the
:class:`~repro.core.interface.RoutingAlgorithm` passed in, which is how SPAM,
the up*/down* baseline and deliberately broken algorithms (for the deadlock
tests) all run on the same substrate.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Iterable, Sequence

from ..core.interface import RoutingAlgorithm
from ..core.multicast import normalize_destinations
from ..errors import ConfigurationError, DeadlockError, LivelockError, SimulationError
from ..topology.network import Network
from .config import SimulationConfig
from .deadlock import DeadlockReport, diagnose
from .events import EventQueue
from .flit import Flit
from .links import LinkState
from .message import Message
from .router import SourceInterface, WormSegment
from .stats import ChannelRecord, SimulationStats
from .trace import Trace

__all__ = ["WormholeSimulator"]

#: Signature of a per-destination delivery callback.
DeliveryCallback = Callable[[Message, int, int], None]
#: Signature of a message-completion callback.
CompletionCallback = Callable[[Message], None]


class WormholeSimulator:
    """Event-driven flit-level wormhole simulator.

    Parameters
    ----------
    network:
        The switch-based network to simulate.
    routing:
        The routing algorithm deciding output channels for every header.
    config:
        Latency / sizing parameters; defaults to the paper's configuration.

    Example
    -------
    >>> from repro.topology import figure1_network
    >>> from repro.core import SpamRouting
    >>> fixture = figure1_network()
    >>> spam = SpamRouting.build(fixture.network, root=fixture.root)
    >>> sim = WormholeSimulator(fixture.network, spam)
    >>> message = sim.submit_message(fixture.source, fixture.destinations)
    >>> stats = sim.run()
    >>> message.is_complete
    True
    """

    def __init__(
        self,
        network: Network,
        routing: RoutingAlgorithm,
        config: SimulationConfig | None = None,
    ) -> None:
        network.require_connected()
        self.network = network
        self.routing = routing
        self.config = config or SimulationConfig()
        self.events = EventQueue()
        self.links: list[LinkState] = [
            LinkState(
                channel,
                latency_ns=self.config.channel_latency_ns,
                output_depth=self.config.output_buffer_depth,
                input_depth=self.config.input_buffer_depth,
            )
            for channel in network.channels()
        ]
        self.sources: dict[int, SourceInterface] = {}
        for processor in network.processors():
            injection = self.links[network.injection_channel(processor).cid]
            self.sources[processor] = SourceInterface(self, processor, injection)
        self.messages: dict[int, Message] = {}
        self.stats = SimulationStats()
        self.trace: Trace | None = Trace() if self.config.trace else None
        self._segments: set[WormSegment] = set()
        self._next_mid = 0
        self.delivery_callbacks: list[DeliveryCallback] = []
        self.completion_callbacks: list[CompletionCallback] = []

    # ------------------------------------------------------------------
    # Time and scheduling helpers
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self.events.now

    def schedule_after(self, delay_ns: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay_ns`` from the current time."""
        self.events.schedule_after(delay_ns, callback)

    def trace_event(self, kind: str, **fields) -> None:
        """Record a trace event (no-op unless tracing is enabled)."""
        if self.trace is not None:
            self.trace.record(self.now, kind, **fields)

    # ------------------------------------------------------------------
    # Workload interface
    # ------------------------------------------------------------------
    def submit_message(
        self,
        source: int,
        destinations: Sequence[int] | Iterable[int],
        at_ns: int | None = None,
        length_flits: int | None = None,
        metadata: dict | None = None,
    ) -> Message:
        """Create a message and hand it to the source processor at ``at_ns``.

        Parameters
        ----------
        source:
            Source processor node id.
        destinations:
            One or more destination processor node ids.
        at_ns:
            Arrival time of the send request at the source network interface
            (defaults to the current simulation time).
        length_flits:
            Worm length; defaults to the configuration's message length.
        metadata:
            Free-form annotations copied onto the message.
        """
        if not self.network.is_processor(source):
            raise ConfigurationError(f"source {source} is not a processor")
        dests = normalize_destinations(self.network, source, destinations)
        self.routing.validate_destinations(_DestinationView(source, dests))
        at = self.now if at_ns is None else max(at_ns, self.now)
        message = Message(
            mid=self._next_mid,
            source=source,
            destinations=dests,
            length_flits=length_flits or self.config.message_length_flits,
            created_ns=at,
        )
        self._next_mid += 1
        if metadata:
            message.metadata.update(metadata)
        self.routing.prepare(message)
        self.messages[message.mid] = message
        self.stats.messages_submitted += 1
        self.events.schedule(at, partial(self.sources[source].submit, message))
        self.trace_event("submit", message=message.mid, source=source, destinations=dests)
        return message

    def submit_broadcast(self, source: int, at_ns: int | None = None) -> Message:
        """Convenience wrapper: multicast from ``source`` to every other processor."""
        destinations = [p for p in self.network.processors() if p != source]
        return self.submit_message(source, destinations, at_ns=at_ns)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until_ns: int | None = None) -> SimulationStats:
        """Process events until the queue drains (or ``until_ns`` is reached).

        When the queue drains while messages are still incomplete and
        deadlock detection is enabled, a :class:`~repro.errors.DeadlockError`
        is raised carrying a :class:`~repro.simulator.deadlock.DeadlockReport`.
        """
        events = self.events
        while not events.is_empty:
            next_time = events.next_time()
            if until_ns is not None and next_time is not None and next_time > until_ns:
                break
            _, callback = events.pop()
            callback()
        self.stats.end_time_ns = self.now
        if until_ns is None and self.config.deadlock_detection:
            incomplete = [m for m in self.messages.values() if not m.is_complete]
            if incomplete:
                report = diagnose(self)
                error = DeadlockError(
                    "simulation stalled with undelivered messages\n" + report.describe()
                )
                error.report = report  # type: ignore[attr-defined]
                raise error
        if self.config.collect_channel_stats:
            self._finalise_channel_stats()
        return self.stats

    def run_for(self, duration_ns: int) -> SimulationStats:
        """Run until ``now + duration_ns`` (partial runs skip deadlock checks)."""
        return self.run(until_ns=self.now + duration_ns)

    # ------------------------------------------------------------------
    # Link machinery
    # ------------------------------------------------------------------
    def try_start_transfer(self, link: LinkState) -> None:
        """Put the head flit of ``link``'s output buffer on the wire if possible."""
        if not link.can_start_transfer():
            return
        link.busy = True
        if self.config.collect_channel_stats:
            link.mark_utilisation_start(self.now)
        self.events.schedule_after(link.latency_ns, partial(self._complete_transfer, link))

    def _complete_transfer(self, link: LinkState) -> None:
        """A flit finishes crossing ``link``: hand it to the receiving side."""
        flit = link.out_buffer.pop()
        link.busy = False
        self.stats.flit_hops += 1
        if self.config.collect_channel_stats:
            if flit.is_bubble:
                link.bubble_flits_carried += 1
            else:
                link.data_flits_carried += 1
            link.mark_utilisation_end(self.now)

        destination = link.channel.dst
        if self.network.is_processor(destination):
            self._consume_at_processor(link, flit, destination)
        elif flit.is_bubble and link.sink_segment is None:
            # A bubble that arrives after its worm segment has already
            # finished carries no information; absorbing it keeps the
            # single-flit input buffer available for the next worm.
            pass
        else:
            link.in_buffer.push(flit)
            if flit.is_head:
                self._handle_head_at_switch(link, flit, destination)
            else:
                segment = link.sink_segment
                if segment is not None:
                    segment.on_flit_available()
                elif flit.is_data:
                    raise SimulationError(
                        f"flit of message {flit.message_id} arrived at switch "
                        f"{destination} with no active segment"
                    )

        # The output-buffer slot freed by this transfer lets the feeder (the
        # upstream segment or the source NI) push its next flit, and possibly
        # lets this link start its next transfer immediately.
        feeder = link.feeder
        if feeder is not None:
            feeder.on_output_space(link)
        self.try_start_transfer(link)

    def _consume_at_processor(self, link: LinkState, flit: Flit, processor: int) -> None:
        """Consumption channels deliver directly into the destination processor."""
        if flit.is_bubble:
            return
        message = self.messages[flit.message_id]
        if flit.is_tail:
            completed = message.record_delivery(processor, self.now)
            self.trace_event("deliver", message=message.mid, destination=processor)
            for callback in self.delivery_callbacks:
                callback(message, processor, self.now)
            if completed:
                self.stats.record_message(message)
                self.trace_event("complete", message=message.mid)
                for callback in self.completion_callbacks:
                    callback(message)

    def _handle_head_at_switch(self, link: LinkState, flit: Flit, switch: int) -> None:
        """Create the worm segment for a header flit and schedule its decision."""
        message = self.messages[flit.message_id]
        message.hops += 1
        if message.hops > self.config.max_hops:
            raise LivelockError(
                f"message {message.mid} exceeded {self.config.max_hops} hops; "
                f"the routing algorithm {self.routing.name!r} is not making progress"
            )
        segment = WormSegment(self, message, switch, link)
        link.sink_segment = segment
        self._segments.add(segment)
        self.trace_event("head", message=message.mid, switch=switch, channel=link.cid)
        self.events.schedule_after(self.config.router_setup_ns, segment.make_decision)

    # ------------------------------------------------------------------
    # Segment bookkeeping
    # ------------------------------------------------------------------
    def segment_finished(self, segment: WormSegment) -> None:
        """A worm segment replicated its tail and released its channels."""
        self._segments.discard(segment)

    def notify_channel_released(self, link: LinkState) -> None:
        """Wake the next OCRQ waiter (if any) after a channel release."""
        head = link.ocrq.head()
        if head is not None:
            head.try_acquire()

    def active_segments(self) -> list[WormSegment]:
        """Snapshot of the currently live worm segments (diagnostics)."""
        return list(self._segments)

    def diagnose_deadlock(self) -> DeadlockReport:
        """Build a deadlock report from the current engine state."""
        return diagnose(self)

    # ------------------------------------------------------------------
    # Statistics helpers
    # ------------------------------------------------------------------
    def _finalise_channel_stats(self) -> None:
        self.stats.channel_records = [
            ChannelRecord(
                cid=link.cid,
                src=link.channel.src,
                dst=link.channel.dst,
                data_flits=link.data_flits_carried,
                bubble_flits=link.bubble_flits_carried,
                busy_ns=link.busy_total_ns,
            )
            for link in self.links
        ]

    @property
    def pending_messages(self) -> list[Message]:
        """Messages submitted but not yet complete."""
        return [m for m in self.messages.values() if not m.is_complete]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WormholeSimulator(network={self.network.name!r}, routing={self.routing.name!r}, "
            f"now={self.now} ns, messages={len(self.messages)})"
        )


class _DestinationView:
    """Minimal message view used for early destination validation."""

    __slots__ = ("source", "destinations", "routing_data")

    def __init__(self, source: int, destinations: tuple[int, ...]) -> None:
        self.source = source
        self.destinations = destinations
        self.routing_data: dict = {}
