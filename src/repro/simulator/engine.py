"""The flit-level wormhole simulation engine.

:class:`WormholeSimulator` wires a network, a routing algorithm and a
configuration into an event-driven flit-level simulation:

* processors submit messages through their :class:`~repro.simulator.router.SourceInterface`
  (startup latency, serialised sends, flit injection);
* switches host :class:`~repro.simulator.router.WormSegment` state machines
  (router setup latency, routing decision, OCRQ requests, atomic channel
  acquisition, asynchronous flit replication with bubbles);
* links carry one flit per ``channel_latency_ns`` between output and input
  buffers;
* processors consume flits immediately and record per-destination delivery
  times.

The engine is deliberately policy-free: all routing behaviour comes from the
:class:`~repro.core.interface.RoutingAlgorithm` passed in, which is how SPAM,
the up*/down* baseline and deliberately broken algorithms (for the deadlock
tests) all run on the same substrate.

Steady-state fast path
----------------------

The dominant cost of a run is one heap event per flit per hop.  Most of
those events occur during *steady-state streaming*: every worm segment is
``ACTIVE`` with all output channels acquired, every busy link completes one
flit per ``channel_latency_ns``, and the system state repeats period after
period except that each data-flit sequence number advances by one.

When ``SimulationConfig.fast_path`` is enabled (the default), the engine
detects this situation and coalesces it: it executes one full *period
window* — every event in ``[t0, t0 + channel_latency_ns)`` — through the
ordinary per-flit machinery, verifies that the window was *self-similar*,
and then replays ``k`` further windows arithmetically: flit sequence
numbers, source-NI cursors, ``flit_hops``, bubble counters, per-channel
counters, busy-time accounting, trace records and the pending transfer
deadlines are all advanced in O(links) instead of O(k × links) heap events.
``k`` is capped so the batch ends strictly before the first non-transfer
event, before any head or tail flit would move, and before a bounded run's
window boundary.  Four steady-state patterns coalesce:

* **synchronized body streaming** — every pending transfer completes at the
  same deadline and every wire flit is a body flit shifted by exactly one
  sequence number per tick;
* **phase-staggered streaming** (``SimulationConfig.coalesce_stagger``) —
  pending transfers sit at several deadlines (congruence classes modulo the
  channel period) within one window, as happens when concurrently-active
  worms started on different cycles (e.g. Poisson arrivals); each class
  advances by the period independently;
* **bubble-periodic streaming** (``SimulationConfig.coalesce_bubbles``) —
  blocked multicast branches emit a fixed set of bubbles per period
  (asynchronous replication); the window is self-similar *including* its
  bubble signature: bubble buffer contents are bit-identical, and the
  bubble-creation count, per-link bubble counters and ``bubble`` trace
  records advance by the same fixed amount every period;
* **multi-period streaming** (``SimulationConfig.coalesce_multi_period``) —
  behind a rate bottleneck such as a slow channel
  (``SimulationConfig.channel_latency_factors``), links fire every k-th
  window instead of every window; the probe tries compound periods
  ``k × channel_latency_ns`` for ``k`` up to
  ``SimulationConfig.coalesce_k_max``, verifying self-similarity over the
  whole compound window (per-slot sequence advances measured, not
  assumed) and replaying whole compound periods arithmetically.

**Equivalence guarantee:** because the verification window *is* the
reference execution and self-similarity is checked structurally (buffer
contents, segment states, event order), every observable quantity —
delivery timestamps, :class:`~repro.simulator.trace.Trace` records, message
records, ``flit_hops``, bubble counts and per-channel statistics — is
bit-identical to a run with ``fast_path=False``.  The trace-equivalence
tests in ``tests/test_fast_path.py`` assert this on the Figure 1 network and
on irregular lattice networks, including scenarios with
asynchronous-replication bubbles, OCRQ contention, Poisson and
negative-binomial arrivals, phase-staggered worms, slow channels and
bounded ``run_for`` windows.  Anything the verifier cannot prove
self-similar simply runs on the per-flit substrate.  ``docs/fast_path.md``
specifies the contract in full, including how to add a new coalescible
pattern safely; every ``coalesce_*`` observability counter the engine
exposes is documented in ``docs/engine_counters.md``.

Region-parallel execution
-------------------------

A single engine instance is strictly sequential.  To scale one large run
across cores, :mod:`repro.simulator.regions` decomposes the workload into
channel-disjoint *shards* and runs each shard through its own engine
instance (usually in its own process), then merges the results.  The
decomposition leans on two properties of this engine: routing decisions are
pure functions of ``(message, switch, in_channel)`` (so the set of channels
a message can ever touch is statically enumerable), and all cross-message
coupling flows through shared channels, switches and source NIs (so
channel-disjoint message sets execute independently).  ``submit_message``'s
explicit ``mid`` parameter exists for that decomposition.  See
``docs/region_parallel.md`` for the contract and its limits.
"""

from __future__ import annotations

from functools import partial
from heapq import heappop
from typing import Callable, Iterable, Sequence

from ..core.interface import RoutingAlgorithm
from ..core.multicast import normalize_destinations
from ..errors import ConfigurationError, DeadlockError, LivelockError, SimulationError
from ..obs import NULL_TELEMETRY, NullTelemetry, Telemetry
from ..topology.network import Network
from .config import SimulationConfig
from .deadlock import DeadlockReport, diagnose
from .events import EventQueue
from .flit import Flit, FlitKind
from .links import LinkState
from .message import Message
from .router import SegmentState, SourceInterface, WormSegment
from .stats import ChannelRecord, SimulationStats
from .trace import Trace, TraceEvent

__all__ = ["WormholeSimulator"]

#: Signature of a per-destination delivery callback.
DeliveryCallback = Callable[[Message, int, int], None]
#: Signature of a message-completion callback.
CompletionCallback = Callable[[Message], None]

#: Minimum number of coalescible ticks for a batch advance to be worthwhile;
#: below this the snapshot/verify overhead exceeds the saved heap traffic.
_MIN_BATCH_TICKS = 4

#: Ticks to wait before re-probing after a failed self-similarity check (or
#: a drain bail).  Failures cluster in churn phases (head crawls, drains,
#: bubble storms) where re-snapshotting every tick would cost more than it
#: saves; repeated failures double the backoff up to the cap below.  PR 5
#: re-tuned the pair from 8/64 down to 4/32: the drain bails reject most
#: doomed windows before the snapshot, so retrying sooner is now cheap and
#: wins ~8-10% end to end on paper-length (128-flit) mixed traffic — see
#: the ``tuning`` section of ``BENCH_simulator_throughput.json``.
_COALESCE_BACKOFF_TICKS = 4
_COALESCE_BACKOFF_MAX_TICKS = 32


class WormholeSimulator:
    """Event-driven flit-level wormhole simulator.

    Parameters
    ----------
    network:
        The switch-based network to simulate.
    routing:
        The routing algorithm deciding output channels for every header.
    config:
        Latency / sizing parameters; defaults to the paper's configuration.

    Example
    -------
    >>> from repro.topology import figure1_network
    >>> from repro.core import SpamRouting
    >>> fixture = figure1_network()
    >>> spam = SpamRouting.build(fixture.network, root=fixture.root)
    >>> sim = WormholeSimulator(fixture.network, spam)
    >>> message = sim.submit_message(fixture.source, fixture.destinations)
    >>> stats = sim.run()
    >>> message.is_complete
    True
    """

    def __init__(
        self,
        network: Network,
        routing: RoutingAlgorithm,
        config: SimulationConfig | None = None,
        telemetry: "Telemetry | NullTelemetry | None" = None,
    ) -> None:
        network.require_connected()
        self.network = network
        self.routing = routing
        self.config = config or SimulationConfig()
        self.events = EventQueue()
        latency_factors = dict(self.config.channel_latency_factors)
        self.links: list[LinkState] = [
            LinkState(
                channel,
                latency_ns=self.config.channel_latency_ns
                * int(latency_factors.get(channel.cid, 1)),
                output_depth=self.config.output_buffer_depth,
                input_depth=self.config.input_buffer_depth,
            )
            for channel in network.channels()
        ]
        unknown = [cid for cid in latency_factors if not 0 <= cid < len(self.links)]
        if unknown:
            raise ConfigurationError(
                f"channel_latency_factors name unknown channel ids {sorted(unknown)}"
            )
        self.sources: dict[int, SourceInterface] = {}
        for processor in network.processors():
            injection = self.links[network.injection_channel(processor).cid]
            self.sources[processor] = SourceInterface(self, processor, injection)
        self.messages: dict[int, Message] = {}
        #: Channel ids this run interacted with: every channel any worm
        #: segment enqueued an OCRQ request on, plus the injection channel
        #: of every submitted message.  A routing decision's candidate scan
        #: short-circuits at the first acquirable channel, and a candidate
        #: rejected by the scan is blocked — i.e. reserved or OCRQ-queued by
        #: an *earlier enqueue of this same engine* — so this set also
        #: covers every channel a decision ever **read**.  That closure
        #: property is what the region-parallel executor's disjointness
        #: validation rests on (``docs/region_parallel.md``); maintained
        #: unconditionally (one set update per message hop, nothing per
        #: flit).
        self.touched_cids: set[int] = set()
        self.stats = SimulationStats()
        self.trace: Trace | None = Trace() if self.config.trace else None
        self._segments: set[WormSegment] = set()
        self._next_mid = 0
        self.delivery_callbacks: list[DeliveryCallback] = []
        self.completion_callbacks: list[CompletionCallback] = []
        # Hot-path caches (attribute chains are expensive in the event loop).
        self._collect_stats = self.config.collect_channel_stats
        self._coalesce_stagger = self.config.coalesce_stagger
        self._coalesce_bubbles = self.config.coalesce_bubbles
        #: Largest compound period (in channel periods) the probe will try;
        #: 1 collapses every multi-period code path back to single-window
        #: probing.  Multi-period patterns require a sub-unit-rate
        #: bottleneck, and on a homogeneous-latency network there is none:
        #: deadlock-free wormhole routing keeps the buffer-dependency graph
        #: acyclic, so in a generic-free window every moving link fires
        #: every window (rate 1) or not at all.  The probe therefore only
        #: pays for multi-period candidates when some channel actually has
        #: a different latency (``channel_latency_factors``).
        base_latency = self.config.channel_latency_ns
        heterogeneous = any(link.latency_ns != base_latency for link in self.links)
        self._coalesce_k_max = (
            self.config.coalesce_k_max
            if self.config.coalesce_multi_period and heterogeneous
            else 1
        )
        # Fast-path bookkeeping: earliest time a coalesce attempt is allowed.
        # Each tick is probed at most once, and an attempt that paid for a
        # snapshot but failed verification backs off for a few ticks (failed
        # verifications cluster in churn phases such as worm drains).
        self._coalesce_gate_ns = 0
        self._coalesce_fail_streak = 0
        #: Number of ticks replayed arithmetically by the fast path (an
        #: engine-side observability counter; not part of the simulation's
        #: observable results, which are identical with the fast path off).
        self.coalesced_ticks = 0
        #: Of :attr:`coalesced_ticks`, how many were replayed from a window
        #: whose transfers were pending at more than one deadline (the
        #: phase-staggered pattern), and from a window that carried a
        #: per-tick bubble signature (the bubble-periodic pattern).  The two
        #: overlap when a staggered window also emits bubbles.
        self.coalesced_stagger_ticks = 0
        self.coalesced_bubble_ticks = 0
        #: Probe economics (observability for tuning ``_MIN_BATCH_TICKS`` and
        #: the backoff): windows that passed the cheap scan and paid for a
        #: snapshot, batches that actually advanced, and snapshots wasted on
        #: a failed self-similarity check.
        self.coalesce_snapshots = 0
        self.coalesce_batches = 0
        self.coalesce_verify_failures = 0
        #: Probes rejected in O(1) because the EventQueue-maintained earliest
        #: generic deadline sat too close for a worthwhile batch — the cheap
        #: exit for churn phases, taken before any heap scan or snapshot.
        #: Counted at most once per probe, however many compound periods the
        #: multi-period extension would have tried.
        self.coalesce_generic_bails = 0
        #: Probes rejected during the cheap scan because a pending wire flit
        #: is the last one queued on its link and the feeder provably cannot
        #: refill the output buffer (worm drains: a finished upstream
        #: segment, an exhausted source NI).  Such a window can never verify
        #: at any period, so the probe skips the snapshot it would have
        #: wasted and takes the same backoff a verify failure would.
        self.coalesce_drain_bails = 0
        #: Of :attr:`coalesce_batches`, how many replayed a compound period
        #: of two or more channel periods (the multi-period pattern).
        self.coalesce_multi_period_batches = 0
        #: Batches by verified period: ``{k: batches}`` where ``k`` is the
        #: compound period in channel periods.  Homogeneous-latency networks
        #: under deadlock-free routing only ever record ``k == 1`` (see
        #: ``docs/fast_path.md``); slow channels produce higher keys.
        self.coalesce_k_histogram: dict[int, int] = {}
        #: Tail deliveries recorded so far (cheap sentinel the fast-path
        #: verifier compares to prove no destination was reached inside a
        #: probed window; not an observable result).
        self._delivery_count = 0
        #: Wall-clock telemetry recorder (``repro.obs``).  An explicit
        #: ``telemetry`` argument wins (region shards and sweep workers pass
        #: their own track); otherwise ``config.telemetry`` selects between a
        #: fresh recorder and the shared no-op singleton.  Everything written
        #: here is observability-only — the observables firewall (repro-lint
        #: R9) keeps it out of ``stats``/``trace``/results.
        self.telemetry: Telemetry | NullTelemetry = (
            telemetry
            if telemetry is not None
            else (Telemetry(track="engine") if self.config.telemetry else NULL_TELEMETRY)
        )
        #: ``None`` when telemetry is off — the single flag ``_coalesce_tick``
        #: checks before recording section marks, so the disabled fast path
        #: pays one attribute load on its cold sections and nothing else.
        self._obs_clock = self.telemetry.clock if self.telemetry.enabled else None
        #: Scratch marks ``_coalesce_tick`` leaves for ``_coalesce_tick_timed``
        #: (section timestamps and the verified ``k``/``ticks`` of a batch).
        self._obs_marks: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Time and scheduling helpers
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self.events.now

    def schedule_after(self, delay_ns: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay_ns`` from the current time."""
        self.events.schedule_after(delay_ns, callback)

    def trace_event(self, kind: str, **fields) -> None:
        """Record a trace event (no-op unless tracing is enabled)."""
        if self.trace is not None:
            self.trace.record(self.now, kind, **fields)

    # ------------------------------------------------------------------
    # Workload interface
    # ------------------------------------------------------------------
    def submit_message(
        self,
        source: int,
        destinations: Sequence[int] | Iterable[int],
        at_ns: int | None = None,
        length_flits: int | None = None,
        metadata: dict | None = None,
        mid: int | None = None,
    ) -> Message:
        """Create a message and hand it to the source processor at ``at_ns``.

        Parameters
        ----------
        source:
            Source processor node id.
        destinations:
            One or more destination processor node ids.
        at_ns:
            Arrival time of the send request at the source network interface
            (defaults to the current simulation time).
        length_flits:
            Worm length; defaults to the configuration's message length.
        metadata:
            Free-form annotations copied onto the message.
        mid:
            Explicit message id.  Must be >= every id already assigned; ids
            assigned afterwards continue from ``mid + 1``.  Used by the
            region-parallel decomposition (:mod:`repro.simulator.regions`)
            so each shard engine reproduces the reference engine's global
            message ids; normal callers leave this ``None``.
        """
        if not self.network.is_processor(source):
            raise ConfigurationError(f"source {source} is not a processor")
        if mid is not None:
            if mid < self._next_mid:
                raise ConfigurationError(
                    f"explicit mid {mid} would reuse an id (next is {self._next_mid})"
                )
            self._next_mid = mid
        dests = normalize_destinations(self.network, source, destinations)
        self.routing.validate_destinations(_DestinationView(source, dests))
        at = self.now if at_ns is None else max(at_ns, self.now)
        message = Message(
            mid=self._next_mid,
            source=source,
            destinations=dests,
            length_flits=length_flits or self.config.message_length_flits,
            created_ns=at,
        )
        self._next_mid += 1
        if metadata:
            message.metadata.update(metadata)
        self.routing.prepare(message)
        self.messages[message.mid] = message
        # The source NI serialises its queue, so even a message that never
        # starts before a bounded-run cutoff influences later messages on
        # the same injection channel: touch it at submission, not startup.
        self.touched_cids.add(self.sources[source].injection.cid)
        self.stats.messages_submitted += 1
        self.events.schedule(at, partial(self.sources[source].submit, message))
        self.trace_event("submit", message=message.mid, source=source, destinations=dests)
        return message

    def submit_broadcast(self, source: int, at_ns: int | None = None) -> Message:
        """Convenience wrapper: multicast from ``source`` to every other processor."""
        destinations = [p for p in self.network.processors() if p != source]
        return self.submit_message(source, destinations, at_ns=at_ns)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until_ns: int | None = None) -> SimulationStats:
        """Process events until the queue drains (or ``until_ns`` is reached).

        Bounded runs advance the clock to the window boundary on return, so
        that back-to-back ``run_for`` windows tile time exactly and
        time-based rates divide by the intended duration.

        When the queue drains while messages are still incomplete and
        deadlock detection is enabled, a :class:`~repro.errors.DeadlockError`
        is raised carrying a :class:`~repro.simulator.deadlock.DeadlockReport`.
        """
        events = self.events
        fast = self.config.fast_path
        complete_transfer = self._complete_transfer
        # Telemetry selects the probe entry point once, outside the loop:
        # disabled runs call the raw probe and pay zero per-event overhead
        # (``telemetry is NULL_TELEMETRY``); enabled runs go through the
        # timing wrapper, which classifies each probe's exit tier post-hoc
        # from the counter deltas.
        telemetry = self.telemetry
        instrumented = telemetry.enabled
        coalesce = self._coalesce_tick_timed if instrumented else self._coalesce_tick
        run_start_ns = telemetry.clock() if instrumented else 0
        # The loop body below is ``pop_entry()`` unrolled by hand: this is the
        # hottest loop in the repository and method/property calls per event
        # are measurable.  ``heap`` aliases the live heap list (batch retimes
        # are in-place), so pushes from callbacks remain visible.
        heap = events._heap
        generic_times = events._generic_times
        while heap:
            t0 = heap[0][0]
            if until_ns is not None and t0 > until_ns:
                break
            # Probe whenever the earliest event is a flit transfer; generic
            # events pending further out (queued submits, a later startup)
            # only cap the batch length — _coalesce_tick bails in O(1) on
            # the queue-maintained earliest generic deadline when the cap
            # would be too small, and otherwise ends every batch strictly
            # before the first of them fires.
            if fast and heap[0][2] and t0 >= self._coalesce_gate_ns:
                if coalesce(t0, until_ns):
                    continue
            entry = heappop(heap)
            events.now = entry[0]
            if entry[2]:
                events._transfer_pending -= 1
                complete_transfer(entry[3])
            else:
                heappop(generic_times)
                entry[3]()
        if until_ns is not None:
            # A bounded run owns the whole window: land exactly on the
            # boundary even if the last event fired earlier (or none did).
            events.advance_to(until_ns)
        self.stats.end_time_ns = self.now
        if instrumented:
            telemetry.span_at(
                "engine.run",
                run_start_ns,
                telemetry.clock(),
                bounded=until_ns is not None,
                end_time_ns=self.now,
            )
            self._publish_telemetry_gauges(telemetry)
        if until_ns is None and self.config.deadlock_detection:
            incomplete = [m for m in self.messages.values() if not m.is_complete]
            if incomplete:
                report = diagnose(self)
                error = DeadlockError(
                    "simulation stalled with undelivered messages\n" + report.describe()
                )
                error.report = report  # type: ignore[attr-defined]
                raise error
        if self.config.collect_channel_stats:
            self._finalise_channel_stats()
        return self.stats

    def run_for(self, duration_ns: int) -> SimulationStats:
        """Run until ``now + duration_ns`` (partial runs skip deadlock checks)."""
        return self.run(until_ns=self.now + duration_ns)

    # ------------------------------------------------------------------
    # Steady-state coalescing fast path
    # ------------------------------------------------------------------
    def _coalesce_tick(self, t0: int, until_ns: int | None) -> bool:
        """Attempt to coalesce the steady-state pattern starting at ``t0``.

        The probe executes whole period windows ``[t0, t0 + k·L)`` (where
        ``L = channel_latency_ns``) through the ordinary per-flit machinery
        and checks, for ascending candidate periods ``k``, whether the
        executed span is *self-similar with period k·L*; the first period
        that verifies is replayed arithmetically.  ``k = 1`` is the
        single-window probe of PR 1/2; larger periods (up to
        ``SimulationConfig.coalesce_k_max``) recognise multi-period
        patterns — links firing every k-th window behind a rate bottleneck
        such as a slow channel.

        Returns ``True`` when at least one window was executed here —
        whether or not a batch advance followed.  Returns ``False`` without
        touching any state when the preconditions fail cheaply; the caller
        then pops events normally.
        """
        events = self.events
        latency = self.config.channel_latency_ns
        # Probe each window at most once (re-opened below on a verify failure).
        self._coalesce_gate_ns = t0 + latency
        window_end = t0 + latency
        # -- O(1) bail: the queue maintains the earliest pending generic
        # deadline.  Every batch must end strictly before it, so even in the
        # best case (all transfers at t0) the batch length is bounded by
        # (t_other - 1 - t0) // latency; when that optimistic bound is
        # already below the worthwhile minimum — the dominant rejection in
        # churn phases, where submits/decisions/acquisitions queue close by —
        # the probe exits before paying for any heap scan or snapshot.
        # Counted at most once per probe: the per-k room caps below merely
        # shrink k_limit without touching the counter again.
        generic_times = events._generic_times
        t_other: int | None = generic_times[0] if generic_times else None
        if t_other is not None and (t_other - 1 - t0) // latency < _MIN_BATCH_TICKS + 1:
            self.coalesce_generic_bails += 1
            return False
        # -- Largest compound period worth probing here: a k-period batch
        # must execute k reference windows and replay at least one compound
        # window with m·k >= _MIN_BATCH_TICKS, i.e. ceil(MIN/k)·k more
        # windows, all strictly before the first generic deadline and
        # inside a bounded run's window.
        k_limit = self._coalesce_k_max
        if k_limit > 1:

            def fits(k: int, room: int) -> bool:
                replay = ((_MIN_BATCH_TICKS + k - 1) // k) * k
                return k + replay <= room

            if t_other is not None:
                room = (t_other - 1 - t0) // latency
                while k_limit > 1 and not fits(k_limit, room):
                    k_limit -= 1
            if until_ns is not None:
                room = (until_ns - t0) // latency
                while k_limit > 1 and not fits(k_limit, room):
                    k_limit -= 1
        horizon = window_end if k_limit == 1 else t0 + k_limit * latency
        # -- Cheap scan (unsorted): every pending transfer must complete
        # within the probe horizon (k_limit windows), off-grid deadlines
        # need phase-staggered windows enabled, every wire flit must be a
        # body flit (or a bubble, when bubble-periodic windows are allowed),
        # and a wire flit that is the last one queued must have a feeder
        # that can still refill the buffer.  This rejects head crawls and
        # worm-drain phases before paying for a sort or a snapshot.
        messages = self.messages
        allow_stagger = self._coalesce_stagger
        allow_bubbles = self._coalesce_bubbles
        d_max = t0
        off_class = False
        flit_cap: int | None = None
        for time_ns, _seq, kind, payload in events._heap:
            if not kind:
                continue
            if time_ns != t0:
                if time_ns >= horizon:
                    return False
                if (time_ns - t0) % latency:
                    if not allow_stagger:
                        return False
                    off_class = True
                if time_ns > d_max:
                    d_max = time_ns
            out_slots = payload.out_buffer._slots
            if not out_slots:
                return False
            flit = out_slots[0]
            flit_kind = flit.kind
            if flit_kind is FlitKind.BODY:
                limit = messages[flit.message_id].length_flits - 2 - flit.seq
                if flit_cap is None or limit < flit_cap:
                    flit_cap = limit
            elif flit_kind is not FlitKind.BUBBLE or not allow_bubbles:
                return False
            in_buffer = payload.in_buffer
            if len(in_buffer._slots) >= in_buffer.capacity:
                # -- Drain bail (blocked receiver): the receiving input
                # buffer is full and its segment cannot drain it (it is
                # still waiting on router setup or channel acquisition), so
                # the wire cannot restart after this completion.  The only
                # escape is an acquisition, which changes segment state and
                # fails verification just as surely — so the probe skips
                # the doomed snapshot.  The worm parked behind an OCRQ wait
                # or a crawling head looks exactly like this.
                sink = payload.sink_segment
                if sink is None or sink.state is not SegmentState.ACTIVE:
                    return self._coalesce_drain_bail(t0, latency)
            if len(out_slots) == 1:
                # -- Drain bail: the wire flit is the last one queued and the
                # feeder provably cannot refill the buffer, so the link goes
                # idle after this completion and the window can never verify
                # at any period.  Detecting it here skips the doomed snapshot
                # (the dominant paid-verify failure during worm drains) but
                # still takes the verify-failure backoff, because a drain is
                # exactly the churn the backoff exists to wait out.
                feeder = payload.feeder
                if feeder is None:
                    return self._coalesce_drain_bail(t0, latency)
                if type(feeder) is SourceInterface:
                    current = feeder.current
                    if current is None or feeder.next_seq >= current.length_flits - 1:
                        # Nothing, or only the tail, left to pump: either the
                        # buffer never refills, or the injection finishes and
                        # the NI visibly changes message state mid-window.
                        return self._coalesce_drain_bail(t0, latency)
                elif feeder.state is SegmentState.DONE or (
                    k_limit == 1
                    and not feeder.in_link.busy
                    and not feeder.in_link.in_buffer._slots
                ):
                    # A finished segment never writes again at any period; an
                    # idle, empty feed is only a proof for the single-window
                    # probe (a flit may still arrive in a later sub-window of
                    # a compound period).
                    return self._coalesce_drain_bail(t0, latency)
        # -- Economics precheck (exact caps are recomputed per verified
        # period below; for k > 1 these single-period bounds are simply
        # conservative).
        cap = flit_cap
        if t_other is not None:
            # Every replayed window must end strictly before the first
            # generic event; the window's latest deadline is the binding one.
            other_cap = (t_other - 1 - d_max) // latency
            if cap is None or other_cap < cap:
                cap = other_cap
        if until_ns is not None:
            cap_until = (until_ns - d_max) // latency
            if cap is None or cap_until < cap:
                cap = cap_until
        if cap is not None and cap < _MIN_BATCH_TICKS + 1:
            return False
        if flit_cap is None and cap is None:
            # A pure-bubble window with no bounding event: the stall that
            # feeds the bubbles can only resolve through an event this scan
            # cannot see, so never replay it arithmetically.
            return False
        # Smallest period covering every pending deadline.
        k_min = 1 if d_max < window_end else (d_max - t0) // latency + 1
        # Pending transfers in per-flit completion order: (deadline, link,
        # whether the wire flit is a bubble).
        moving = [
            (entry[0], entry[3], entry[3].out_buffer._slots[0].kind is FlitKind.BUBBLE)
            for entry in sorted(events._heap)
            if entry[2]
        ]

        # -- Snapshot the closure of state the probe can touch.  One
        # expansion (the moving links plus every buffer their sink segments
        # replicate into and their feeders drain from) covers a single
        # window; each further window can reach one expansion more, so the
        # closure is expanded k_limit times.
        self.coalesce_snapshots += 1
        obs_clock = self._obs_clock
        if obs_clock is not None:
            # Section marks for the telemetry wrapper.  Only the cold
            # sections are marked — every probe that reaches here has
            # already paid for a heap scan, so two clock reads are noise.
            self._obs_marks["snapshot_start_ns"] = obs_clock()
        closure: dict[LinkState, None] = {}
        segments: dict[WormSegment, None] = {}
        interfaces: dict[SourceInterface, None] = {}
        frontier: list[LinkState] = []
        for _time, link, _bubble in moving:
            if link not in closure:
                closure[link] = None
                frontier.append(link)
        for _depth in range(k_limit):
            grown: list[LinkState] = []
            for link in frontier:
                for party in (link.sink_segment, link.feeder):
                    if party is None:
                        continue
                    if type(party) is SourceInterface:
                        interfaces[party] = None
                        continue
                    if party in segments:
                        continue
                    segments[party] = None
                    for other in (party.in_link, *party.outputs):
                        if other not in closure:
                            closure[other] = None
                            grown.append(other)
            if not grown:
                break
            frontier = grown

        def link_snap(link: LinkState):
            return (
                link.busy,
                link.reserved_by,
                link.feeder,
                link.sink_segment,
                tuple((f.kind, f.message_id, f.seq) for f in link.out_buffer.flits()),
                tuple((f.kind, f.message_id, f.seq) for f in link.in_buffer.flits()),
            )

        pre_links = [(link, link_snap(link)) for link in closure]
        pre_segments = [
            (seg, seg.state, seg.head_replicated, tuple(seg.outputs), tuple(seg.required))
            for seg in segments
        ]
        pre_interfaces = [
            (ni, ni.current, ni.next_seq, len(ni.queue)) for ni in interfaces
        ]
        stats = self.stats
        collect = self._collect_stats
        pre_flit_hops = stats.flit_hops
        pre_bubbles = stats.bubbles_created
        pre_counters = (
            stats.messages_completed,
            len(self._segments),
            self._delivery_count,
        )
        trace = self.trace
        pre_trace_len = len(trace.events) if trace is not None else 0
        pre_generic_len = len(generic_times)
        # Per-link statistics baselines, needed only if a multi-period batch
        # replays (a verified single window implies one flit of the scanned
        # kind per moving link and continuous wire busyness, so k == 1 keeps
        # the cheaper closed-form advance).
        pre_link_stats = (
            [
                (
                    link,
                    link.data_flits_carried,
                    link.bubble_flits_carried,
                    link.busy_total_ns,
                    link.busy_since_ns,
                )
                for link in closure
            ]
            if collect and k_limit > 1
            else None
        )

        if obs_clock is not None:
            self._obs_marks["snapshot_end_ns"] = obs_clock()

        complete_transfer = self._complete_transfer
        pop_entry = events.pop_entry
        heap = events._heap
        count = len(moving)

        def examine(k: int):
            """Compare the current state against the snapshot shifted by
            ``k`` periods.  Returns ``("ok", plan)`` when self-similar,
            ``("retry", None)`` for mismatches a longer compound period
            could still close (mid-pattern sub-windows), and
            ``("abort", None)`` for permanent transitions (segment
            lifecycle, NI message changes, generics, deliveries) that no
            period can make periodic."""
            shift = k * latency
            if (
                stats.messages_completed,
                len(self._segments),
                self._delivery_count,
            ) != pre_counters:
                return "abort", None
            if len(generic_times) != pre_generic_len:
                return "abort", None
            bubble_rate = stats.bubbles_created - pre_bubbles
            if bubble_rate and not allow_bubbles:
                return "abort", None
            for seg, state, head_replicated, outputs, required in pre_segments:
                if (
                    seg.state is not state
                    or seg.head_replicated != head_replicated
                    or tuple(seg.outputs) != outputs
                    or tuple(seg.required) != required
                ):
                    return "abort", None
            if events._transfer_pending != count:
                return "retry", None
            post_transfers = sorted(entry for entry in heap if entry[2])
            for entry, (pre_time, link, _bubble) in zip(post_transfers, moving):
                if entry[0] != pre_time + shift or entry[3] is not link:
                    return "retry", None
            bound: int | None = None
            ni_deltas: list[tuple[SourceInterface, int]] = []
            for ni, current, next_seq, backlog in pre_interfaces:
                if ni.current is not current or len(ni.queue) != backlog:
                    return "abort", None
                delta = ni.next_seq - next_seq
                if delta:
                    if current is None or delta < 0 or delta > k:
                        return "abort", None
                    limit = (current.length_flits - 1 - ni.next_seq) // delta
                    if bound is None or limit < bound:
                        bound = limit
                    ni_deltas.append((ni, delta))
            shifting: list[tuple[object, tuple, list[int]]] = []
            for link, snap in pre_links:
                busy, reserved_by, feeder, sink, out_flits, in_flits = snap
                if (
                    link.reserved_by != reserved_by
                    or link.feeder is not feeder
                    or link.sink_segment is not sink
                ):
                    return "abort", None
                if link.busy != busy:
                    return "retry", None
                for pre_flits, buffer in (
                    (out_flits, link.out_buffer),
                    (in_flits, link.in_buffer),
                ):
                    post_flits = tuple(
                        (f.kind, f.message_id, f.seq) for f in buffer.flits()
                    )
                    if post_flits == pre_flits:
                        # Unchanged contents: either the buffer was not
                        # touched, or a bubble was re-emitted with the
                        # identical signature (bubbles reuse the stalled
                        # data flit's sequence number, so a periodic bubble
                        # stream is a fixed point here).
                        continue
                    if len(post_flits) != len(pre_flits):
                        return "retry", None
                    deltas: list[int] = []
                    for (kind0, mid0, seq0), (kind1, mid1, seq1) in zip(
                        pre_flits, post_flits
                    ):
                        delta = seq1 - seq0
                        if (
                            kind1 is not kind0
                            or mid1 != mid0
                            or delta < 0
                            or delta > k
                            or (delta and kind1 is not FlitKind.BODY)
                        ):
                            return "retry", None
                        if delta:
                            limit = (messages[mid1].length_flits - 2 - seq1) // delta
                            if bound is None or limit < bound:
                                bound = limit
                        deltas.append(delta)
                    shifting.append((buffer, post_flits, deltas))
            if pre_link_stats is not None and k > 1:
                # Busy-period bookkeeping is part of multi-period
                # self-similarity: an open period must have slid forward by
                # exactly one compound period (the single-window case is
                # implied by the transfer-set check above).
                for link, _data0, _bubble0, _busy0, since0 in pre_link_stats:
                    post_since = link.busy_since_ns
                    if since0 is None:
                        if post_since is not None:
                            return "retry", None
                    elif post_since != since0 + shift:
                        return "retry", None
            return "ok", (shifting, ni_deltas, bound, bubble_rate)

        # -- Execute windows through the per-flit machinery, verifying the
        # accumulated span against each candidate period in ascending order.
        # Whatever happens, everything executed below is exactly the
        # reference execution, so a probe that never verifies has simply run
        # the simulation forward.
        k = k_min
        while True:
            exec_end = t0 + k * latency
            executed_generic = False
            while heap and heap[0][0] < exec_end:
                entry = pop_entry()
                if entry[2]:
                    complete_transfer(entry[3])
                else:
                    # Unreachable while the k_limit room caps hold (no
                    # generic deadline fits inside the probed span), but a
                    # generic that does fire ran as reference and simply
                    # disqualifies the probe.
                    executed_generic = True
                    entry[3]()
            if executed_generic:
                return self._coalesce_backoff(t0 + (k - 1) * latency, latency)
            verdict, plan = examine(k)
            if verdict == "ok":
                break
            if verdict == "abort" or k >= k_limit:
                return self._coalesce_backoff(t0 + (k - 1) * latency, latency)
            k += 1

        # -- Batch advance: replay m further compound windows arithmetically.
        if obs_clock is not None:
            self._obs_marks["replay_start_ns"] = obs_clock()
        shifting, ni_deltas, bound, bubble_rate = plan
        shift = k * latency
        now_ns = events.now
        m = bound
        if t_other is not None:
            # The last replayed event must land strictly before the first
            # generic deadline.
            limit = (t_other - 1 - now_ns) // shift
            if m is None or limit < m:
                m = limit
        if until_ns is not None:
            limit = (until_ns - now_ns) // shift
            if m is None or limit < m:
                m = limit
        if m is None:
            # A pure fixed point (no advancing flit or NI cursor) with no
            # bounding event cannot be replayed a finite number of times.
            return self._coalesce_backoff(t0 + (k - 1) * latency, latency)
        if m < 1 or m * k < _MIN_BATCH_TICKS:
            return self._coalesce_backoff(t0 + (k - 1) * latency, latency)
        advance = m * shift
        delta_hops = stats.flit_hops - pre_flit_hops
        stats.flit_hops += m * delta_hops
        stats.bubbles_created += m * bubble_rate
        if collect:
            if k == 1:
                for _time, link, bubble in moving:
                    link.fast_forward(m, advance, bubble)
            else:
                for link, data0, bubble0, busy0, _since0 in pre_link_stats:
                    d_data = link.data_flits_carried - data0
                    d_bubble = link.bubble_flits_carried - bubble0
                    d_busy = link.busy_total_ns - busy0
                    if d_data or d_bubble or d_busy:
                        link.data_flits_carried += m * d_data
                        link.bubble_flits_carried += m * d_bubble
                        link.busy_total_ns += m * d_busy
                    if link.busy_since_ns is not None:
                        link.busy_since_ns += advance
        for buffer, post_flits, deltas in shifting:
            buffer.replace_contents(
                Flit(kind, mid, seq + m * delta)
                for (kind, mid, seq), delta in zip(post_flits, deltas)
            )
        for ni, delta in ni_deltas:
            ni.next_seq += m * delta
        if trace is not None and len(trace.events) != pre_trace_len:
            # A self-similar compound window records the identical trace
            # events every period (bubble records carry only message/switch
            # fields), so the replayed windows' records are the window's
            # shifted in time.
            window_records = trace.events[pre_trace_len:]
            append = trace.events.append
            for tick in range(1, m + 1):
                delta = tick * shift
                for record in window_records:
                    append(TraceEvent(record.time_ns + delta, record.kind, record.fields))
        events.shift_transfers(now_ns + advance, advance)
        self._coalesce_fail_streak = 0
        self.coalesce_batches += 1
        ticks = m * k
        self.coalesced_ticks += ticks
        if off_class:
            self.coalesced_stagger_ticks += ticks
        if bubble_rate:
            self.coalesced_bubble_ticks += ticks
        histogram = self.coalesce_k_histogram
        histogram[k] = histogram.get(k, 0) + 1
        if k > 1:
            self.coalesce_multi_period_batches += 1
        if obs_clock is not None:
            self._obs_marks["k"] = k
            self._obs_marks["ticks"] = ticks
        return True

    def _coalesce_pause(self, t0: int, latency: int) -> None:
        """Shared churn backoff: bump the failure streak and close the probe
        gate exponentially longer while the failures keep coming (e.g. a
        long bubble storm on a big multicast tree)."""
        streak = self._coalesce_fail_streak
        self._coalesce_fail_streak = streak + 1
        # min() the shift amount, not just the result: an unbounded shift
        # would build ever-larger big-ints over a long churn-heavy run.
        ticks = min(_COALESCE_BACKOFF_TICKS << min(streak, 3), _COALESCE_BACKOFF_MAX_TICKS)
        self._coalesce_gate_ns = t0 + ticks * latency

    def _coalesce_backoff(self, t0: int, latency: int) -> bool:
        """An executed probe paid for a snapshot without batching — the
        self-similarity check failed at every candidate period, or the
        verified pattern had no worthwhile replay.  The system is in a
        churn phase, so pause probing.  Counted once per probe, however
        many periods were tried.  Always returns ``True`` (the probed
        windows themselves ran through the reference machinery)."""
        self.coalesce_verify_failures += 1
        self._coalesce_pause(t0, latency)
        return True

    def _coalesce_drain_bail(self, t0: int, latency: int) -> bool:
        """The cheap scan proved the window can never verify (a draining
        link whose feeder cannot refill it): take the same exponential
        backoff a paid verify failure would — a drain is churn — but
        without having wasted a snapshot, and without counting a verify
        failure.  Returns ``False``: nothing was executed, the caller pops
        events normally."""
        self.coalesce_drain_bails += 1
        self._coalesce_pause(t0, latency)
        return False

    # ------------------------------------------------------------------
    # Wall-clock telemetry (observability only; see docs/observability.md)
    # ------------------------------------------------------------------
    def _coalesce_tick_timed(self, t0: int, until_ns: int | None) -> bool:
        """Instrumented twin of :meth:`_coalesce_tick`.

        ``run()`` binds this instead of the raw probe when telemetry is
        enabled.  The probe itself is untouched — its exit tier is
        classified *post hoc* from the ``coalesce_*`` counter deltas, so
        the instrumentation cannot perturb the decision logic; the cold
        sections (snapshot build, batch replay) leave timestamp marks in
        ``_obs_marks`` that become sub-spans here.
        """
        tel = self.telemetry
        marks = self._obs_marks
        marks.clear()
        pre_batches = self.coalesce_batches
        pre_verify = self.coalesce_verify_failures
        pre_drain = self.coalesce_drain_bails
        pre_generic = self.coalesce_generic_bails
        clock = tel.clock
        start_ns = clock()
        executed = self._coalesce_tick(t0, until_ns)
        end_ns = clock()
        if self.coalesce_batches != pre_batches:
            tier = "batch"
        elif self.coalesce_verify_failures != pre_verify:
            tier = "verify_failure"
        elif self.coalesce_drain_bails != pre_drain:
            tier = "drain_bail"
        elif self.coalesce_generic_bails != pre_generic:
            tier = "generic_bail"
        else:
            tier = "scan_reject"
        tel.counter(f"engine.probe.{tier}")
        tel.value(f"engine.probe.{tier}_ns", end_ns - start_ns)
        if tier == "batch":
            k = marks.get("k", 1)
            tel.counter(f"engine.probe.k.{k}")
            tel.span_at(
                "engine.probe",
                start_ns,
                end_ns,
                tier=tier,
                k=k,
                ticks=marks.get("ticks", 0),
            )
        else:
            tel.span_at("engine.probe", start_ns, end_ns, tier=tier)
        snapshot_start = marks.get("snapshot_start_ns")
        if snapshot_start is not None:
            tel.span_at(
                "engine.probe.snapshot",
                snapshot_start,
                marks.get("snapshot_end_ns", end_ns),
            )
        replay_start = marks.get("replay_start_ns")
        if replay_start is not None:
            tel.span_at("engine.probe.replay", replay_start, end_ns)
        return executed

    def _publish_telemetry_gauges(self, tel: "Telemetry | NullTelemetry") -> None:
        """Re-publish the deterministic ``coalesce_*`` counters as gauges so
        one snapshot unifies wall-clock spans with the normative counters.
        Last-write-wins, so repeated ``run_for`` windows stay idempotent."""
        tel.gauge("engine.coalesced_ticks", self.coalesced_ticks)
        tel.gauge("engine.coalesced_stagger_ticks", self.coalesced_stagger_ticks)
        tel.gauge("engine.coalesced_bubble_ticks", self.coalesced_bubble_ticks)
        tel.gauge("engine.coalesce_snapshots", self.coalesce_snapshots)
        tel.gauge("engine.coalesce_batches", self.coalesce_batches)
        tel.gauge("engine.coalesce_verify_failures", self.coalesce_verify_failures)
        tel.gauge("engine.coalesce_generic_bails", self.coalesce_generic_bails)
        tel.gauge("engine.coalesce_drain_bails", self.coalesce_drain_bails)
        tel.gauge(
            "engine.coalesce_multi_period_batches", self.coalesce_multi_period_batches
        )
        for k, batches in sorted(self.coalesce_k_histogram.items()):
            tel.gauge(f"engine.coalesce_k_histogram.{k}", batches)

    # ------------------------------------------------------------------
    # Link machinery
    # ------------------------------------------------------------------
    def try_start_transfer(self, link: LinkState) -> None:
        """Put the head flit of ``link``'s output buffer on the wire if
        possible: the wire must be idle, the output buffer non-empty and the
        receiving input buffer not full.  Written out against the buffer
        internals because this runs several times per flit hop."""
        if link.busy or not link.out_buffer._slots:
            return
        in_buffer = link.in_buffer
        if len(in_buffer._slots) >= in_buffer.capacity:
            return
        link.busy = True
        if self._collect_stats and link.busy_since_ns is None:
            link.busy_since_ns = self.events.now
        self.events.schedule_transfer(link.latency_ns, link)

    def _complete_transfer(self, link: LinkState) -> None:
        """A flit finishes crossing ``link``: hand it to the receiving side."""
        flit = link.out_buffer.pop()
        link.busy = False
        self.stats.flit_hops += 1
        kind = flit.kind
        if self._collect_stats:
            if kind is FlitKind.BUBBLE:
                link.bubble_flits_carried += 1
            else:
                link.data_flits_carried += 1
            link.mark_utilisation_end(self.events.now)

        if link.sink_is_processor:
            if kind is FlitKind.TAIL:
                self._deliver_tail(flit, link.channel.dst)
        elif kind is FlitKind.BUBBLE and link.sink_segment is None:
            # A bubble that arrives after its worm segment has already
            # finished carries no information; absorbing it keeps the
            # single-flit input buffer available for the next worm.
            pass
        else:
            link.in_buffer.push(flit)
            if kind is FlitKind.HEAD:
                self._handle_head_at_switch(link, flit, link.channel.dst)
            else:
                segment = link.sink_segment
                if segment is not None:
                    segment.on_flit_available()
                elif kind is not FlitKind.BUBBLE:
                    raise SimulationError(
                        f"flit of message {flit.message_id} arrived at switch "
                        f"{link.channel.dst} with no active segment"
                    )

        # The output-buffer slot freed by this transfer lets the feeder (the
        # upstream segment or the source NI) push its next flit, and possibly
        # lets this link start its next transfer immediately.
        feeder = link.feeder
        if feeder is not None:
            feeder.on_output_space(link)
        self.try_start_transfer(link)

    def _deliver_tail(self, flit: Flit, processor: int) -> None:
        """A tail flit reached its destination processor: record delivery."""
        message = self.messages[flit.message_id]
        self._delivery_count += 1
        completed = message.record_delivery(processor, self.now)
        self.trace_event("deliver", message=message.mid, destination=processor)
        for callback in self.delivery_callbacks:
            callback(message, processor, self.now)
        if completed:
            self.stats.record_message(message)
            self.trace_event("complete", message=message.mid)
            for callback in self.completion_callbacks:
                callback(message)

    def _handle_head_at_switch(self, link: LinkState, flit: Flit, switch: int) -> None:
        """Create the worm segment for a header flit and schedule its decision."""
        message = self.messages[flit.message_id]
        message.hops += 1
        if message.hops > self.config.max_hops:
            raise LivelockError(
                f"message {message.mid} exceeded {self.config.max_hops} hops; "
                f"the routing algorithm {self.routing.name!r} is not making progress"
            )
        segment = WormSegment(self, message, switch, link)
        link.sink_segment = segment
        self._segments.add(segment)
        self.trace_event("head", message=message.mid, switch=switch, channel=link.cid)
        self.events.schedule_after(self.config.router_setup_ns, segment.make_decision)

    # ------------------------------------------------------------------
    # Segment bookkeeping
    # ------------------------------------------------------------------
    def segment_finished(self, segment: WormSegment) -> None:
        """A worm segment replicated its tail and released its channels."""
        self._segments.discard(segment)

    def notify_channel_released(self, link: LinkState) -> None:
        """Wake the next OCRQ waiter (if any) after a channel release."""
        head = link.ocrq.head()
        if head is not None:
            head.try_acquire()

    def active_segments(self) -> list[WormSegment]:
        """Snapshot of the currently live worm segments (diagnostics).

        ``_segments`` is a set (membership is the hot operation), so the
        snapshot is sorted to keep every consumer — deadlock reports in
        particular — deterministic across processes.  At most one segment
        of a message lives at a switch, so ``(mid, switch)`` is unique and
        the ``key=`` sort has no ties to break.
        """
        return sorted(  # repro-lint: disable=R1 -- (mid, switch) is unique per live segment, so sorted(key=...) has no encounter-order ties
            self._segments, key=lambda seg: (seg.message.mid, seg.switch)
        )

    def diagnose_deadlock(self) -> DeadlockReport:
        """Build a deadlock report from the current engine state."""
        return diagnose(self)

    # ------------------------------------------------------------------
    # Statistics helpers
    # ------------------------------------------------------------------
    def _finalise_channel_stats(self) -> None:
        # Busy periods still open at the end of a bounded run are flushed up
        # to the current time without being closed, so resumed runs keep
        # accumulating from where they left off.
        now = self.now
        self.stats.channel_records = [
            ChannelRecord(
                cid=link.cid,
                src=link.channel.src,
                dst=link.channel.dst,
                data_flits=link.data_flits_carried,
                bubble_flits=link.bubble_flits_carried,
                busy_ns=link.busy_ns_until(now),
            )
            for link in self.links
        ]

    @property
    def pending_messages(self) -> list[Message]:
        """Messages submitted but not yet complete."""
        return [m for m in self.messages.values() if not m.is_complete]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WormholeSimulator(network={self.network.name!r}, routing={self.routing.name!r}, "
            f"now={self.now} ns, messages={len(self.messages)})"
        )


class _DestinationView:
    """Minimal message view used for early destination validation."""

    __slots__ = ("source", "destinations", "routing_data")

    def __init__(self, source: int, destinations: tuple[int, ...]) -> None:
        self.source = source
        self.destinations = destinations
        self.routing_data: dict = {}
