"""The flit-level wormhole simulation engine.

:class:`WormholeSimulator` wires a network, a routing algorithm and a
configuration into an event-driven flit-level simulation:

* processors submit messages through their :class:`~repro.simulator.router.SourceInterface`
  (startup latency, serialised sends, flit injection);
* switches host :class:`~repro.simulator.router.WormSegment` state machines
  (router setup latency, routing decision, OCRQ requests, atomic channel
  acquisition, asynchronous flit replication with bubbles);
* links carry one flit per ``channel_latency_ns`` between output and input
  buffers;
* processors consume flits immediately and record per-destination delivery
  times.

The engine is deliberately policy-free: all routing behaviour comes from the
:class:`~repro.core.interface.RoutingAlgorithm` passed in, which is how SPAM,
the up*/down* baseline and deliberately broken algorithms (for the deadlock
tests) all run on the same substrate.

Steady-state fast path
----------------------

The dominant cost of a run is one heap event per flit per hop.  Most of
those events occur during *steady-state streaming*: every worm segment is
``ACTIVE`` with all output channels acquired, every busy link completes one
flit per ``channel_latency_ns``, and the system state repeats period after
period except that each data-flit sequence number advances by one.

When ``SimulationConfig.fast_path`` is enabled (the default), the engine
detects this situation and coalesces it: it executes one full *period
window* — every event in ``[t0, t0 + channel_latency_ns)`` — through the
ordinary per-flit machinery, verifies that the window was *self-similar*,
and then replays ``k`` further windows arithmetically: flit sequence
numbers, source-NI cursors, ``flit_hops``, bubble counters, per-channel
counters, busy-time accounting, trace records and the pending transfer
deadlines are all advanced in O(links) instead of O(k × links) heap events.
``k`` is capped so the batch ends strictly before the first non-transfer
event, before any head or tail flit would move, and before a bounded run's
window boundary.  Three steady-state patterns coalesce:

* **synchronized body streaming** — every pending transfer completes at the
  same deadline and every wire flit is a body flit shifted by exactly one
  sequence number per tick;
* **phase-staggered streaming** (``SimulationConfig.coalesce_stagger``) —
  pending transfers sit at several deadlines (congruence classes modulo the
  channel period) within one window, as happens when concurrently-active
  worms started on different cycles (e.g. Poisson arrivals); each class
  advances by the period independently;
* **bubble-periodic streaming** (``SimulationConfig.coalesce_bubbles``) —
  blocked multicast branches emit a fixed set of bubbles per period
  (asynchronous replication); the window is self-similar *including* its
  bubble signature: bubble buffer contents are bit-identical, and the
  bubble-creation count, per-link bubble counters and ``bubble`` trace
  records advance by the same fixed amount every period.

**Equivalence guarantee:** because the verification window *is* the
reference execution and self-similarity is checked structurally (buffer
contents, segment states, event order), every observable quantity —
delivery timestamps, :class:`~repro.simulator.trace.Trace` records, message
records, ``flit_hops``, bubble counts and per-channel statistics — is
bit-identical to a run with ``fast_path=False``.  The trace-equivalence
tests in ``tests/test_fast_path.py`` assert this on the Figure 1 network and
on irregular lattice networks, including scenarios with
asynchronous-replication bubbles, OCRQ contention, Poisson and
negative-binomial arrivals, phase-staggered worms and bounded ``run_for``
windows.  Anything the verifier cannot prove self-similar simply runs on
the per-flit substrate.  ``docs/fast_path.md`` specifies the contract in
full, including how to add a new coalescible pattern safely.
"""

from __future__ import annotations

from functools import partial
from heapq import heappop
from typing import Callable, Iterable, Sequence

from ..core.interface import RoutingAlgorithm
from ..core.multicast import normalize_destinations
from ..errors import ConfigurationError, DeadlockError, LivelockError, SimulationError
from ..topology.network import Network
from .config import SimulationConfig
from .deadlock import DeadlockReport, diagnose
from .events import EventQueue
from .flit import Flit, FlitKind
from .links import LinkState
from .message import Message
from .router import SourceInterface, WormSegment
from .stats import ChannelRecord, SimulationStats
from .trace import Trace, TraceEvent

__all__ = ["WormholeSimulator"]

#: Signature of a per-destination delivery callback.
DeliveryCallback = Callable[[Message, int, int], None]
#: Signature of a message-completion callback.
CompletionCallback = Callable[[Message], None]

#: Minimum number of coalescible ticks for a batch advance to be worthwhile;
#: below this the snapshot/verify overhead exceeds the saved heap traffic.
_MIN_BATCH_TICKS = 4

#: Ticks to wait before re-probing after a failed self-similarity check.
#: Failures cluster in churn phases (head crawls, drains, bubble storms)
#: where re-snapshotting every tick would cost more than it saves; repeated
#: failures double the backoff up to the cap below.
_COALESCE_BACKOFF_TICKS = 8
_COALESCE_BACKOFF_MAX_TICKS = 64


class WormholeSimulator:
    """Event-driven flit-level wormhole simulator.

    Parameters
    ----------
    network:
        The switch-based network to simulate.
    routing:
        The routing algorithm deciding output channels for every header.
    config:
        Latency / sizing parameters; defaults to the paper's configuration.

    Example
    -------
    >>> from repro.topology import figure1_network
    >>> from repro.core import SpamRouting
    >>> fixture = figure1_network()
    >>> spam = SpamRouting.build(fixture.network, root=fixture.root)
    >>> sim = WormholeSimulator(fixture.network, spam)
    >>> message = sim.submit_message(fixture.source, fixture.destinations)
    >>> stats = sim.run()
    >>> message.is_complete
    True
    """

    def __init__(
        self,
        network: Network,
        routing: RoutingAlgorithm,
        config: SimulationConfig | None = None,
    ) -> None:
        network.require_connected()
        self.network = network
        self.routing = routing
        self.config = config or SimulationConfig()
        self.events = EventQueue()
        self.links: list[LinkState] = [
            LinkState(
                channel,
                latency_ns=self.config.channel_latency_ns,
                output_depth=self.config.output_buffer_depth,
                input_depth=self.config.input_buffer_depth,
            )
            for channel in network.channels()
        ]
        self.sources: dict[int, SourceInterface] = {}
        for processor in network.processors():
            injection = self.links[network.injection_channel(processor).cid]
            self.sources[processor] = SourceInterface(self, processor, injection)
        self.messages: dict[int, Message] = {}
        self.stats = SimulationStats()
        self.trace: Trace | None = Trace() if self.config.trace else None
        self._segments: set[WormSegment] = set()
        self._next_mid = 0
        self.delivery_callbacks: list[DeliveryCallback] = []
        self.completion_callbacks: list[CompletionCallback] = []
        # Hot-path caches (attribute chains are expensive in the event loop).
        self._collect_stats = self.config.collect_channel_stats
        self._coalesce_stagger = self.config.coalesce_stagger
        self._coalesce_bubbles = self.config.coalesce_bubbles
        # Fast-path bookkeeping: earliest time a coalesce attempt is allowed.
        # Each tick is probed at most once, and an attempt that paid for a
        # snapshot but failed verification backs off for a few ticks (failed
        # verifications cluster in churn phases such as worm drains).
        self._coalesce_gate_ns = 0
        self._coalesce_fail_streak = 0
        #: Number of ticks replayed arithmetically by the fast path (an
        #: engine-side observability counter; not part of the simulation's
        #: observable results, which are identical with the fast path off).
        self.coalesced_ticks = 0
        #: Of :attr:`coalesced_ticks`, how many were replayed from a window
        #: whose transfers were pending at more than one deadline (the
        #: phase-staggered pattern), and from a window that carried a
        #: per-tick bubble signature (the bubble-periodic pattern).  The two
        #: overlap when a staggered window also emits bubbles.
        self.coalesced_stagger_ticks = 0
        self.coalesced_bubble_ticks = 0
        #: Probe economics (observability for tuning ``_MIN_BATCH_TICKS`` and
        #: the backoff): windows that passed the cheap scan and paid for a
        #: snapshot, batches that actually advanced, and snapshots wasted on
        #: a failed self-similarity check.
        self.coalesce_snapshots = 0
        self.coalesce_batches = 0
        self.coalesce_verify_failures = 0
        #: Probes rejected in O(1) because the EventQueue-maintained earliest
        #: generic deadline sat too close for a worthwhile batch — the cheap
        #: exit for churn phases, taken before any heap scan or snapshot.
        self.coalesce_generic_bails = 0

    # ------------------------------------------------------------------
    # Time and scheduling helpers
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self.events.now

    def schedule_after(self, delay_ns: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay_ns`` from the current time."""
        self.events.schedule_after(delay_ns, callback)

    def trace_event(self, kind: str, **fields) -> None:
        """Record a trace event (no-op unless tracing is enabled)."""
        if self.trace is not None:
            self.trace.record(self.now, kind, **fields)

    # ------------------------------------------------------------------
    # Workload interface
    # ------------------------------------------------------------------
    def submit_message(
        self,
        source: int,
        destinations: Sequence[int] | Iterable[int],
        at_ns: int | None = None,
        length_flits: int | None = None,
        metadata: dict | None = None,
    ) -> Message:
        """Create a message and hand it to the source processor at ``at_ns``.

        Parameters
        ----------
        source:
            Source processor node id.
        destinations:
            One or more destination processor node ids.
        at_ns:
            Arrival time of the send request at the source network interface
            (defaults to the current simulation time).
        length_flits:
            Worm length; defaults to the configuration's message length.
        metadata:
            Free-form annotations copied onto the message.
        """
        if not self.network.is_processor(source):
            raise ConfigurationError(f"source {source} is not a processor")
        dests = normalize_destinations(self.network, source, destinations)
        self.routing.validate_destinations(_DestinationView(source, dests))
        at = self.now if at_ns is None else max(at_ns, self.now)
        message = Message(
            mid=self._next_mid,
            source=source,
            destinations=dests,
            length_flits=length_flits or self.config.message_length_flits,
            created_ns=at,
        )
        self._next_mid += 1
        if metadata:
            message.metadata.update(metadata)
        self.routing.prepare(message)
        self.messages[message.mid] = message
        self.stats.messages_submitted += 1
        self.events.schedule(at, partial(self.sources[source].submit, message))
        self.trace_event("submit", message=message.mid, source=source, destinations=dests)
        return message

    def submit_broadcast(self, source: int, at_ns: int | None = None) -> Message:
        """Convenience wrapper: multicast from ``source`` to every other processor."""
        destinations = [p for p in self.network.processors() if p != source]
        return self.submit_message(source, destinations, at_ns=at_ns)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until_ns: int | None = None) -> SimulationStats:
        """Process events until the queue drains (or ``until_ns`` is reached).

        Bounded runs advance the clock to the window boundary on return, so
        that back-to-back ``run_for`` windows tile time exactly and
        time-based rates divide by the intended duration.

        When the queue drains while messages are still incomplete and
        deadlock detection is enabled, a :class:`~repro.errors.DeadlockError`
        is raised carrying a :class:`~repro.simulator.deadlock.DeadlockReport`.
        """
        events = self.events
        fast = self.config.fast_path
        complete_transfer = self._complete_transfer
        # The loop body below is ``pop_entry()`` unrolled by hand: this is the
        # hottest loop in the repository and method/property calls per event
        # are measurable.  ``heap`` aliases the live heap list (batch retimes
        # are in-place), so pushes from callbacks remain visible.
        heap = events._heap
        generic_times = events._generic_times
        while heap:
            t0 = heap[0][0]
            if until_ns is not None and t0 > until_ns:
                break
            # Probe whenever the earliest event is a flit transfer; generic
            # events pending further out (queued submits, a later startup)
            # only cap the batch length — _coalesce_tick bails in O(1) on
            # the queue-maintained earliest generic deadline when the cap
            # would be too small, and otherwise ends every batch strictly
            # before the first of them fires.
            if fast and heap[0][2] and t0 >= self._coalesce_gate_ns:
                if self._coalesce_tick(t0, until_ns):
                    continue
            entry = heappop(heap)
            events.now = entry[0]
            if entry[2]:
                events._transfer_pending -= 1
                complete_transfer(entry[3])
            else:
                heappop(generic_times)
                entry[3]()
        if until_ns is not None:
            # A bounded run owns the whole window: land exactly on the
            # boundary even if the last event fired earlier (or none did).
            events.advance_to(until_ns)
        self.stats.end_time_ns = self.now
        if until_ns is None and self.config.deadlock_detection:
            incomplete = [m for m in self.messages.values() if not m.is_complete]
            if incomplete:
                report = diagnose(self)
                error = DeadlockError(
                    "simulation stalled with undelivered messages\n" + report.describe()
                )
                error.report = report  # type: ignore[attr-defined]
                raise error
        if self.config.collect_channel_stats:
            self._finalise_channel_stats()
        return self.stats

    def run_for(self, duration_ns: int) -> SimulationStats:
        """Run until ``now + duration_ns`` (partial runs skip deadlock checks)."""
        return self.run(until_ns=self.now + duration_ns)

    # ------------------------------------------------------------------
    # Steady-state coalescing fast path
    # ------------------------------------------------------------------
    def _coalesce_tick(self, t0: int, until_ns: int | None) -> bool:
        """Attempt to coalesce the steady-state period window starting at
        ``t0`` (every event in ``[t0, t0 + channel_latency_ns)``).

        Returns ``True`` when the window was executed here (through the
        ordinary per-flit machinery) — whether or not a batch advance
        followed.  Returns ``False`` without touching any state when the
        preconditions fail cheaply; the caller then pops events normally.
        """
        events = self.events
        latency = self.config.channel_latency_ns
        # Probe each window at most once (re-opened below on a verify failure).
        self._coalesce_gate_ns = t0 + latency
        window_end = t0 + latency
        # -- O(1) bail: the queue maintains the earliest pending generic
        # deadline.  Every batch must end strictly before it, so even in the
        # best case (all transfers at t0) the batch length is bounded by
        # (t_other - 1 - t0) // latency; when that optimistic bound is
        # already below the worthwhile minimum — the dominant rejection in
        # churn phases, where submits/decisions/acquisitions queue close by —
        # the probe exits before paying for any heap scan or snapshot.
        generic_times = events._generic_times
        t_other: int | None = generic_times[0] if generic_times else None
        if t_other is not None and (t_other - 1 - t0) // latency < _MIN_BATCH_TICKS + 1:
            self.coalesce_generic_bails += 1
            return False
        # -- Cheap scan (unsorted): every pending transfer must complete
        # within the period window (at exactly t0 unless phase-staggered
        # windows are allowed), every wire flit must be a body flit (or a
        # bubble, when bubble-periodic windows are allowed), and the batch
        # can extend at most until the first body flit would become a tail.
        # This rejects head crawls and worm-drain phases before paying for a
        # sort or a snapshot.
        messages = self.messages
        allow_stagger = self._coalesce_stagger
        allow_bubbles = self._coalesce_bubbles
        d_max = t0
        flit_cap: int | None = None
        for time_ns, _seq, kind, payload in events._heap:
            if not kind:
                continue
            if time_ns != t0:
                if not allow_stagger or time_ns >= window_end:
                    return False
                if time_ns > d_max:
                    d_max = time_ns
            out = payload.out_buffer
            if not out._slots:
                return False
            flit = out._slots[0]
            flit_kind = flit.kind
            if flit_kind is FlitKind.BODY:
                limit = messages[flit.message_id].length_flits - 2 - flit.seq
                if flit_cap is None or limit < flit_cap:
                    flit_cap = limit
            elif flit_kind is not FlitKind.BUBBLE or not allow_bubbles:
                return False
        cap = flit_cap
        if t_other is not None:
            # Every replayed window must end strictly before the first
            # generic event; the window's latest deadline is the binding one.
            other_cap = (t_other - 1 - d_max) // latency
            if cap is None or other_cap < cap:
                cap = other_cap
        if until_ns is not None:
            cap_until = (until_ns - d_max) // latency
            if cap is None or cap_until < cap:
                cap = cap_until
        if cap is not None and cap < _MIN_BATCH_TICKS + 1:
            return False
        if flit_cap is None and cap is None:
            # A pure-bubble window with no bounding event: the stall that
            # feeds the bubbles can only resolve through an event this scan
            # cannot see, so never replay it arithmetically.
            return False
        # Pending transfers in per-flit completion order: (deadline, link,
        # whether the wire flit is a bubble).
        moving = [
            (entry[0], entry[3], entry[3].out_buffer._slots[0].kind is FlitKind.BUBBLE)
            for entry in sorted(events._heap)
            if entry[2]
        ]

        # -- Snapshot the closure of state the window can touch: the moving
        # links themselves plus every buffer their sink segments replicate
        # into and their feeders drain from.
        self.coalesce_snapshots += 1
        closure: dict[LinkState, None] = {}
        segments: dict[WormSegment, None] = {}
        interfaces: dict[SourceInterface, None] = {}
        for _time, link, _bubble in moving:
            closure[link] = None
            sink = link.sink_segment
            if sink is not None:
                segments[sink] = None
                closure[sink.in_link] = None
                for out_link in sink.outputs:
                    closure[out_link] = None
            feeder = link.feeder
            if feeder is None:
                continue
            if isinstance(feeder, SourceInterface):
                interfaces[feeder] = None
            else:
                segments[feeder] = None
                closure[feeder.in_link] = None
                for out_link in feeder.outputs:
                    closure[out_link] = None

        def link_snap(link: LinkState):
            return (
                link.busy,
                link.reserved_by,
                link.feeder,
                link.sink_segment,
                tuple((f.kind, f.message_id, f.seq) for f in link.out_buffer.flits()),
                tuple((f.kind, f.message_id, f.seq) for f in link.in_buffer.flits()),
            )

        pre_links = [(link, link_snap(link)) for link in closure]
        pre_segments = [
            (seg, seg.state, seg.head_replicated, tuple(seg.outputs), tuple(seg.required))
            for seg in segments
        ]
        pre_interfaces = [
            (ni, ni.current, ni.next_seq, len(ni.queue)) for ni in interfaces
        ]
        stats = self.stats
        pre_bubbles = stats.bubbles_created
        pre_counters = (stats.messages_completed, len(self._segments))
        trace = self.trace
        pre_trace_len = len(trace.events) if trace is not None else 0
        pre_heap_len = len(events._heap)

        # -- Execute the window exactly as the reference per-flit engine
        # would.  Body/bubble completions never schedule a generic event and
        # reschedule their transfers one full period out, so nothing new can
        # land inside the window; a generic that does fire here was already
        # pending and disqualifies the window (after running, as reference).
        complete_transfer = self._complete_transfer
        pop_entry = events.pop_entry
        heap = events._heap
        executed_generic = False
        while heap and heap[0][0] < window_end:
            entry = pop_entry()
            if entry[2]:
                complete_transfer(entry[3])
            else:  # pragma: no cover - rejected by the t_other cap above
                executed_generic = True
                entry[3]()

        # -- Verify the window was self-similar; any mismatch means the
        # per-flit execution (which just ran) simply continues event by event.
        count = len(moving)
        if (
            executed_generic
            or events._transfer_pending != count
            or len(heap) != pre_heap_len
        ):
            return self._coalesce_backoff(t0, latency)
        if (stats.messages_completed, len(self._segments)) != pre_counters:
            return self._coalesce_backoff(t0, latency)
        bubble_rate = stats.bubbles_created - pre_bubbles
        if bubble_rate and not allow_bubbles:
            return self._coalesce_backoff(t0, latency)
        post_transfers = sorted(entry for entry in heap if entry[2])
        for entry, (pre_time, link, _bubble) in zip(post_transfers, moving):
            if entry[0] != pre_time + latency or entry[3] is not link:
                return self._coalesce_backoff(t0, latency)
        for seg, state, head_replicated, outputs, required in pre_segments:
            if (
                seg.state is not state
                or seg.head_replicated != head_replicated
                or tuple(seg.outputs) != outputs
                or tuple(seg.required) != required
            ):
                return self._coalesce_backoff(t0, latency)
        messages = self.messages
        bound: int | None = None
        pushing: list[SourceInterface] = []
        for ni, current, next_seq, backlog in pre_interfaces:
            if ni.current is not current or len(ni.queue) != backlog:
                return self._coalesce_backoff(t0, latency)
            if ni.next_seq == next_seq + 1:
                if current is None:
                    return self._coalesce_backoff(t0, latency)
                limit = current.length_flits - 1 - ni.next_seq
                if bound is None or limit < bound:
                    bound = limit
                pushing.append(ni)
            elif ni.next_seq != next_seq:
                return self._coalesce_backoff(t0, latency)
        shifting: list[tuple[object, tuple]] = []
        for link, snap in pre_links:
            busy, reserved_by, feeder, sink, out_flits, in_flits = snap
            if (
                link.busy != busy
                or link.reserved_by != reserved_by
                or link.feeder is not feeder
                or link.sink_segment is not sink
            ):
                return self._coalesce_backoff(t0, latency)
            for pre_flits, buffer in ((out_flits, link.out_buffer), (in_flits, link.in_buffer)):
                post_flits = tuple(
                    (f.kind, f.message_id, f.seq) for f in buffer.flits()
                )
                if post_flits == pre_flits:
                    # Unchanged contents: either the buffer was not touched,
                    # or a bubble was re-emitted with the identical signature
                    # (bubbles reuse the stalled data flit's sequence number,
                    # so a periodic bubble stream is a fixed point here).
                    continue
                if len(post_flits) != len(pre_flits):
                    return self._coalesce_backoff(t0, latency)
                for (kind0, mid0, seq0), (kind1, mid1, seq1) in zip(pre_flits, post_flits):
                    if (
                        kind1 is not FlitKind.BODY
                        or kind0 is not FlitKind.BODY
                        or mid1 != mid0
                        or seq1 != seq0 + 1
                    ):
                        return self._coalesce_backoff(t0, latency)
                for _kind, mid, seq in post_flits:
                    limit = messages[mid].length_flits - 2 - seq
                    if bound is None or limit < bound:
                        bound = limit
                shifting.append((buffer, post_flits))

        # -- Batch advance: replay k further identical windows arithmetically.
        if bound is None:
            if cap is None:
                return self._coalesce_backoff(t0, latency)
            k = cap
        else:
            k = bound if cap is None else min(bound, cap)
        if k < _MIN_BATCH_TICKS:
            return self._coalesce_backoff(t0, latency)
        advance = k * latency
        stats.flit_hops += k * count
        stats.bubbles_created += k * bubble_rate
        if self._collect_stats:
            for _time, link, bubble in moving:
                link.fast_forward(k, advance, bubble)
        for buffer, post_flits in shifting:
            buffer.replace_contents(
                Flit(kind, mid, seq + k) for kind, mid, seq in post_flits
            )
        for ni in pushing:
            ni.next_seq += k
        if trace is not None and len(trace.events) != pre_trace_len:
            # A self-similar window records the identical trace events every
            # period (bubble records carry only message/switch fields), so
            # the replayed windows' records are the window's shifted in time.
            window_records = trace.events[pre_trace_len:]
            append = trace.events.append
            for tick in range(1, k + 1):
                delta = tick * latency
                for record in window_records:
                    append(TraceEvent(record.time_ns + delta, record.kind, record.fields))
        events.shift_transfers(d_max + advance, advance)
        self._coalesce_fail_streak = 0
        self.coalesce_batches += 1
        self.coalesced_ticks += k
        if d_max != t0:
            self.coalesced_stagger_ticks += k
        if bubble_rate:
            self.coalesced_bubble_ticks += k
        return True

    def _coalesce_backoff(self, t0: int, latency: int) -> bool:
        """An executed tick failed the self-similarity check: the system is
        in a churn phase, so pause probing — exponentially longer while the
        failures keep coming (e.g. a long bubble storm on a big multicast
        tree).  Always returns ``True`` (the tick itself ran through the
        reference machinery)."""
        self.coalesce_verify_failures += 1
        streak = self._coalesce_fail_streak
        self._coalesce_fail_streak = streak + 1
        # min() the shift amount, not just the result: an unbounded shift
        # would build ever-larger big-ints over a long churn-heavy run.
        ticks = min(_COALESCE_BACKOFF_TICKS << min(streak, 3), _COALESCE_BACKOFF_MAX_TICKS)
        self._coalesce_gate_ns = t0 + ticks * latency
        return True

    # ------------------------------------------------------------------
    # Link machinery
    # ------------------------------------------------------------------
    def try_start_transfer(self, link: LinkState) -> None:
        """Put the head flit of ``link``'s output buffer on the wire if
        possible: the wire must be idle, the output buffer non-empty and the
        receiving input buffer not full.  Written out against the buffer
        internals because this runs several times per flit hop."""
        if link.busy or not link.out_buffer._slots:
            return
        in_buffer = link.in_buffer
        if len(in_buffer._slots) >= in_buffer.capacity:
            return
        link.busy = True
        if self._collect_stats and link.busy_since_ns is None:
            link.busy_since_ns = self.events.now
        self.events.schedule_transfer(link.latency_ns, link)

    def _complete_transfer(self, link: LinkState) -> None:
        """A flit finishes crossing ``link``: hand it to the receiving side."""
        flit = link.out_buffer.pop()
        link.busy = False
        self.stats.flit_hops += 1
        kind = flit.kind
        if self._collect_stats:
            if kind is FlitKind.BUBBLE:
                link.bubble_flits_carried += 1
            else:
                link.data_flits_carried += 1
            link.mark_utilisation_end(self.events.now)

        if link.sink_is_processor:
            if kind is FlitKind.TAIL:
                self._deliver_tail(flit, link.channel.dst)
        elif kind is FlitKind.BUBBLE and link.sink_segment is None:
            # A bubble that arrives after its worm segment has already
            # finished carries no information; absorbing it keeps the
            # single-flit input buffer available for the next worm.
            pass
        else:
            link.in_buffer.push(flit)
            if kind is FlitKind.HEAD:
                self._handle_head_at_switch(link, flit, link.channel.dst)
            else:
                segment = link.sink_segment
                if segment is not None:
                    segment.on_flit_available()
                elif kind is not FlitKind.BUBBLE:
                    raise SimulationError(
                        f"flit of message {flit.message_id} arrived at switch "
                        f"{link.channel.dst} with no active segment"
                    )

        # The output-buffer slot freed by this transfer lets the feeder (the
        # upstream segment or the source NI) push its next flit, and possibly
        # lets this link start its next transfer immediately.
        feeder = link.feeder
        if feeder is not None:
            feeder.on_output_space(link)
        self.try_start_transfer(link)

    def _deliver_tail(self, flit: Flit, processor: int) -> None:
        """A tail flit reached its destination processor: record delivery."""
        message = self.messages[flit.message_id]
        completed = message.record_delivery(processor, self.now)
        self.trace_event("deliver", message=message.mid, destination=processor)
        for callback in self.delivery_callbacks:
            callback(message, processor, self.now)
        if completed:
            self.stats.record_message(message)
            self.trace_event("complete", message=message.mid)
            for callback in self.completion_callbacks:
                callback(message)

    def _handle_head_at_switch(self, link: LinkState, flit: Flit, switch: int) -> None:
        """Create the worm segment for a header flit and schedule its decision."""
        message = self.messages[flit.message_id]
        message.hops += 1
        if message.hops > self.config.max_hops:
            raise LivelockError(
                f"message {message.mid} exceeded {self.config.max_hops} hops; "
                f"the routing algorithm {self.routing.name!r} is not making progress"
            )
        segment = WormSegment(self, message, switch, link)
        link.sink_segment = segment
        self._segments.add(segment)
        self.trace_event("head", message=message.mid, switch=switch, channel=link.cid)
        self.events.schedule_after(self.config.router_setup_ns, segment.make_decision)

    # ------------------------------------------------------------------
    # Segment bookkeeping
    # ------------------------------------------------------------------
    def segment_finished(self, segment: WormSegment) -> None:
        """A worm segment replicated its tail and released its channels."""
        self._segments.discard(segment)

    def notify_channel_released(self, link: LinkState) -> None:
        """Wake the next OCRQ waiter (if any) after a channel release."""
        head = link.ocrq.head()
        if head is not None:
            head.try_acquire()

    def active_segments(self) -> list[WormSegment]:
        """Snapshot of the currently live worm segments (diagnostics)."""
        return list(self._segments)

    def diagnose_deadlock(self) -> DeadlockReport:
        """Build a deadlock report from the current engine state."""
        return diagnose(self)

    # ------------------------------------------------------------------
    # Statistics helpers
    # ------------------------------------------------------------------
    def _finalise_channel_stats(self) -> None:
        # Busy periods still open at the end of a bounded run are flushed up
        # to the current time without being closed, so resumed runs keep
        # accumulating from where they left off.
        now = self.now
        self.stats.channel_records = [
            ChannelRecord(
                cid=link.cid,
                src=link.channel.src,
                dst=link.channel.dst,
                data_flits=link.data_flits_carried,
                bubble_flits=link.bubble_flits_carried,
                busy_ns=link.busy_ns_until(now),
            )
            for link in self.links
        ]

    @property
    def pending_messages(self) -> list[Message]:
        """Messages submitted but not yet complete."""
        return [m for m in self.messages.values() if not m.is_complete]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WormholeSimulator(network={self.network.name!r}, routing={self.routing.name!r}, "
            f"now={self.now} ns, messages={len(self.messages)})"
        )


class _DestinationView:
    """Minimal message view used for early destination validation."""

    __slots__ = ("source", "destinations", "routing_data")

    def __init__(self, source: int, destinations: tuple[int, ...]) -> None:
        self.source = source
        self.destinations = destinations
        self.routing_data: dict = {}
