"""Messages (worms) handled by the simulator.

A :class:`Message` records both the *workload-facing* description (source,
destinations, length, creation time) and the *measurement-facing* timeline
(startup completion, per-destination delivery times, completion time).  The
latency definition follows the paper: "the measured latency for a multicast
message was the total elapsed time from message startup at the source until
the last flit arrived at the last destination node"; both the
startup-relative and the creation-relative latency are exposed because under
load the time a message spends queued behind earlier sends at its source NI
is also of interest.
"""

from __future__ import annotations

import enum
from typing import Iterable

from ..errors import WorkloadError

__all__ = ["MessageKind", "Message"]


class MessageKind(enum.Enum):
    """Unicast (one destination) or multicast (several destinations)."""

    UNICAST = "unicast"
    MULTICAST = "multicast"


class Message:
    """One message injected into the simulated network.

    Attributes
    ----------
    mid:
        Dense integer message identifier assigned by the simulator.
    source:
        Source processor node id.
    destinations:
        Destination processor node ids (deduplicated, sorted).
    length_flits:
        Number of flits of the worm.
    created_ns:
        Simulation time at which the message was handed to the source
        network interface (its "arrival" in queueing terms).
    routing_data:
        Scratch space owned by the routing algorithm (e.g. SPAM stores the
        destination bitmask and the LCA here).
    metadata:
        Free-form dictionary for workload generators and experiment drivers
        (e.g. the software-multicast scheduler tags forwarding unicasts with
        the originating multicast).
    """

    __slots__ = (
        "mid",
        "source",
        "destinations",
        "length_flits",
        "created_ns",
        "startup_began_ns",
        "startup_done_ns",
        "injection_done_ns",
        "delivered_ns",
        "completed_ns",
        "hops",
        "routing_data",
        "metadata",
    )

    def __init__(
        self,
        mid: int,
        source: int,
        destinations: Iterable[int],
        length_flits: int,
        created_ns: int,
    ) -> None:
        dests = tuple(sorted(set(destinations)))
        if not dests:
            raise WorkloadError("a message needs at least one destination")
        if source in dests:
            raise WorkloadError("a message cannot be addressed to its own source")
        if length_flits < 2:
            raise WorkloadError("a message needs at least a header and a tail flit")
        self.mid = mid
        self.source = source
        self.destinations = dests
        self.length_flits = length_flits
        self.created_ns = created_ns
        self.startup_began_ns: int | None = None
        self.startup_done_ns: int | None = None
        self.injection_done_ns: int | None = None
        self.delivered_ns: dict[int, int] = {}
        self.completed_ns: int | None = None
        self.hops = 0
        self.routing_data: dict = {}
        self.metadata: dict = {}

    # ------------------------------------------------------------------
    @property
    def kind(self) -> MessageKind:
        """Unicast or multicast, by destination count."""
        return MessageKind.UNICAST if len(self.destinations) == 1 else MessageKind.MULTICAST

    @property
    def num_destinations(self) -> int:
        """Number of destinations."""
        return len(self.destinations)

    @property
    def is_complete(self) -> bool:
        """``True`` once every destination has received the tail flit."""
        return self.completed_ns is not None

    def record_delivery(self, destination: int, time_ns: int) -> bool:
        """Record tail arrival at ``destination``; returns ``True`` when this
        delivery completes the message."""
        if destination not in self.destinations:
            raise WorkloadError(f"message {self.mid} is not addressed to {destination}")
        if destination not in self.delivered_ns:
            self.delivered_ns[destination] = time_ns
        if len(self.delivered_ns) == len(self.destinations) and self.completed_ns is None:
            self.completed_ns = time_ns
            return True
        return False

    # ------------------------------------------------------------------
    # Latency views
    # ------------------------------------------------------------------
    @property
    def latency_from_creation_ns(self) -> int | None:
        """Completion time minus creation time (includes source queueing)."""
        if self.completed_ns is None:
            return None
        return self.completed_ns - self.created_ns

    @property
    def latency_from_startup_ns(self) -> int | None:
        """Completion time minus the start of the startup phase.

        This is the paper's latency definition ("from message startup at the
        source"), i.e. it includes the startup latency itself but not any
        time spent queued behind earlier messages at the source NI.
        """
        if self.completed_ns is None or self.startup_began_ns is None:
            return None
        return self.completed_ns - self.startup_began_ns

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message(mid={self.mid}, {self.source}->{self.destinations}, "
            f"len={self.length_flits}, complete={self.is_complete})"
        )
